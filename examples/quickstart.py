#!/usr/bin/env python3
"""Quickstart: run HyTGraph on an out-of-GPU-memory graph.

This example walks through the full pipeline on a synthetic stand-in for
the paper's sk-2005 web graph:

1. load (synthesise) the graph,
2. build a HyTGraph engine — hub sorting, 32-partition layout, hybrid
   transfer management, multi-stream scheduling,
3. run single-source shortest paths and PageRank,
4. inspect what the runtime did: per-iteration engine mix, transfer
   volume, and the simulated time breakdown.

Run it with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import HyTGraphEngine, HyTGraphOptions, load_dataset, make_algorithm
from repro.metrics.tables import format_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Load a graph.  scale=0.5 keeps the demo under a second; weighted
    #    edges are needed for SSSP.
    # ------------------------------------------------------------------
    graph = load_dataset("SK", scale=0.5, weighted=True)
    print("Loaded %s: %d vertices, %d edges (%.1f MB of edge data)" % (
        graph.name, graph.num_vertices, graph.num_edges, graph.edge_data_bytes / 1e6,
    ))

    # ------------------------------------------------------------------
    # 2. Build the engine.  The options shown are the paper's defaults;
    #    every one of them can be switched off for experimentation.
    # ------------------------------------------------------------------
    options = HyTGraphOptions(
        num_partitions=32,
        combine_factor=4,
        task_combining=True,
        contribution_scheduling=True,
        hub_sorting=True,
    )
    engine = HyTGraphEngine(graph, options=options)
    print("Partitioned the edge data into %d chunks; hub sorting gathered the "
          "top %.0f%% hub vertices at the front of the CSR." % (
              engine.partitioning.num_partitions, options.hub_fraction * 100))

    # ------------------------------------------------------------------
    # 3. Run SSSP from the highest-degree vertex, then PageRank.
    # ------------------------------------------------------------------
    source = int(np.argmax(graph.out_degrees))
    sssp = engine.run(make_algorithm("sssp"), source=source)
    reachable = np.isfinite(sssp.values).sum()
    print("\nSSSP from vertex %d: %d iterations, %d of %d vertices reachable, "
          "simulated time %.3f ms" % (
              source, sssp.num_iterations, reachable, graph.num_vertices, sssp.total_time * 1e3))

    pagerank = engine.run(make_algorithm("pagerank"))
    top = np.argsort(-pagerank.values)[:5]
    print("PageRank: %d iterations, simulated time %.3f ms, top vertices %s" % (
        pagerank.num_iterations, pagerank.total_time * 1e3, list(map(int, top))))

    # ------------------------------------------------------------------
    # 4. Inspect the run: how much data moved, and which transfer engine
    #    the cost model picked as the frontier evolved.
    # ------------------------------------------------------------------
    print("\nPer-iteration execution path of PageRank (first 10 iterations):")
    rows = []
    for stats in pagerank.iterations[:10]:
        rows.append({
            "iter": stats.index,
            "active vertices": stats.active_vertices,
            "active edges": stats.active_edges,
            "transferred KB": round(stats.transfer_bytes / 1024, 1),
            "engine mix": ", ".join("%s:%d" % (engine_name, count)
                                    for engine_name, count in sorted(stats.engine_partitions.items())),
        })
    print(format_table(rows))

    ratio = pagerank.total_transfer_bytes / graph.edge_data_bytes
    print("Total transfer volume: %.2f MB (%.2fx the edge data)" % (
        pagerank.total_transfer_bytes / 1e6, ratio))
    breakdown = pagerank.breakdown()
    print("Resource busy time: compaction %.3f ms, PCIe %.3f ms, GPU %.3f ms" % (
        breakdown["compaction"] * 1e3, breakdown["transfer"] * 1e3, breakdown["computation"] * 1e3))


if __name__ == "__main__":
    main()
