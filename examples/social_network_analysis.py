#!/usr/bin/env python3
"""Social-network analysis: influencers, communities and reach.

The paper motivates GPU-accelerated graph processing with social-network
analysis workloads.  This example builds a friendster-like power-law
social graph and answers three typical analyst questions, each mapping to
one of the paper's evaluation algorithms:

* "Who are the most influential accounts?"        -> PageRank
* "Which accounts belong to the same community?"  -> Connected Components
* "How many hops does a campaign need to reach
   the whole network from a seed account?"        -> BFS

All three run on the same HyTGraph system instance, which is the point:
the hybrid transfer manager adapts per iteration to each workload's very
different active-vertex behaviour.

Run it with:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import make_algorithm
from repro.graph.generators import power_law_graph
from repro.metrics.tables import format_table
from repro.bench.workloads import scaled_config_for
from repro.systems import HyTGraphSystem


def build_social_graph(num_accounts: int = 8000, average_friends: int = 30):
    """An undirected power-law friendship graph (friendster-like)."""
    return power_law_graph(
        num_accounts,
        float(average_friends),
        exponent=2.0,
        seed=2023,
        directed=False,
        name="social-network",
    )


def main() -> None:
    graph = build_social_graph()
    print("Social graph: %d accounts, %d friendship edges" % (graph.num_vertices, graph.num_edges))

    # Scale the simulated GPU so the graph does not fit in device memory —
    # the out-of-core regime HyTGraph targets.
    config = scaled_config_for(graph)
    system = HyTGraphSystem(graph, config=config)

    # ------------------------------------------------------------------
    # Influencers: PageRank.
    # ------------------------------------------------------------------
    pagerank = system.run(make_algorithm("pagerank"))
    top_influencers = np.argsort(-pagerank.values)[:10]
    rows = [
        {"rank": position + 1, "account": int(account), "score": round(float(pagerank.values[account]), 3),
         "friends": int(graph.out_degrees[account])}
        for position, account in enumerate(top_influencers)
    ]
    print("\nTop influencers (PageRank, %d iterations, %.3f ms simulated):" % (
        pagerank.num_iterations, pagerank.total_time * 1e3))
    print(format_table(rows))

    # ------------------------------------------------------------------
    # Communities: connected components.
    # ------------------------------------------------------------------
    components = system.run(make_algorithm("cc"))
    labels = components.values.astype(np.int64)
    unique, sizes = np.unique(labels, return_counts=True)
    print("Communities (CC, %.3f ms simulated): %d components, largest covers %.1f%% of accounts" % (
        components.total_time * 1e3, unique.size, 100.0 * sizes.max() / graph.num_vertices))

    # ------------------------------------------------------------------
    # Campaign reach: BFS from the top influencer.
    # ------------------------------------------------------------------
    seed = int(top_influencers[0])
    bfs = system.run(make_algorithm("bfs"), source=seed)
    levels = bfs.values
    reachable = np.isfinite(levels)
    print("\nCampaign seeded at account %d (BFS, %.3f ms simulated):" % (seed, bfs.total_time * 1e3))
    for hop in range(int(np.nanmax(np.where(reachable, levels, np.nan))) + 1):
        count = int(np.count_nonzero(levels == hop))
        print("  hop %d reaches %5d accounts (cumulative %.1f%%)" % (
            hop, count, 100.0 * np.count_nonzero(reachable & (levels <= hop)) / graph.num_vertices))

    # ------------------------------------------------------------------
    # What did hybrid transfer management do across the three workloads?
    # ------------------------------------------------------------------
    print("\nTransfer volume per workload (times the edge data):")
    for name, result in (("PageRank", pagerank), ("CC", components), ("BFS", bfs)):
        print("  %-9s %.2fx" % (name, result.total_transfer_bytes / graph.edge_data_bytes))


if __name__ == "__main__":
    main()
