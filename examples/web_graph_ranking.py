#!/usr/bin/env python3
"""Web-graph ranking and reachability under different transfer managers.

Web graphs (like the paper's sk-2005 and uk-2007) are the second workload
family the paper evaluates: highly skewed in-degrees, strong locality, and
far too much edge data for GPU memory.  This example ranks a synthetic web
crawl with Δ-based PageRank and computes crawl distances with BFS — and it
does so on *three* systems (EMOGI-style zero-copy, Subway-style
compaction, and HyTGraph) to show what the hybrid approach buys:
identical answers, different simulated cost.

Run it with:  python examples/web_graph_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro import make_algorithm
from repro.bench.workloads import scaled_config_for
from repro.graph.datasets import load_dataset
from repro.metrics.tables import format_table
from repro.systems import make_system


def main() -> None:
    # A uk-2007-like stand-in: directed RMAT web crawl with heavy locality.
    graph = load_dataset("UK", scale=0.6)
    config = scaled_config_for(graph, "UK")
    print("Web crawl: %d pages, %d hyperlinks (%.1f MB edge data, %.1f MB simulated GPU edge cache)" % (
        graph.num_vertices, graph.num_edges, graph.edge_data_bytes / 1e6, config.gpu_memory_bytes / 1e6))

    systems = ["emogi", "subway", "hytgraph"]
    pagerank_results = {}
    bfs_results = {}
    seed_page = int(np.argmax(graph.in_degrees))

    for system_name in systems:
        system = make_system(system_name, graph, config=config)
        pagerank_results[system_name] = system.run(make_algorithm("pagerank"))
        bfs_results[system_name] = system.run(make_algorithm("bfs"), source=seed_page)

    # ------------------------------------------------------------------
    # The ranking itself (identical across systems by construction).
    # ------------------------------------------------------------------
    ranks = pagerank_results["hytgraph"].values
    top_pages = np.argsort(-ranks)[:10]
    rows = [
        {"page": int(page), "pagerank": round(float(ranks[page]), 3),
         "in-links": int(graph.in_degrees[page]), "out-links": int(graph.out_degrees[page])}
        for page in top_pages
    ]
    print("\nTop-ranked pages:")
    print(format_table(rows))

    agreement = max(
        float(np.max(np.abs(pagerank_results[a].values - pagerank_results[b].values)))
        for a in systems
        for b in systems
    )
    print("Maximum PageRank disagreement between systems: %.2e (answers are identical up to the Δ tolerance)" % agreement)

    # ------------------------------------------------------------------
    # What each transfer manager paid for the same answers.
    # ------------------------------------------------------------------
    rows = []
    for system_name in systems:
        pagerank = pagerank_results[system_name]
        bfs = bfs_results[system_name]
        rows.append({
            "system": pagerank.system,
            "PR time (ms)": round(pagerank.total_time * 1e3, 3),
            "PR transfer (xE)": round(pagerank.total_transfer_bytes / graph.edge_data_bytes, 2),
            "PR iterations": pagerank.num_iterations,
            "BFS time (ms)": round(bfs.total_time * 1e3, 3),
            "BFS transfer (xE)": round(bfs.total_transfer_bytes / graph.edge_data_bytes, 2),
        })
    print("Cost of the same analysis under each transfer manager:")
    print(format_table(rows))

    hyt = pagerank_results["hytgraph"].total_time
    for system_name in ("emogi", "subway"):
        other = pagerank_results[system_name].total_time
        print("  HyTGraph PageRank speedup over %s: %.2fx" % (pagerank_results[system_name].system, other / hyt))


if __name__ == "__main__":
    main()
