#!/usr/bin/env python3
"""Reproduce the paper's motivating study on your own workload.

Section III of the paper analyses *why* no single transfer-management
approach wins: the best engine depends on how the active vertices evolve.
This example runs that analysis end to end for a single-source shortest
path computation on a friendster-like social graph:

1. trace the frontier evolution (active vertices / edges per iteration),
2. ask HyTGraph's cost model which engine it would pick per partition in
   every iteration (the Figure 7 "execution path"),
3. compare the per-iteration simulated runtime of the four pure
   approaches against the hybrid (Figure 3 g/h style),
4. print the crossover points — the iterations where the preferred
   engine changes.

Run it with:  python examples/transfer_management_study.py
"""

from __future__ import annotations


from repro.bench.workloads import build_workload
from repro.metrics.tables import format_table
from repro.transfer.base import EngineKind


def main() -> None:
    workload = build_workload("FK", "sssp", scale=0.6)
    graph = workload.graph
    print("Workload: SSSP on a friendster-like graph (%d vertices, %d edges), source=%d" % (
        graph.num_vertices, graph.num_edges, workload.source))

    # ------------------------------------------------------------------
    # 1 + 2.  Run HyTGraph and read its execution path.
    # ------------------------------------------------------------------
    hytgraph = workload.run("hytgraph")
    print("\nHyTGraph execution path (which engine the cost model picked):")
    rows = []
    for stats, mix in zip(hytgraph.iterations, hytgraph.engine_mix()):
        rows.append({
            "iter": stats.index,
            "active vertices": stats.active_vertices,
            "active edges": stats.active_edges,
            "% ExpTM-F": round(100 * mix.get(EngineKind.EXP_FILTER.value, 0.0)),
            "% ExpTM-C": round(100 * mix.get(EngineKind.EXP_COMPACTION.value, 0.0)),
            "% ImpTM-ZC": round(100 * mix.get(EngineKind.IMP_ZERO_COPY.value, 0.0)),
        })
    print(format_table(rows))

    # ------------------------------------------------------------------
    # 3.  Per-iteration runtime of the pure approaches vs the hybrid.
    # ------------------------------------------------------------------
    competitors = {
        "ExpTM-F": workload.run("exptm-f"),
        "ExpTM-C (Subway)": workload.run("subway"),
        "ImpTM-ZC (EMOGI)": workload.run("emogi"),
        "ImpTM-UM": workload.run("imptm-um"),
        "HyTGraph": hytgraph,
    }
    print("Per-iteration simulated runtime (ms):")
    length = max(result.num_iterations for result in competitors.values())
    rows = []
    for index in range(length):
        row = {"iter": index}
        for name, result in competitors.items():
            times = result.per_iteration_times()
            row[name] = round(times[index] * 1e3, 4) if index < len(times) else ""
        rows.append(row)
    print(format_table(rows))

    # ------------------------------------------------------------------
    # 4.  Who wins each iteration, and overall.
    # ------------------------------------------------------------------
    pure = {name: result for name, result in competitors.items() if name != "HyTGraph"}
    prefer = []
    for index in range(length):
        candidates = {
            name: result.per_iteration_times()[index]
            for name, result in pure.items()
            if index < result.num_iterations
        }
        prefer.append(min(candidates, key=candidates.get))
    crossovers = [index for index in range(1, len(prefer)) if prefer[index] != prefer[index - 1]]
    print("Preferred pure engine per iteration: %s" % " -> ".join(prefer))
    print("Crossover iterations (where the best pure engine changes): %s" % crossovers)

    print("\nOverall simulated runtime:")
    summary = [{"system": name, "time (ms)": round(result.total_time * 1e3, 3),
                "transfer (xE)": round(result.total_transfer_bytes / graph.edge_data_bytes, 2)}
               for name, result in competitors.items()]
    print(format_table(sorted(summary, key=lambda row: row["time (ms)"])))
    best_pure = min(result.total_time for name, result in pure.items())
    print("HyTGraph vs best pure approach: %.2fx" % (best_pure / hytgraph.total_time))


if __name__ == "__main__":
    main()
