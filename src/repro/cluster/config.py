"""One dataclass describing a simulated multi-node deployment.

A :class:`ClusterConfig` layers cluster topology — how many hosts, how
many GPUs each, which network fabric connects them — on top of one
:class:`~repro.service.config.ServiceConfig` that every replica shares.
The single-host serving knobs keep their exact semantics per replica
(each host runs its own admission controller, circuit breaker and fault
injector); the only schedule entries the cluster layer claims for itself
are the ``host-loss`` specs, which a single host cannot interpret.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.faults.spec import FaultSpec
from repro.service.config import ServiceConfig
from repro.sim.config import HostConfig, NetworkConfig

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a :class:`~repro.cluster.ClusterService` needs to exist.

    Attributes
    ----------
    hosts:
        Number of simulated hosts; each runs one full
        :class:`~repro.service.GraphService` replica with its own warmed
        execution context and device cache.
    gpus_per_host:
        Devices of each replica's platform (overrides the service
        config's ``devices`` when the cluster builds the replicas).
    network:
        The host interconnect — a preset name (``"tcp"`` / ``"rdma"`` /
        ``"ethernet-10g"``) or an explicit
        :class:`~repro.sim.config.NetworkConfig`.  Every byte that
        crosses host boundaries (checkpoint shipping on failover) is
        billed at this fabric's latency + bandwidth.
    service:
        The per-replica serving config.  Its ``host-loss`` fault specs
        are interpreted at the cluster layer (one whole replica
        disappears at a cluster wave boundary); everything else is
        handed to each replica unchanged.
    """

    hosts: int = 1
    gpus_per_host: int = 1
    network: NetworkConfig | str = "tcp"
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self) -> None:
        # HostConfig validates counts and coerces preset names; keep the
        # canonical topology value around for reports.
        topology = HostConfig(
            hosts=self.hosts, gpus_per_host=self.gpus_per_host, network=self.network
        )
        object.__setattr__(self, "network", topology.network)
        if not isinstance(self.service, ServiceConfig):
            raise ValueError("service must be a ServiceConfig")

    @property
    def topology(self) -> HostConfig:
        """The cluster's :class:`~repro.sim.config.HostConfig`."""
        return HostConfig(
            hosts=self.hosts, gpus_per_host=self.gpus_per_host, network=self.network
        )

    def host_loss_specs(self) -> tuple[FaultSpec, ...]:
        """The ``host-loss`` specs the cluster layer interprets itself."""
        if self.service.faults is None:
            return ()
        return self.service.faults.host_loss_specs()

    def replica_config(self) -> ServiceConfig:
        """The per-host :class:`ServiceConfig` each replica is built from.

        Identical to :attr:`service` except that the device count is the
        cluster's ``gpus_per_host`` and the ``host-loss`` fault specs are
        stripped (the single-host injector cannot interpret them; the
        cluster fires them at wave boundaries instead).
        """
        faults = self.service.faults
        if faults is not None:
            faults = faults.without_host_loss()
        return replace(self.service, devices=self.gpus_per_host, faults=faults)
