"""The :class:`ClusterService`: N replicated GraphServices behind one router.

Each simulated host runs one full :class:`~repro.service.GraphService`
replica — its own warmed execution context, device cache, admission
controller, circuit breaker and fault injector — over the *same* graph.
The cluster front-end routes submissions by consistent-hash affinity on
the session key (request label, falling back to the request id), spills
to the least-loaded replica when the affine host is saturated, and
rejects only when every alive replica would refuse
(:mod:`repro.cluster.router`).

Serving advances in *cluster waves*: each :meth:`step` picks the alive
replica with pending work and the smallest simulated clock and serves
one of its scheduling waves, so the cluster timeline interleaves the
replicas' waves in deterministic earliest-clock order.  Per-query values
are bitwise identical to single-host execution — a replica is exactly a
``GraphService``, and routing never changes semantics, only placement.

Host loss (``host-loss`` fault specs) is interpreted here, not by the
per-replica injectors: at the scheduled cluster wave the replica's
queued and suspended queries fail over to surviving replicas.  Each
migrated query's checkpoint bytes are shipped over the
:class:`~repro.sim.config.NetworkConfig` fabric; the receiving host's
network lane is a serialized timeline resource, and the query only
becomes schedulable once its shipment lands.  With tracing on, the wait,
the shipment (``checkpoint-ship``) and the network occupancy all land as
spans, so a migrated query's trace tiles still sum exactly to its
measured latency.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms import make_algorithm
from repro.cluster.config import ClusterConfig
from repro.cluster.router import Router
from repro.metrics.results import BatchResult
from repro.obs import MetricsRegistry, write_chrome_trace
from repro.obs.tracer import Span
from repro.service.core import GraphService
from repro.service.request import QueryHandle, QueryRequest, RequestStatus
from repro.service.stats import ServiceStats, register_service_metrics

__all__ = ["ClusterService"]


class _ClusterTracer:
    """Facade over the replicas' tracers (the replay-harness hook)."""

    def __init__(self, replicas: Sequence[GraphService]):
        self._replicas = replicas

    @property
    def enabled(self) -> bool:
        return any(replica.tracer.enabled for replica in self._replicas)

    def set_sample(self, sample: float) -> None:
        for replica in self._replicas:
            replica.tracer.set_sample(sample)

    @property
    def total_spans(self) -> int:
        return sum(
            replica.tracer.total_spans
            for replica in self._replicas
            if replica.tracer.enabled
        )

    @property
    def dropped_spans(self) -> int:
        return sum(
            replica.tracer.dropped_spans
            for replica in self._replicas
            if replica.tracer.enabled
        )


class ClusterService:
    """Replicated serving over N simulated hosts (see module docstring).

    Parameters
    ----------
    config:
        The :class:`~repro.cluster.ClusterConfig` (defaults to one
        single-GPU host over TCP).
    graph / hardware:
        Optional prebuilt graph and hardware for the replicas'
        self-built path (as in :class:`~repro.service.GraphService`);
        all replicas share the graph object but own their systems.
    replicas:
        Prebuilt replicas, one per host (the :meth:`for_workload` path).
    """

    def __init__(self, config: ClusterConfig | None = None, *, graph=None, hardware=None, replicas=None):
        self.config = config or ClusterConfig()
        replica_config = self.config.replica_config()
        if replicas is None:
            first = GraphService(replica_config, graph=graph, hardware=hardware)
            replicas = [first] + [
                GraphService(replica_config, graph=first.graph, hardware=first.system.config)
                for _ in range(self.config.hosts - 1)
            ]
        replicas = list(replicas)
        if len(replicas) != self.config.hosts:
            raise ValueError(
                "expected %d replica(s), got %d" % (self.config.hosts, len(replicas))
            )
        self.replicas = replicas
        self.network = self.config.network
        self.router = Router(self.config.hosts)
        self._alive = [True] * self.config.hosts
        #: Cluster waves served (each = one replica scheduling wave);
        #: the clock ``host-loss`` fault offsets count against.
        self._steps = 0
        #: Cluster-global request-id counter, synced into whichever
        #: replica a request routes to — ids stay unique and submission-
        #: ordered across the cluster, so per-replica priority
        #: tie-breaking behaves exactly as on one host.
        self._next_request_id = 0
        #: Pending host-loss specs and the positions already fired.
        self._host_loss = list(self.config.host_loss_specs())
        self._fired: set[int] = set()
        #: Receiver-side network lanes: each host's NIC is a serialized
        #: timeline resource — concurrent inbound shipments queue.
        self._net_busy = [0.0] * self.config.hosts
        #: Cross-host checkpoint-shipping totals.
        self.shipped_bytes = 0
        self.ship_time_s = 0.0
        #: Chronological cluster-level fault events.
        self.events: list[dict] = []
        self.tracer = _ClusterTracer(self.replicas)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_workload(
        cls, workload, system_name: str, config: ClusterConfig | None = None, **system_kwargs
    ) -> "ClusterService":
        """A cluster over one benchmark workload's graph and hardware.

        Each replica is built exactly as
        :meth:`GraphService.for_workload` builds a single host (same
        graph, same scaled hardware, same kwargs), which is what keeps
        per-query values bitwise equal to single-host serving.
        """
        config = config or ClusterConfig()
        replica_config = config.replica_config()
        replicas = [
            GraphService.for_workload(
                workload, system_name, config=replica_config, **system_kwargs
            )
            for _ in range(config.hosts)
        ]
        return cls(config, replicas=replicas)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The graph every replica serves."""
        return self.replicas[0].graph

    @property
    def system(self):
        """Replica 0's system (the bitwise-verification reference)."""
        return self.replicas[0].system

    @property
    def batches(self) -> list[BatchResult]:
        """Every replica's served batch records, in host order."""
        return [batch for replica in self.replicas for batch in replica.batches]

    def alive_hosts(self) -> list[int]:
        """Indices of the hosts still serving."""
        return [host for host, alive in enumerate(self._alive) if alive]

    # The replay harness and the CLI drive a service through this
    # duck-typed surface; the cluster aggregates it over the replicas.
    @property
    def _queue(self) -> list[QueryHandle]:
        return [handle for replica in self.replicas for handle in replica._queue]

    @property
    def _waves_served(self) -> int:
        return sum(replica._waves_served for replica in self.replicas)

    @property
    def _clock_s(self) -> float:
        return max(replica._clock_s for replica in self.replicas)

    # ------------------------------------------------------------------
    # Lifecycle: submit -> step/drain -> harvest
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> QueryHandle:
        """Route and submit one request; never executes anything."""
        return self._submit_resolved(request, make_algorithm(request.algorithm.lower()))

    def submit_many(self, requests: Sequence[QueryRequest]) -> list[QueryHandle]:
        """Submit several requests; one handle each, in order."""
        return [self.submit(request) for request in requests]

    def _submit_resolved(self, request: QueryRequest, program) -> QueryHandle:
        primary = self.replicas[0]
        # Validate before routing: an invalid request raises identically
        # no matter which replica it would have landed on.
        primary._check_program(program)
        source = primary._resolve_source(program, request.source)
        host = self._route(request, program, source)
        replica = self.replicas[host]
        if replica._graph_symmetric is None:
            replica._graph_symmetric = primary._graph_symmetric
        # Sync the cluster-global id into the chosen replica so its
        # submit numbers the handle; read the incremented value back.
        replica._next_request_id = self._next_request_id
        handle = replica._submit_resolved(request, program)
        self._next_request_id = replica._next_request_id
        # result() must drain the cluster, not one replica: the handle
        # may migrate hosts on failover, and host-loss only fires at
        # cluster wave boundaries.
        handle._service = self
        return handle

    def _route(self, request: QueryRequest, program, source: int | None) -> int:
        """The serving host for one request (side-effect-free probes)."""
        alive = self.alive_hosts()
        if not alive:
            raise RuntimeError("every host of the cluster has been lost")
        key = request.label or "q%d" % self._next_request_id
        estimates: dict[int, int] = {}

        def estimate(host: int) -> int:
            if host not in estimates:
                estimates[host] = self.replicas[host].admission.estimate_request_bytes(
                    program, source
                )
            return estimates[host]

        def saturated(host: int) -> bool:
            replica = self.replicas[host]
            if replica.breaker.open:
                return True
            budget = replica.admission.budget_bytes
            if budget is None:
                return False
            return replica.admission.pending_bytes + estimate(host) > budget

        def refuses(host: int) -> bool:
            # Mirrors AdmissionController.decide's reject conditions
            # without reserving bytes.
            admission = self.replicas[host].admission
            if admission.budget_bytes is None:
                return False
            if estimate(host) > admission.budget_bytes:
                return True
            return (
                admission.policy == "reject"
                and admission.pending_bytes + estimate(host) > admission.budget_bytes
            )

        load_order = sorted(
            alive,
            key=lambda host: (
                self.replicas[host].admission.pending_bytes,
                len(self.replicas[host]._queue),
                host,
            ),
        )
        host, _outcome = self.router.route(key, alive, load_order, saturated, refuses)
        return host

    def step(self) -> BatchResult | None:
        """Serve the next cluster wave (``None`` when every queue is idle).

        Fires any host-loss faults due at this wave, then steps the
        alive replica with pending work and the smallest simulated clock
        (host index breaks ties) — a deterministic interleaving of the
        replicas' wave timelines.
        """
        self._fire_host_loss()
        candidates = [
            host for host in self.alive_hosts() if self.replicas[host]._queue
        ]
        while candidates:
            host = min(
                candidates, key=lambda h: (self.replicas[h]._clock_s, h)
            )
            batch = self.replicas[host].step()
            if batch is not None:
                self._steps += 1
                return batch
            # The replica's breaker shed its whole queue; try the next.
            candidates.remove(host)
        return None

    def drain(self) -> list[BatchResult]:
        """Serve every queued request; returns the waves' batch records."""
        served: list[BatchResult] = []
        while True:
            batch = self.step()
            if batch is None:
                return served
            served.append(batch)

    def run(self, request: QueryRequest):
        """Submit one request and serve the cluster to completion."""
        return self.submit(request).result()

    def harvest(self) -> tuple[list[QueryHandle], list[BatchResult]]:
        """Detach finished handles and batch records from every replica."""
        finished: list[QueryHandle] = []
        batches: list[BatchResult] = []
        for replica in self.replicas:
            replica_finished, replica_batches = replica.harvest()
            finished.extend(replica_finished)
            batches.extend(replica_batches)
        return finished, batches

    # ------------------------------------------------------------------
    # Host loss and failover
    # ------------------------------------------------------------------
    def _fire_host_loss(self) -> None:
        """Apply the host-loss specs due at this cluster wave."""
        for position, spec in enumerate(self._host_loss):
            if position in self._fired or self._steps < spec.at_super_iteration:
                continue
            self._fired.add(position)
            event: dict = {"wave": self._steps, "kind": "host-loss"}
            alive = self.alive_hosts()
            if not alive:
                event["skipped"] = "no host left to lose"
                self.events.append(event)
                continue
            host = spec.host if spec.host is not None else alive[-1]
            host = min(host, self.config.hosts - 1)
            event["host"] = host
            if not self._alive[host]:
                event["skipped"] = "host already lost"
                self.events.append(event)
                continue
            self._lose_host(host, event)

    def _lose_host(self, host: int, event: dict) -> None:
        """Fail the host over: ship its in-flight queries to survivors.

        Fires between waves, so "in flight" is exactly the queued and
        suspended handles — nothing is RUNNING at a wave boundary.  Each
        migrated handle keeps its id, priority and (for suspended
        queries) checkpoint; the destination is its consistent-hash
        survivor, its shipment is billed on the receiver's network lane,
        and it becomes schedulable only once the shipment lands.
        Without survivors the queries fail terminally (typed, never a
        silent drop).
        """
        source = self.replicas[host]
        self._alive[host] = False
        survivors = self.alive_hosts()
        t_loss = source._clock_s
        moved = list(source._queue)
        source._queue = []
        migrated = 0
        failed = 0
        for handle in moved:
            source.admission.release([handle])
            if not survivors:
                handle.status = RequestStatus.FAILED
                handle.fault_cause = (
                    "host %d lost with no surviving replica" % host
                )
                failed += 1
                continue
            key = handle.request.label or "q%d" % handle.request_id
            dst_host = self.router.ring.affine_host(key, survivors)
            dst = self.replicas[dst_host]
            ship_bytes = (
                handle._checkpoint.checkpoint_bytes
                if handle._checkpoint is not None
                else 0
            )
            ship_start = max(t_loss, self._net_busy[dst_host])
            ship_s = self.network.transfer_seconds(ship_bytes)
            landing = ship_start + ship_s
            self._net_busy[dst_host] = landing
            handle._ready_s = max(handle._ready_s, landing)
            source._handles.remove(handle)
            dst._handles.append(handle)
            dst._queue.append(handle)
            # The reservation moves with the handle (release on its
            # eventual completion subtracts the same estimate).
            dst.admission.pending_bytes += handle.estimated_bytes
            self.router.failovers += 1
            self.shipped_bytes += ship_bytes
            self.ship_time_s += ship_s
            migrated += 1
            self._trace_failover(
                handle, source, dst, host, dst_host, ship_start, ship_bytes, ship_s
            )
        event["migrated"] = migrated
        if failed:
            event["failed"] = failed
        self.events.append(event)

    def _trace_failover(
        self, handle, source, dst, src_host, dst_host, ship_start, ship_bytes, ship_s
    ) -> None:
        """Record one migration's spans on the destination tracer.

        The query's lane gets its wait tile up to the shipment start and
        the ``checkpoint-ship`` copy tile, so the flight recorder's
        per-query breakdown still sums exactly to the measured latency;
        the receiving host's ``net`` lane gets the network occupancy.
        """
        tracer = dst.tracer
        if not tracer.enabled or not tracer.trace_query(handle.request_id):
            return
        track = GraphService._track_of(handle)
        start = (
            source.tracer.cursor(track, handle.arrival_s)
            if source.tracer.enabled
            else handle.arrival_s
        )
        name = "suspended" if handle.preemptions else "queued"
        if ship_start > start:
            tracer.span("query", name, track, start, ship_start)
        tracer.span(
            "checkpoint", "checkpoint-ship", track, ship_start, ship_start + ship_s,
            checkpoint_bytes=ship_bytes, src_host=src_host, dst_host=dst_host,
        )
        tracer.span(
            "network", "checkpoint-ship", "net", ship_start, ship_start + ship_s,
            checkpoint_bytes=ship_bytes, src_host=src_host, dst_host=dst_host,
            request_id=handle.request_id,
        )

    # ------------------------------------------------------------------
    # Statistics and observability
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Aggregate cluster statistics.

        With one host this *is* the replica's snapshot (the degenerate-
        equivalence guarantee); with several, counters sum, latency
        lists merge in host order, and the makespan is the latest
        replica clock.
        """
        if len(self.replicas) == 1:
            return self.replicas[0].stats()
        total = ServiceStats()
        for snapshot in (replica.stats() for replica in self.replicas):
            total.submitted += snapshot.submitted
            total.admitted += snapshot.admitted
            total.rejected += snapshot.rejected
            total.completed += snapshot.completed
            total.failed += snapshot.failed
            total.cancelled += snapshot.cancelled
            total.queued += snapshot.queued
            total.waves += snapshot.waves
            total.preemptions += snapshot.preemptions
            total.total_transfer_bytes += snapshot.total_transfer_bytes
            total.deadline_met += snapshot.deadline_met
            total.deadline_missed += snapshot.deadline_missed
            total.faults_injected += snapshot.faults_injected
            total.retries += snapshot.retries
            total.retry_time_s += snapshot.retry_time_s
            total.checkpoint_time_s += snapshot.checkpoint_time_s
            total.recovery_time_s += snapshot.recovery_time_s
            total.breaker_open = total.breaker_open or snapshot.breaker_open
            total.breaker_trips += snapshot.breaker_trips
            total.makespan_s = max(total.makespan_s, snapshot.makespan_s)
            for priority, latencies in snapshot.latencies_by_class.items():
                total.latencies_by_class.setdefault(priority, []).extend(latencies)
        return total

    def metrics(self) -> MetricsRegistry:
        """Aggregate ``service.*`` rows plus the ``cluster.*`` vocabulary.

        Per-replica breakdowns land under ``cluster.host<h>.*`` —
        admission counters, makespan/throughput gauges and per-class
        latency percentiles (via :mod:`repro.metrics.percentiles`) —
        next to the router and network-shipping counters.
        """
        registry = MetricsRegistry()
        register_service_metrics(registry, self.stats())
        registry.gauge("cluster.hosts", float(self.config.hosts))
        registry.gauge("cluster.hosts_alive", float(len(self.alive_hosts())))
        for name, value in self.router.counters().items():
            registry.count("cluster.router.%s" % name, value)
        registry.count("cluster.network.shipped_bytes", self.shipped_bytes)
        registry.gauge("cluster.network.ship_time_s", self.ship_time_s)
        registry.gauge("cluster.network.bandwidth", self.network.bandwidth)
        registry.gauge("cluster.network.latency", self.network.latency)
        for host, replica in enumerate(self.replicas):
            snapshot = replica.stats()
            prefix = "cluster.host%d" % host
            for name in (
                "submitted", "admitted", "rejected", "completed", "failed",
                "cancelled", "queued", "waves", "preemptions",
            ):
                registry.count("%s.%s" % (prefix, name), getattr(snapshot, name))
            registry.gauge("%s.alive" % prefix, float(self._alive[host]))
            registry.gauge("%s.makespan_s" % prefix, snapshot.makespan_s)
            registry.gauge(
                "%s.queries_per_second" % prefix, snapshot.queries_per_second
            )
            for priority in sorted(snapshot.latencies_by_class):
                for quantile in (50, 95, 99):
                    registry.gauge(
                        "%s.latency_p%d_s.%s"
                        % (prefix, quantile, priority.name.lower()),
                        snapshot.latency_percentile(priority, quantile),
                    )
        return registry

    def observability(self) -> dict:
        """The machine-readable picture: stats ∪ metrics ∪ cluster view."""
        payload = self.stats().as_dict()
        payload["metrics"] = self.metrics().snapshot()
        payload["device_health"] = self.device_health()
        payload["cluster"] = {
            "hosts": self.config.hosts,
            "gpus_per_host": self.config.gpus_per_host,
            "network": {
                "kind": self.network.kind,
                "bandwidth": self.network.bandwidth,
                "latency": self.network.latency,
            },
            "hosts_alive": len(self.alive_hosts()),
            "hosts_lost": [
                host for host, alive in enumerate(self._alive) if not alive
            ],
            "router": self.router.counters(),
            "shipped_bytes": self.shipped_bytes,
            "ship_time_s": self.ship_time_s,
            "events": list(self.events),
            "per_host": [
                {"host": host, "alive": self._alive[host], **replica.stats().as_dict()}
                for host, replica in enumerate(self.replicas)
            ],
        }
        return payload

    def device_health(self) -> dict[str, object]:
        """Cluster health: surviving hosts plus each replica's devices."""
        return {
            "hosts": self.config.hosts,
            "hosts_alive": len(self.alive_hosts()),
            "hosts_lost": [
                host for host, alive in enumerate(self._alive) if not alive
            ],
            "replicas": [replica.device_health() for replica in self.replicas],
        }

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def trace_spans(self) -> list[Span]:
        """The merged cluster trace, host-qualified and re-numbered.

        Query lanes (``query:*``) stay unprefixed — queries are cluster-
        global and may migrate hosts — while every other track gains a
        ``host<h>:`` prefix (``host0:service``, ``host1:dev0:pcie``,
        ``host2:net``, ...).  The merge is sorted by
        ``(start, end, host, span id)`` and re-numbered, so equal runs
        export bitwise-equal traces.
        """
        if len(self.replicas) == 1:
            # Degenerate single host: keep the replica's emission order
            # and span ids — the trace is the GraphService trace with
            # every non-query track ``host0:``-qualified.
            return [
                Span(
                    span.span_id, span.category, span.name,
                    span.track
                    if span.track.startswith("query:")
                    else "host0:%s" % span.track,
                    span.start_s, span.end_s, dict(span.attrs),
                )
                for span in self.replicas[0].tracer.spans()
            ] if self.replicas[0].tracer.enabled else []
        merged: list[tuple] = []
        for host, replica in enumerate(self.replicas):
            if not replica.tracer.enabled:
                continue
            for span in replica.tracer.spans():
                track = (
                    span.track
                    if span.track.startswith("query:")
                    else "host%d:%s" % (host, span.track)
                )
                merged.append((span.start_s, span.end_s, host, span.span_id, span, track))
        merged.sort(key=lambda item: (item[0], item[1], item[2], item[3]))
        return [
            Span(index, span.category, span.name, track, span.start_s, span.end_s,
                 dict(span.attrs))
            for index, (_, _, _, _, span, track) in enumerate(merged)
        ]

    def export_trace(self, path):
        """Write the merged cluster trace as a Chrome trace file."""
        if not self.tracer.enabled:
            raise ValueError(
                "this cluster does not trace; build it with "
                "ServiceConfig(tracing=True)"
            )
        dropped = sum(
            replica.tracer.dropped_spans
            for replica in self.replicas
            if replica.tracer.enabled
        )
        return write_chrome_trace(
            path,
            self.trace_spans(),
            metrics=self.metrics().snapshot(),
            dropped=dropped,
        )
