"""Consistent-hash request routing across service replicas.

The router answers one question per submission: *which host serves this
request?*  Affinity comes first — requests hash to hosts by their
session key (the request label, falling back to the request id), so a
session's partitions stay warm in one replica's device cache instead of
thrashing every cache a little.  When the affine host is saturated (its
circuit breaker is open, or its admission budget is backed up) the
request *spills* to the least-loaded replica with room; only when every
alive replica would refuse the request does the cluster reject it.

Determinism is load-bearing: the hash is :func:`hashlib.blake2b` over
the key bytes — seed-free, ``PYTHONHASHSEED``-independent, stable across
processes and platforms — and every tie in the spill order is broken by
host index.  Identical request streams against identical cluster state
route identically, which is what the router-determinism tests and the
bitwise scaling benchmark assert.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Sequence

__all__ = ["ConsistentHashRing", "Router"]

#: Virtual nodes per host on the hash ring.  Enough that key→host
#: assignment is roughly uniform, few enough that ring construction and
#: lookups stay trivial at single-digit host counts.
VNODES_PER_HOST = 64


def stable_hash(key: str) -> int:
    """A 64-bit seed-free hash of ``key``, stable across runs/platforms."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Classic consistent hashing: hosts × virtual nodes on a 64-bit ring.

    Host loss needs no ring rebuild — lookups take the set of alive
    hosts and walk clockwise past dead vnodes, so only the keys that
    hashed to the lost host move (to their next survivor), while every
    other key keeps its placement and its warmed cache.
    """

    def __init__(self, hosts: int, vnodes: int = VNODES_PER_HOST):
        if hosts < 1:
            raise ValueError("hosts must be at least 1")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.hosts = hosts
        points = [
            (stable_hash("host%d#%d" % (host, vnode)), host)
            for host in range(hosts)
            for vnode in range(vnodes)
        ]
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [host for _, host in points]

    def affine_host(self, key: str, alive: Sequence[int]) -> int:
        """The alive host ``key`` hashes to (clockwise past dead vnodes)."""
        living = set(alive)
        if not living:
            raise ValueError("no alive host to route to")
        start = bisect.bisect_right(self._points, stable_hash(key))
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner in living:
                return owner
        raise AssertionError("unreachable: ring holds every host")


class Router:
    """Routing policy + counters of one cluster front-end.

    The decision procedure (all probes side-effect-free):

    1. the affine host, unless *saturated* — affinity hit;
    2. otherwise the first non-saturated host in least-loaded order —
       spill;
    3. otherwise (everything saturated) the affine host, unless it would
       outright *refuse* the request — affinity hit (it queues);
    4. otherwise the first non-refusing host in least-loaded order —
       spill;
    5. otherwise a cluster-level rejection: the request is submitted to
       the affine host anyway so its admission controller produces the
       properly-reasoned ``REJECTED`` handle.
    """

    def __init__(self, hosts: int, vnodes: int = VNODES_PER_HOST):
        self.ring = ConsistentHashRing(hosts, vnodes)
        #: Requests served by their hash-affine host.
        self.affinity_hits = 0
        #: Requests diverted off their affine host by load.
        self.spills = 0
        #: Requests every alive replica refused.
        self.rejections = 0
        #: Queued/suspended queries migrated off a lost host.
        self.failovers = 0

    def route(
        self,
        key: str,
        alive: Sequence[int],
        load_order: Sequence[int],
        saturated: Callable[[int], bool],
        refuses: Callable[[int], bool],
    ) -> tuple[int, str]:
        """Pick the serving host; returns ``(host, outcome)``.

        ``outcome`` is ``"affinity"``, ``"spill"`` or ``"reject"`` (the
        matching counter is incremented).  ``load_order`` must list the
        alive hosts from least to most loaded with index tie-breaks, so
        identical cluster state yields identical spill targets.
        """
        affine = self.ring.affine_host(key, alive)
        if not saturated(affine):
            self.affinity_hits += 1
            return affine, "affinity"
        for host in load_order:
            if host != affine and not saturated(host):
                self.spills += 1
                return host, "spill"
        if not refuses(affine):
            self.affinity_hits += 1
            return affine, "affinity"
        for host in load_order:
            if host != affine and not refuses(host):
                self.spills += 1
                return host, "spill"
        self.rejections += 1
        return affine, "reject"

    def counters(self) -> dict[str, int]:
        """The router's counter snapshot (metrics/observability rows)."""
        return {
            "affinity_hits": self.affinity_hits,
            "spills": self.spills,
            "rejections": self.rejections,
            "failovers": self.failovers,
        }
