"""Multi-node cluster tier: simulated hosts, network fabric, routed replicas.

The single-host stack (:mod:`repro.service`) serves one warmed session;
this package replicates it across N simulated hosts behind a
consistent-hash router, prices cross-host byte movement on a
:class:`~repro.sim.config.NetworkConfig` fabric, and fails queries over
to surviving replicas — checkpoints shipped over the network — when a
host is lost.  With ``hosts=1`` the cluster is bitwise-degenerate to a
plain :class:`~repro.service.GraphService`.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.router import ConsistentHashRing, Router, stable_hash
from repro.cluster.service import ClusterService

__all__ = ["ClusterConfig", "ClusterService", "ConsistentHashRing", "Router", "stable_hash"]
