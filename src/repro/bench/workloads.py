"""Workload construction shared by the benchmark drivers.

A *workload* is one (dataset, algorithm) cell of the paper's evaluation
grid: the stand-in graph (weighted for SSSP, symmetrized for CC), the
traversal source, and a hardware configuration whose GPU memory is scaled
by the same factor as the graph so that the oversubscription regime of the
original experiment is preserved (e.g. the SK edge array fits in device
memory, the other graphs do not — Section VII-B2).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.algorithms import make_algorithm
from repro.algorithms.base import VertexProgram
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.metrics.results import BatchResult, RunResult
from repro.sim.config import GPU_PRESETS, HardwareConfig, gtx_2080ti
from repro.systems import SYSTEMS

__all__ = [
    "PAPER_EDGE_COUNTS",
    "Workload",
    "paper_datasets",
    "scaled_config_for",
    "batch_sources",
    "build_workload",
    "run_workload",
]

# Edge counts of the original datasets (Table IV), used to scale the
# simulated GPU memory by the same factor as the stand-in graphs.
PAPER_EDGE_COUNTS: dict[str, float] = {
    "SK": 1.93e9,
    "TW": 1.96e9,
    "FK": 2.59e9,
    "UK": 3.31e9,
    "FS": 3.61e9,
}

# Default stand-in scale used by the benchmarks (1.0 = the sizes declared
# in repro.graph.datasets, already laptop friendly).
DEFAULT_SCALE = 1.0

# Bytes of vertex-associated GPU state per vertex (values, frontier flags,
# neighbor index, degrees, priority, double-buffered frontier queues).
# Subtracted from the scaled device
# Memory before it is offered as edge cache, mirroring how the real
# systems lose part of the 11 GB to vertex data and runtime buffers.
VERTEX_FOOTPRINT_BYTES = 48

#: Entry points that already warned this process (one warning each, so a
#: benchmark sweep does not drown in repeats).  Tests clear this set to
#: assert the message.
_DEPRECATION_WARNED: set[str] = set()


def _warn_deprecated(entry_point: str) -> None:
    """Emit one DeprecationWarning per entry point pointing at the service."""
    if entry_point in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(entry_point)
    warnings.warn(
        "%s is deprecated; submit a repro.service.QueryRequest to a "
        "repro.service.GraphService instead (it serves the same workload with "
        "priorities, deadlines and admission control)" % entry_point,
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class Workload:
    """One (dataset, algorithm) experiment cell."""

    dataset: str
    algorithm: str
    graph: CSRGraph
    program: VertexProgram
    source: int | None
    config: HardwareConfig

    def run(self, system_name: str, **system_kwargs) -> RunResult:
        """Run this workload on the named system.

        .. deprecated::
            Thin adapter over :class:`repro.service.GraphService` — a
            one-request service over this workload's graph and config.
            New code should build the service directly and submit typed
            requests.
        """
        _warn_deprecated("Workload.run")
        service = self._service(system_name, system_kwargs)
        handle = service.submit_program(self.program, self.source)
        return handle.result()

    def _service(self, system_name: str, system_kwargs: dict):
        """A fresh one-shot service over this workload (adapter plumbing)."""
        from repro.service import GraphService

        return GraphService.for_workload(self, system_name, **system_kwargs)

    def check_multi_device(self, system_name: str) -> None:
        """Refuse multi-device configs on systems without a sharded path.

        Raised here (before the system is even built) so CLI and
        benchmark callers get one clear error instead of silently
        running single-device.
        """
        if self.config.num_devices <= 1:
            return
        system_cls = SYSTEMS.get(system_name.lower())
        if system_cls is None:
            # Same message shape as make_system so a typo reads the same
            # at every device count.
            raise KeyError(
                "unknown system %r; available: %s" % (system_name, ", ".join(sorted(SYSTEMS)))
            )
        if getattr(system_cls, "supports_multi_device", False):
            return
        capable = sorted(
            name for name, cls in SYSTEMS.items() if getattr(cls, "supports_multi_device", False)
        )
        raise ValueError(
            "system %r has no multi-device execution path (%d devices requested); "
            "run it with one device or pick one of: %s"
            % (system_name, self.config.num_devices, ", ".join(capable))
        )

    def make_queries(
        self,
        sources: Sequence[int | None] | None = None,
        count: int | None = None,
        seed: int | None = None,
    ) -> list[tuple[VertexProgram, int | None]]:
        """Build (program, source) query pairs for this workload's algorithm.

        Pass explicit ``sources``, or let ``count`` (with an optional
        ``seed``) sample them through :func:`batch_sources` — seeded
        sampling makes batch benchmarks reproducible run-to-run while
        still exercising divergent working sets.  Sourceless algorithms
        get ``count`` copies of the ``None`` source.  The two forms are
        exclusive: combining explicit ``sources`` with ``count``/``seed``
        raises instead of silently ignoring the sampling arguments.
        """
        if sources is not None and (count is not None or seed is not None):
            raise ValueError(
                "make_queries takes explicit sources or count/seed sampling, not both"
            )
        if sources is None:
            if count is None:
                raise ValueError("make_queries needs explicit sources or a count")
            if self.program.needs_source:
                sources = batch_sources(self.graph, count, seed=seed)
            else:
                sources = [None] * count
        return [(self.program, source) for source in sources]

    def run_batch(
        self, system_name: str, sources: Sequence[int | None], **system_kwargs
    ) -> BatchResult:
        """Serve ``sources`` as one concurrent batch on the named system.

        .. deprecated::
            Thin adapter over :class:`repro.service.GraphService`: every
            source is submitted at the same priority and the queue is
            drained as one wave, which reproduces the historical FIFO
            co-schedule bitwise.
        """
        _warn_deprecated("Workload.run_batch")
        service = self._service(system_name, system_kwargs)
        for program, source in self.make_queries(sources):
            service.submit_program(program, source)
        (batch,) = service.drain()
        return batch

    def run_sequential(
        self, system_name: str, sources: Sequence[int | None], **system_kwargs
    ) -> list[RunResult]:
        """The unbatched baseline: the same queries served back to back.

        One system instance, each query run cold (``run`` resets the warm
        transfer state), which is what a serving layer without batching
        would do.

        .. deprecated::
            Thin adapter over
            :meth:`repro.service.GraphService.baseline_sequential`.
        """
        _warn_deprecated("Workload.run_sequential")
        service = self._service(system_name, system_kwargs)
        return service.baseline_sequential(self.make_queries(sources))


def paper_datasets() -> list[str]:
    """The five dataset names in the paper's reporting order."""
    return dataset_names()


def scaled_config_for(
    graph: CSRGraph,
    dataset: str | None = None,
    preset: HardwareConfig | str | None = None,
) -> HardwareConfig:
    """Hardware config with device memory scaled to the stand-in graph.

    The scale factor is ``stand-in edges / paper edges`` for known datasets
    and is chosen so roughly half the edge data fits for unknown graphs
    (the generic oversubscription regime the paper targets).
    """
    if isinstance(preset, str):
        config = GPU_PRESETS[preset]
    else:
        config = preset or gtx_2080ti()
    vertex_bytes = graph.num_vertices * VERTEX_FOOTPRINT_BYTES
    if dataset is not None and dataset.upper() in PAPER_EDGE_COUNTS:
        scale = graph.num_edges / PAPER_EDGE_COUNTS[dataset.upper()]
        scaled = config.scaled(scale)
        return scaled.with_gpu_memory(max(1, scaled.gpu_memory_bytes - vertex_bytes))
    # Unknown graph: give the device room for about half the edge data and
    # scale the fixed overheads as if it were a mid-sized paper graph.
    generic_scale = graph.num_edges / 2.5e9
    scaled = config.scaled(max(generic_scale, 1e-9))
    return scaled.with_gpu_memory(max(1, graph.edge_data_bytes // 2))


def pick_source(graph: CSRGraph) -> int:
    """Traversal source: the highest-out-degree vertex (deterministic, well connected)."""
    if graph.num_vertices == 0:
        raise ValueError("cannot pick a source in an empty graph")
    return int(np.argmax(graph.out_degrees))


def batch_sources(graph: CSRGraph, count: int, seed: int | None = None) -> list[int]:
    """``count`` distinct traversal sources for a multi-query batch.

    Without a ``seed``: the top out-degree vertices, like
    :func:`pick_source` — deterministic and well connected.  With a
    ``seed``: a seed-deterministic sample of distinct vertices that have
    at least one out-edge (falling back to all vertices when the graph
    has fewer such), so batch benchmarks get *divergent* working sets
    that are still reproducible run-to-run.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if count > graph.num_vertices:
        raise ValueError(
            "cannot pick %d distinct sources in a %d-vertex graph" % (count, graph.num_vertices)
        )
    if seed is None:
        order = np.argsort(-graph.out_degrees, kind="stable")
        return [int(vertex) for vertex in order[:count]]
    candidates = np.flatnonzero(graph.out_degrees > 0)
    if candidates.size < count:
        candidates = np.arange(graph.num_vertices)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(candidates, size=count, replace=False)
    return [int(vertex) for vertex in np.sort(chosen)]


def build_workload(
    dataset: str,
    algorithm: str,
    scale: float = DEFAULT_SCALE,
    preset: HardwareConfig | str | None = None,
    graph: CSRGraph | None = None,
    num_devices: int = 1,
    interconnect: str | None = None,
) -> Workload:
    """Build one experiment cell.

    SSSP gets a weighted graph; CC gets the symmetrized graph (weakly
    connected components); other algorithms use the directed, unweighted
    stand-in.  A pre-built ``graph`` can be supplied to share loading
    across several workloads (the Figure 9 RMAT sweep does this).

    ``num_devices > 1`` attaches that many GPUs of the (scaled) preset —
    each keeps the full scaled per-device memory, so aggregate device
    memory grows with the device count — over the named ``interconnect``
    (``"nvlink"`` or ``"pcie-peer"``).
    """
    algorithm_key = algorithm.lower()
    program = make_algorithm(algorithm_key)
    if graph is None:
        weighted = program.needs_weights
        graph = load_dataset(dataset, scale=scale, weighted=weighted)
    elif program.needs_weights and not graph.is_weighted:
        from repro.graph.generators import random_weights

        graph = graph.with_weights(random_weights(graph.num_edges, seed=7))
    if algorithm_key == "cc":
        graph = graph.symmetrize()
        graph = CSRGraph(graph.row_offset, graph.column_index, graph.edge_value, name=dataset)
    source = pick_source(graph) if program.needs_source else None
    if isinstance(preset, str):
        preset = GPU_PRESETS[preset]
    if num_devices != 1 or interconnect is not None:
        # Attach the devices before scaling so the interconnect latency is
        # scaled down together with the other fixed per-event overheads.
        preset = (preset or gtx_2080ti()).with_devices(num_devices, interconnect)
    config = scaled_config_for(graph, dataset if dataset.upper() in DATASETS else None, preset)
    return Workload(
        dataset=dataset,
        algorithm=program.name,
        graph=graph,
        program=program,
        source=source,
        config=config,
    )


def run_workload(system_name: str, workload: Workload, **system_kwargs) -> RunResult:
    """Convenience wrapper: run ``workload`` on ``system_name``."""
    return workload.run(system_name, **system_kwargs)
