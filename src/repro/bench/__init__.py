"""Benchmark harness shared by the ``benchmarks/`` experiment drivers."""

from repro.bench.workloads import (
    Workload,
    build_workload,
    paper_datasets,
    scaled_config_for,
    run_workload,
)

__all__ = ["Workload", "build_workload", "paper_datasets", "scaled_config_for", "run_workload"]
