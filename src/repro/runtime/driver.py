"""The device-count-agnostic iteration driver.

Every system (and the HyTGraph engine) expresses one outer iteration as
an :class:`IterationPlan`: per-device :class:`~repro.sim.streams.StreamTask`
lists, per-device remote-activation counts and a prefilled
:class:`~repro.metrics.results.IterationStats` record.  The
:class:`IterationDriver` turns a plan into the iteration's timeline —
scheduling the device task lists over the shared host resources, pricing
the boundary-delta exchange and filling in the timing fields — without
ever branching on the device count: single-device sessions simply have
one device list and zero sync bytes.

Separating *planning* (which mutates program state and prices transfers)
from *scheduling* (which only consumes stream tasks) is what enables the
concurrent multi-query serving layer: the
:class:`~repro.runtime.batch.QueryBatchRunner` collects one plan per live
query, co-schedules the merged task lists on the shared devices, and
still charges each query its standalone statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.core.backends import use_backend
from repro.metrics.results import IterationStats, RunResult
from repro.runtime.context import ExecutionContext
from repro.sim.streams import StreamTask

__all__ = ["FrontierSnapshot", "IterationPlan", "QuerySession", "IterationDriver"]

#: Timeline resource -> IterationStats field filled from its busy time.
_BUSY_FIELDS = {"cpu": "compaction_time", "pcie": "transfer_time", "gpu": "kernel_time"}


@dataclass
class FrontierSnapshot:
    """The frontier at the start of one iteration, split per device.

    ``per_device[d]`` is a sorted view of ``active_ids`` restricted to
    device ``d``'s shard; on single-device sessions it is the whole
    frontier.
    """

    active_ids: np.ndarray
    per_device: list[np.ndarray]
    active_vertices: int
    active_edges: int


@dataclass
class IterationPlan:
    """One iteration, planned but not yet scheduled.

    Attributes
    ----------
    stats:
        The iteration record with every *planning-time* field filled
        (frontier sizes, bytes, processed edges, engine mixes).  The
        driver fills the timing fields from the schedule.
    device_tasks:
        One stream-task list per device.
    remote_updates:
        Per-device remote-activation message counts (all zero on
        single-device sessions).
    overhead_time:
        Seconds charged on top of the schedule makespan (cost-analysis
        scans, one-off prefetches).
    busy_fields:
        Which timeline resources fill their stats field
        (``cpu``/``pcie``/``gpu``).  Planners that account a resource
        themselves (e.g. Grus folds its one-off prefetch into
        ``transfer_time``) drop it from the tuple.
    """

    stats: IterationStats
    device_tasks: list[list[StreamTask]]
    remote_updates: list[int]
    overhead_time: float = 0.0
    busy_fields: tuple[str, ...] = ("cpu", "pcie", "gpu")


@dataclass
class QuerySession:
    """Mutable state of one query (program + source) being executed."""

    program: VertexProgram
    source: int | None
    state: ProgramState
    pending: np.ndarray
    result: RunResult
    iteration: int = 0
    #: System-specific per-query scratch (e.g. Grus' pending-prefetch flag).
    scratch: dict = field(default_factory=dict)

    @property
    def live(self) -> bool:
        """Whether the query still has active vertices to process."""
        return bool(self.pending.any())


class IterationDriver:
    """Runs :class:`IterationPlan`s on an :class:`ExecutionContext`."""

    def __init__(self, context: ExecutionContext):
        self.context = context
        #: Simulated elapsed seconds of the current solo run — where the
        #: next traced iteration's spans start.  Reset by
        #: :meth:`begin_trace`; untouched (and unused) when the
        #: context's tracer is the no-op default.
        self._trace_elapsed = 0.0

    # ------------------------------------------------------------------
    # Frontier helpers
    # ------------------------------------------------------------------
    def snapshot(self, pending: np.ndarray) -> FrontierSnapshot:
        """One frontier scan: sorted ids, per-device views and counts."""
        active_ids = np.flatnonzero(pending)
        return FrontierSnapshot(
            active_ids=active_ids,
            per_device=self.context.split_frontier(active_ids),
            active_vertices=int(active_ids.size),
            active_edges=int(self.context.graph.out_degrees[active_ids].sum()),
        )

    def process_per_device(
        self,
        program: VertexProgram,
        state: ProgramState,
        pending: np.ndarray,
        per_device_active: list[np.ndarray],
        remote_updates: list[int],
    ) -> None:
        """Each device pushes its shard's frontier slice, in device order.

        The value arrays stay global (the boundary exchange is charged in
        time and bytes, not re-simulated in the semantics), so activations
        land directly in the shared pending bitmap; cross-shard ones are
        counted as the emitting device's outgoing delta messages.
        """
        graph = self.context.graph
        for device, device_active in enumerate(per_device_active):
            if device_active.size == 0:
                continue
            newly_active = program.process(graph, state, device_active)
            if newly_active.size:
                pending[newly_active] = True
                remote_updates[device] += self.context.count_remote(newly_active, device)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, planner, session: QuerySession, shared=None) -> IterationPlan:
        """Run one planner iteration with device-cache bookkeeping.

        Solo runs open a new cache observation window per iteration;
        under the batch runner (``shared`` set) the window is opened
        once per *super*-iteration before any query plans, so
        frontier-aware eviction fires once per boundary regardless of
        the live-query count.  Either way the plan's stats are stamped
        with the cache hit/miss/evicted bytes the planning incurred.

        Planning is where ``program.process`` pushes messages, so a
        backend pinned on the context is scoped around the whole call —
        every kernel the iteration runs dispatches to it, while sessions
        without an explicit backend keep the ambient one.
        """
        if self.context.backend is None:
            return self._plan(planner, session, shared)
        with use_backend(self.context.backend):
            return self._plan(planner, session, shared)

    def _plan(self, planner, session: QuerySession, shared=None) -> IterationPlan:
        if shared is None:
            return self.windowed_plan(lambda: planner.plan_iteration(session))
        cache = self.context.cache
        if cache is None:
            return planner.plan_iteration(session, shared=shared)
        before = cache.snapshot_counters()
        plan = planner.plan_iteration(session, shared=shared)
        self.annotate_cache(plan.stats, cache.delta(before))
        return plan

    def windowed_plan(self, make_plan) -> IterationPlan:
        """Run ``make_plan()`` inside one fresh cache observation window.

        The counter snapshot is taken *before* the window opens so the
        boundary evictions committed by
        :meth:`~repro.cache.manager.CacheManager.begin_iteration` are
        attributed to the iteration that triggered them.
        """
        cache = self.context.cache
        if cache is None:
            return make_plan()
        before = cache.snapshot_counters()
        cache.begin_iteration()
        plan = make_plan()
        self.annotate_cache(plan.stats, cache.delta(before))
        return plan

    @staticmethod
    def annotate_cache(stats: IterationStats, delta: dict[str, int]) -> None:
        """Fill one iteration's cache fields from a counter delta."""
        stats.cache_hit_bytes = delta["hit_bytes"]
        stats.cache_miss_bytes = delta["miss_bytes"]
        stats.cache_evicted_bytes = delta["evicted_bytes"]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def finish(self, plan: IterationPlan, trace_iteration: int | None = None) -> IterationStats:
        """Schedule one plan on its own and fill its timing fields.

        ``trace_iteration`` opts one *solo-run* iteration into span
        emission (its index names the span); batch-mode standalone
        finishes stay untraced — their merged timeline positions are the
        batch runner's to emit.
        """
        sync_bytes = self.context.sync_bytes(plan.remote_updates)
        timeline = self.context.schedule(plan.device_tasks, sync_bytes)
        stats = plan.stats
        stats.time = timeline.makespan * self.context.time_scale + plan.overhead_time
        for resource in plan.busy_fields:
            setattr(stats, _BUSY_FIELDS[resource], timeline.busy_time(resource))
        stats.interconnect_bytes = int(sum(sync_bytes))
        stats.sync_time = timeline.sync_time
        if trace_iteration is not None and self.context.tracer.enabled:
            self._emit_iteration_spans(stats, timeline, trace_iteration)
        return stats

    # ------------------------------------------------------------------
    # Tracing (solo runs; see repro.obs)
    # ------------------------------------------------------------------
    def begin_trace(self) -> None:
        """Restart the solo-run span cursor at simulated time zero."""
        self._trace_elapsed = 0.0

    def _emit_iteration_spans(self, stats: IterationStats, timeline, iteration: int) -> None:
        """One iteration tile on the run's query lane + its device spans."""
        tracer = self.context.tracer
        scale = self.context.time_scale
        start = self._trace_elapsed
        end = start + stats.time
        tracer.span(
            "iteration", "iter%d" % iteration, "query:run", start, end,
            active_vertices=stats.active_vertices,
            active_edges=stats.active_edges,
            kernel_s=stats.kernel_time * scale,
            transfer_s=stats.transfer_time * scale,
            cpu_s=stats.compaction_time * scale,
            cache_hit_bytes=stats.cache_hit_bytes,
            cache_miss_bytes=stats.cache_miss_bytes,
        )
        for entry in timeline.entries:
            prefix = "dev%d:" % entry.device if entry.device >= 0 else ""
            for span in entry.spans:
                tracer.span(
                    "device", entry.name, prefix + span.resource,
                    start + span.start * scale, start + span.end * scale,
                    engine=entry.engine, stream=entry.stream,
                )
        self._trace_elapsed = end

    # ------------------------------------------------------------------
    # Checkpointing (fault recovery)
    # ------------------------------------------------------------------
    def capture_checkpoint(self, session: QuerySession):
        """Snapshot one query's state (values + frontier + residency)."""
        from repro.faults.checkpoint import QueryCheckpoint

        return QueryCheckpoint.capture(session, cache=self.context.cache)

    def restore_checkpoint(self, session: QuerySession, checkpoint) -> float:
        """Roll a query back; return the billed restore-transfer seconds."""
        return checkpoint.restore(session, config=self.context.config)

    def drive(self, planner, session: QuerySession, max_iterations: int) -> QuerySession:
        """Run ``planner`` to convergence (or the iteration bound).

        ``planner`` is anything exposing
        ``plan_iteration(session, shared=None) -> IterationPlan`` —
        a :class:`~repro.systems.base.GraphSystem` or the HyTGraph engine.
        """
        self.begin_trace()
        while session.pending.any() and session.iteration < max_iterations:
            plan = self.plan(planner, session)
            session.result.iterations.append(self.finish(plan, trace_iteration=session.iteration))
            session.iteration += 1
        return session
