"""Device-agnostic execution runtime and multi-query serving layer.

The runtime collapses the historical single-device / multi-device twin
code paths into one substrate:

* :class:`~repro.runtime.context.ExecutionContext` — devices, shards,
  the device-memory cache (:mod:`repro.cache`) and the shared-host
  scheduler, built once per session; ``num_devices == 1`` is the
  trivial (one-shard, zero-sync) case of the sharded path, not a
  separate branch.
* :class:`~repro.runtime.driver.IterationDriver` — turns per-iteration
  :class:`~repro.runtime.driver.IterationPlan`s (per-device stream-task
  lists + remote-activation counts) into scheduled timelines and filled
  :class:`~repro.metrics.results.IterationStats`.
* :class:`~repro.runtime.batch.QueryBatchRunner` — serves K concurrent
  queries on one warmed session, amortizing residency and
  whole-partition transfers across queries and co-scheduling their
  iterations over the shared stream/PCIe resources.
"""

from repro.runtime.batch import QueryBatchRunner, SharedTransferState
from repro.runtime.context import ExecutionContext, MultiDeviceScheduler
from repro.runtime.driver import (
    FrontierSnapshot,
    IterationDriver,
    IterationPlan,
    QuerySession,
)

__all__ = [
    "ExecutionContext",
    "MultiDeviceScheduler",
    "IterationDriver",
    "IterationPlan",
    "FrontierSnapshot",
    "QuerySession",
    "QueryBatchRunner",
    "SharedTransferState",
]
