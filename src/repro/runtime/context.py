"""Device-agnostic execution context: one topology object per session.

:class:`ExecutionContext` bundles everything the execution layer needs to
know about *where* work runs — the device count, the contiguous
partition-range shards, the optional per-device shard residency and the
scheduler that places per-device task lists onto the shared host
resources.  It is constructed once per system (or once per batch session)
and handed to the :class:`~repro.runtime.driver.IterationDriver`.

``num_devices == 1`` is not a separate code path: the context simply
holds one shard covering the whole partitioning, every frontier split
returns one slice, every remote-activation count is zero and the
scheduler emits no boundary-synchronisation entry.  That makes the
sharded execution path bitwise identical to the historical single-device
engines while deleting their ``run``/``_run_multi`` twin code.

:class:`MultiDeviceScheduler` (formerly ``repro.sim.multi_gpu``) runs one
:class:`~repro.sim.streams.StreamScheduler` per device.  The schedulers
contend for two *shared host* resources — the CPU compaction engine and
the host PCIe complex (every explicit copy and zero-copy read crosses the
same root complex) — while each device brings its own GPU and its own
CUDA streams.  Tasks from different devices are interleaved in global
priority order, which models all devices making progress concurrently.

Every multi-device iteration ends with a **boundary synchronisation
phase**: devices exchange the delta updates they produced for vertices
owned by other shards (one ``(compacted-index entry, value)`` message per
remote activation) plus a convergence-flag all-reduce.  The exchange runs
all-to-all over dedicated inter-GPU links, so its duration is the fixed
interconnect latency plus the busiest sender's bytes at the interconnect
bandwidth.  The phase appears in the iteration timeline as one collective
entry on the ``"interconnect"`` resource, after every device's last task.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partitioning, ShardedPartitioning
from repro.sim.config import HardwareConfig
from repro.sim.events import (
    INTERCONNECT_RESOURCE,
    SYNC_ENGINE,
    StageSpan,
    Timeline,
    TimelineEntry,
)
from repro.cache.manager import CacheManager
from repro.core.backends import KernelBackend, active_backend, resolve_backend
from repro.obs.tracer import NULL_TRACER
from repro.sim.kernel import KernelModel
from repro.sim.streams import ResourceState, StreamScheduler, StreamTask
from repro.transfer.residency import ShardResidency

__all__ = ["ExecutionContext", "MultiDeviceScheduler"]


class MultiDeviceScheduler:
    """Schedules per-device task lists onto N GPUs sharing one host."""

    def __init__(self, config: HardwareConfig, num_devices: int | None = None):
        self.config = config
        self.num_devices = num_devices if num_devices is not None else config.num_devices
        if self.num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        #: One stream scheduler per device, as on real multi-GPU hosts.
        self.device_schedulers = [StreamScheduler(config) for _ in range(self.num_devices)]
        #: Multiplicative boundary-exchange slowdown (>= 1; the fault
        #: injector's ``interconnect-degrade`` raises it mid-run).
        self.interconnect_slowdown = 1.0

    # ------------------------------------------------------------------
    # Boundary synchronisation
    # ------------------------------------------------------------------
    def sync_duration(self, sync_bytes_per_device: Sequence[int] | None) -> float:
        """Seconds of the per-iteration boundary synchronisation phase.

        Single-device runs synchronise nothing.  Multi-device runs always
        pay the interconnect latency (barrier + convergence all-reduce)
        plus the busiest sender's outgoing delta bytes over its link.
        """
        if self.num_devices <= 1:
            return 0.0
        busiest = max(sync_bytes_per_device, default=0) if sync_bytes_per_device else 0
        return self.interconnect_slowdown * (
            self.config.interconnect_latency + busiest / self.config.interconnect_bandwidth
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        device_tasks: Sequence[list[StreamTask]],
        sync_bytes_per_device: Sequence[int] | None = None,
    ) -> Timeline:
        """Schedule every device's tasks plus the boundary sync phase.

        ``device_tasks[d]`` is device ``d``'s task list.  Tasks are
        placed in global ``(priority, submission order, device)`` order
        onto each device's own streams/GPU while the ``cpu`` and ``pcie``
        resources are shared across all devices.
        """
        if len(device_tasks) != self.num_devices:
            raise ValueError(
                "expected %d device task lists, got %d" % (self.num_devices, len(device_tasks))
            )

        merged: list[tuple[float, int, int, StreamTask]] = []
        for device, tasks in enumerate(device_tasks):
            for position, task in enumerate(tasks):
                merged.append((task.priority, position, device, task))
        merged.sort(key=lambda item: item[:3])

        cpu = ResourceState()
        pcie = ResourceState()
        gpus = [ResourceState() for _ in range(self.num_devices)]
        stream_free = [[0.0] * self.config.num_streams for _ in range(self.num_devices)]
        timeline = Timeline()

        for _, _, device, task in merged:
            timeline.entries.append(
                self.device_schedulers[device].place(
                    task, stream_free[device], cpu, pcie, gpus[device], device=device
                )
            )

        if self.num_devices > 1:
            start = timeline.makespan
            duration = self.sync_duration(sync_bytes_per_device)
            timeline.entries.append(
                TimelineEntry(
                    name="boundary-sync",
                    engine=SYNC_ENGINE,
                    stream=0,
                    spans=(StageSpan(INTERCONNECT_RESOURCE, start, start + duration),),
                    device=-1,
                )
            )
        return timeline


class ExecutionContext:
    """Devices, shards, device-memory cache and schedulers of one session.

    Parameters
    ----------
    graph / partitioning / config:
        The (possibly preprocessed) graph the session executes on, its
        edge partitioning, and the hardware platform.
    residency_enabled:
        Whether multi-device sessions pin leading shard partitions into
        device memory under the default ``static-prefix`` policy
        (:class:`~repro.transfer.residency.ShardResidency`).  Static
        single-device sessions are always residency-free, exactly as in
        the paper: its testbed graphs oversubscribe one GPU's memory, so
        partitions churn and static caching buys nothing there.
    cache_policy:
        Eviction policy of the device-memory cache subsystem
        (:mod:`repro.cache`).  ``"static-prefix"`` (default) reproduces
        the historical behaviour bitwise; the adaptive policies
        (``"lru"``, ``"frontier-aware"``) start empty, admit shipped
        partitions and evict at iteration boundaries — and are active
        at *any* device count, including one.
    cache_budget:
        Per-device cache budget in bytes (default: the device's
        edge-cache memory, ``config.gpu_memory_bytes``).
    backend:
        Compute backend for the kernel layer (a name, a
        :class:`~repro.core.backends.KernelBackend` instance, or ``None``).
        ``None`` (default) leaves the session on the process-wide active
        backend (``REPRO_BACKEND`` env override, ``numpy`` otherwise); an
        explicit value pins this session's kernels — the driver scopes it
        around every planned iteration.  Resolution happens here, at
        construction, so an unknown/unavailable backend fails the session
        up front (and JIT warm-up cost lands here, never in a timed
        region).
    """

    def __init__(
        self,
        graph: CSRGraph,
        partitioning: Partitioning,
        config: HardwareConfig,
        residency_enabled: bool = True,
        cache_policy: str = "static-prefix",
        cache_budget: int | None = None,
        backend: str | KernelBackend | None = None,
    ):
        self.graph = graph
        self.partitioning = partitioning
        self.config = config
        self.backend: KernelBackend | None = (
            resolve_backend(backend) if backend is not None else None
        )
        self.num_devices = config.num_devices
        self.sharding = ShardedPartitioning(partitioning, config.num_devices)
        self.cache: CacheManager | None = None
        if cache_policy != "static-prefix":
            # Adaptive policies replace static residency wholesale and
            # apply at any device count.
            self.cache = CacheManager(
                partitioning, self.sharding, config,
                policy=cache_policy, budget_bytes=cache_budget,
            )
        elif self.is_multi_device and residency_enabled:
            self.cache = ShardResidency(
                partitioning, self.sharding, config, budget_bytes=cache_budget
            )
        self.scheduler = MultiDeviceScheduler(config)
        self.kernel_model = KernelModel(config)
        #: Span sink (no-op unless a service/CLI installs a recording
        #: tracer; see :mod:`repro.obs`).
        self.tracer = NULL_TRACER
        #: Devices lost to injected faults, in loss order.
        self.lost_devices: list[int] = []
        #: Set when the last device died and execution degraded to the
        #: host CPU (the final fallback rung: queries survive, slowly).
        self.host_fallback = False
        #: Multiplier applied to scheduled makespans (1.0 normally; the
        #: GPU/CPU edge-throughput ratio under host fallback).
        self.time_scale = 1.0

    @property
    def is_multi_device(self) -> bool:
        """Whether more than one device participates in this session."""
        return self.num_devices > 1

    @property
    def backend_name(self) -> str:
        """Name of the backend this session's kernels run on.

        Falls back to the process-wide active backend when the session
        was built without an explicit one.
        """
        backend = self.backend if self.backend is not None else active_backend()
        return backend.name

    @property
    def residency(self) -> CacheManager | None:
        """The static residency cache (``None`` under adaptive policies).

        Kept as the historical name for the ``static-prefix`` resident
        sets; code that handles both modes should use :attr:`cache`.
        """
        if self.cache is not None and not self.cache.adaptive:
            return self.cache
        return None

    @property
    def cache_policy(self) -> str:
        """Active cache policy name (``static-prefix`` when cacheless)."""
        return "static-prefix" if self.cache is None else self.cache.policy_name

    @property
    def num_resident_partitions(self) -> int:
        """Partitions resident in device memory across all shards."""
        return 0 if self.cache is None else self.cache.num_resident

    def reset(self) -> None:
        """Forget cross-run cache state (residency flags, adaptive contents)."""
        if self.cache is not None:
            self.cache.reset()

    # ------------------------------------------------------------------
    # Degraded modes (fault recovery)
    # ------------------------------------------------------------------
    def lose_device(self, device: int) -> None:
        """Permanently remove one device; re-shard onto the survivors.

        The lost shard's partitions are remapped by rebuilding the
        byte-balanced contiguous sharding over the surviving device
        count; the cache manager is re-sharded **in place** (callers
        keep their reference) with all residency invalidated — the lost
        device's memory is gone, and the survivors' contents no longer
        match their new shards.  Losing the last device degrades to
        host fallback: the session keeps executing with kernels priced
        at CPU edge throughput and no device cache.
        """
        if self.host_fallback:
            raise RuntimeError("no device left to lose: session already runs on the host")
        if not 0 <= device < self.num_devices:
            raise ValueError(
                "device %d outside the %d live device(s)" % (device, self.num_devices)
            )
        self.lost_devices.append(device)
        survivors = self.num_devices - 1
        if survivors == 0:
            self.host_fallback = True
            self.time_scale = self.config.gpu_edge_throughput / self.config.cpu_edge_throughput
            if self.cache is not None:
                self.cache.invalidate()
                self.cache.set_budget(0)
            return
        self.num_devices = survivors
        self.sharding = ShardedPartitioning(self.partitioning, survivors)
        slowdown = self.scheduler.interconnect_slowdown
        self.scheduler = MultiDeviceScheduler(self.config, num_devices=survivors)
        self.scheduler.interconnect_slowdown = slowdown
        if self.cache is not None:
            self.cache.reshard(self.sharding)

    def shrink_cache_budget(self, factor: float) -> None:
        """Mid-run memory pressure: scale the per-device cache budget.

        Silently a no-op on cacheless sessions (there is no budget to
        squeeze; the kernels already re-ship everything every iteration).
        """
        if self.cache is not None:
            self.cache.shrink_budget(factor)

    def degrade_interconnect(self, factor: float) -> None:
        """Slow the boundary exchange down by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise ValueError("interconnect degradation factor must be >= 1")
        self.scheduler.interconnect_slowdown *= factor

    # ------------------------------------------------------------------
    # Frontier topology helpers
    # ------------------------------------------------------------------
    def split_frontier(self, active_ids: np.ndarray) -> list[np.ndarray]:
        """Slice a sorted active-vertex array into one view per device."""
        return self.sharding.split_sorted_vertices(active_ids)

    def count_remote(self, vertices: np.ndarray, device: int) -> int:
        """Remote-activation messages ``device`` emits for ``vertices``.

        Zero on single-device sessions (the one shard owns everything),
        so callers never branch on the device count.
        """
        if not self.is_multi_device:
            return 0
        return self.sharding[device].count_remote(vertices)

    def sync_bytes(self, remote_updates: Sequence[int]) -> list[int]:
        """Per-device outgoing boundary-delta bytes from message counts."""
        per_update = self.config.boundary_update_bytes
        return [count * per_update for count in remote_updates]

    def empty_device_lists(self) -> list[list]:
        """One empty per-device list per device (task/accumulator shells)."""
        return [[] for _ in range(self.num_devices)]

    def schedule(
        self,
        device_tasks: Sequence[list[StreamTask]],
        sync_bytes_per_device: Sequence[int] | None = None,
    ) -> Timeline:
        """Schedule per-device task lists plus the boundary sync phase."""
        return self.scheduler.schedule(device_tasks, sync_bytes_per_device)
