"""Concurrent multi-query serving on one warmed execution session.

A production deployment of a transfer-centric graph system rarely runs
one traversal at a time: it serves a *workload* of queries (many SSSP or
BFS sources, PHP targets, ...) against the same graph.  The transfer
argument of the paper then extends from one traversal to the workload:
the expensive part — moving edge partitions across PCIe, warming shard
residency — is per *graph*, not per *query*, so concurrent queries should
share it.

:class:`QueryBatchRunner` executes K queries on one system session:

* one :class:`~repro.runtime.context.ExecutionContext` — partitioning,
  shards and (on multi-device sessions) shard residency are built and
  warmed **once** for the whole batch, so the first-touch residency
  copies that a sequential K-run workload pays K times are paid once;
* per super-iteration, every live query contributes one
  :class:`~repro.runtime.driver.IterationPlan`; filter-style
  whole-partition transfers are deduplicated across queries through
  :class:`SharedTransferState` (a partition shipped for one query this
  super-iteration is on the device for all of them);
* the merged per-device task lists are co-scheduled on the shared
  streams/PCIe, so one query's kernels overlap another's transfers; the
  batch makespan is the sum of the merged schedules.

Query *semantics* are untouched: every query keeps its own program
state and frontier, so the per-query values are bitwise identical to K
independent runs (asserted in ``tests/test_batch.py``); sharing only
affects simulated time and transfer volume.

**Priority scheduling.**  ``run(queries, priorities=...)`` turns the
runner into the multi-tenant scheduler behind
:class:`~repro.service.GraphService`: queries plan in ascending priority
rank (lower = more urgent) and the merged per-device task lists are
ordered in *strict class order* — every stream task of a higher class is
scheduled before any task of a lower class (within a class, submission
order is preserved), so a heavy analytical query cannot starve cheap
point lookups.  With ``priorities=None`` (or all-equal ranks) the merge
reduces bitwise to the historical FIFO co-schedule.

**Per-query service latency.**  The runner reports one latency per query
(:attr:`BatchResult.latencies`): within a super-iteration a query is
finished when *its own* tasks complete in the merged timeline — iteration
``i+1`` of a query depends only on its own iteration ``i``, so work of
lower-priority peers scheduled behind it does not block it — and its
clock accumulates those completion times plus its own planning
overheads.  The batch :attr:`BatchResult.makespan` stays the full
barriered co-schedule, so throughput accounting is unchanged; latencies
are what the serving layer's priority/SLA machinery consumes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

from repro.algorithms.base import VertexProgram
from repro.metrics.results import BatchResult
from repro.runtime.driver import QuerySession

__all__ = ["SharedTransferState", "QueryBatchRunner"]

#: Offset between consecutive priority classes in the merged schedule.
#: Within-plan task priorities are small (contribution ranks are tens,
#: multi-device order indices are bounded by the partition count), so the
#: stride makes class order strict while preserving each plan's internal
#: priority order.
PRIORITY_STRIDE = 1e6


class SharedTransferState:
    """Cross-query transfer dedup within one batch super-iteration.

    Whole-partition (ExpTM-filter style) transfers carry *edge* data,
    which is identical for every query; once one query ships a partition
    in a super-iteration, the partition sits in device memory for the
    rest of that super-iteration and the other queries' kernels read it
    for free.  The transient set resets every super-iteration — under
    the default ``static-prefix`` policy the oversubscribed working set
    churns between iterations, so no cross-iteration reuse is assumed
    beyond the persistent shard residency
    (:class:`~repro.transfer.residency.ShardResidency`).

    Under an adaptive cache policy this forget-everything behaviour is
    superseded: every shipped partition is offered to the
    :class:`~repro.cache.manager.CacheManager` for admission, and the
    hottest ones stay resident *across* super-iterations — a later
    super-iteration's queries hit the cache instead of re-shipping.
    This object then only dedups the ships the cache declined to keep,
    and its :attr:`shipped` set feeds the batch-aware cost model: a
    partition already shipped for query A prices the filter engine at
    zero for queries B..K planning later in the same super-iteration.
    """

    def __init__(self) -> None:
        self._shipped: set[int] = set()
        #: Whole-partition bytes *not* re-shipped thanks to batching.
        self.amortized_bytes: int = 0

    @property
    def shipped(self) -> frozenset[int]:
        """Partitions already on a device this super-iteration."""
        return frozenset(self._shipped)

    def begin_super_iteration(self) -> None:
        """Forget the transient shipped set (cache admissions persist)."""
        self._shipped.clear()

    def claim_partitions(
        self, partition_indices: Sequence[int], bytes_of: Callable[[int], int]
    ) -> list[int]:
        """Split off the partitions that still need shipping.

        Returns the indices the calling query must pay for (and marks
        them shipped); already-shipped ones are tallied as amortized
        bytes via ``bytes_of``.
        """
        fresh: list[int] = []
        for index in partition_indices:
            if index in self._shipped:
                self.amortized_bytes += bytes_of(index)
            else:
                self._shipped.add(index)
                fresh.append(index)
        return fresh


class QueryBatchRunner:
    """Runs K queries concurrently on one system session.

    Parameters
    ----------
    system:
        A :class:`~repro.systems.base.GraphSystem` (or the HyTGraph
        system wrapping its engine) already bound to a graph and
        hardware config.  Any system that runs on the unified runtime
        can serve batches; transfer amortization kicks in where the
        system's transfer pattern allows it (whole-partition filter
        transfers, shard residency), co-scheduling overlap everywhere.
    max_iterations:
        Per-query outer-iteration bound (defaults to the system's).
    """

    def __init__(self, system, max_iterations: int | None = None):
        self.system = system
        self.max_iterations = (
            max_iterations if max_iterations is not None else system.max_iterations
        )

    def run(
        self,
        queries: Sequence[tuple[VertexProgram, int | None]],
        priorities: Sequence[float] | None = None,
        injector=None,
        deadlines: Sequence[float | None] | None = None,
        checkpoint_interval: int = 1,
        preemptible: Sequence[bool] | None = None,
        should_preempt: Callable[[float], bool] | None = None,
        resume: Sequence[object | None] | None = None,
        trace_base: float = 0.0,
        trace_tracks: Sequence[str | None] | None = None,
    ) -> BatchResult:
        """Execute ``queries`` (program, source) pairs as one batch.

        ``priorities`` (one rank per query, lower = more urgent) turns on
        priority scheduling: queries plan in rank order and every merged
        stream task of a higher class is scheduled before any task of a
        lower class.  ``None`` — or all-equal ranks — reproduces the
        historical FIFO co-schedule bitwise.

        ``injector`` (a :class:`~repro.faults.injector.FaultInjector`)
        turns on fault injection and checkpoint/recovery: query state is
        checkpointed every ``checkpoint_interval`` super-iterations
        (checkpoint copies billed into the timeline), device losses roll
        every live query back to its last checkpoint and re-execute
        (bitwise-identical values — semantics are device-agnostic),
        transient transfer faults retry with their backoff billed into
        the co-schedule, and a transfer that exhausts its retry policy
        fails the owning query terminally (``fault_status`` /
        ``fault_cause`` / ``fault_attempts`` in its result extras).

        ``deadlines`` (one per query, ``None`` = no deadline, seconds of
        accumulated service latency) cancels queries whose clock exceeds
        their deadline at a super-iteration boundary.

        ``preemptible`` + ``should_preempt`` make the batch *yield*: at
        every super-iteration boundary ``should_preempt`` is consulted
        with the batch's elapsed makespan, and when it returns True every
        still-live preemptible query is suspended — its state captured as
        a :class:`~repro.faults.checkpoint.QueryCheckpoint` (the
        device-to-host copy billed) and handed back through
        ``extra["suspended"]`` — while non-preemptible queries run on to
        completion.  A suspended query's result carries
        ``extra["preempted"] = True`` and no values.  ``resume`` (one
        checkpoint or ``None`` per query) restores a previously
        suspended query's state before the first super-iteration, billing
        the host-to-device copy; re-executed values stay bitwise equal to
        an uninterrupted run because the vertex-program semantics never
        depended on where the boundary fell.

        ``trace_base``/``trace_tracks`` drive span emission when the
        context carries a recording tracer (see :mod:`repro.obs`).
        ``trace_base`` is the simulated service time this batch starts at
        (the wave start); ``trace_tracks`` names each query's trace lane
        (``None`` entries stay untraced — how replay sampling bounds
        10^5-query traces; omitted entirely, every query gets a
        ``query:q<i>`` lane).  Each traced query's lane is tiled with
        non-overlapping spans — restore/exec/checkpoint/capture — whose
        durations sum exactly to its :attr:`BatchResult.latencies` entry;
        device lanes replay the merged co-schedule.  Tracing emits spans
        only: every number the batch computes is bitwise unchanged.
        """
        if not queries:
            raise ValueError("a batch needs at least one query")
        if priorities is not None and len(priorities) != len(queries):
            raise ValueError(
                "got %d priorities for %d queries" % (len(priorities), len(queries))
            )
        if deadlines is not None and len(deadlines) != len(queries):
            raise ValueError(
                "got %d deadlines for %d queries" % (len(deadlines), len(queries))
            )
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        if preemptible is not None and len(preemptible) != len(queries):
            raise ValueError(
                "got %d preemptible flags for %d queries" % (len(preemptible), len(queries))
            )
        if resume is not None and len(resume) != len(queries):
            raise ValueError(
                "got %d resume checkpoints for %d queries" % (len(resume), len(queries))
            )
        system = self.system
        context = system.context
        driver = system.driver

        # Warm state (residency first-touch flags, page caches) is shared
        # by the whole batch: reset once here, NOT between queries.
        system.reset_run_state()
        sessions: list[QuerySession] = [
            system.start_session(program, source) for program, source in queries
        ]
        # Dense class offsets: arbitrary rank values (enum members, raw
        # floats) map onto consecutive stride multiples; rank 0 offset is
        # exactly 0.0 so an all-equal batch leaves task priorities
        # untouched.
        if priorities is None:
            offsets = [0.0] * len(sessions)
            order_key = lambda index: index  # noqa: E731 - submission order
        else:
            ranks = [float(rank) for rank in priorities]
            dense = {rank: position for position, rank in enumerate(sorted(set(ranks)))}
            offsets = [dense[rank] * PRIORITY_STRIDE for rank in ranks]
            order_key = lambda index: (ranks[index], index)  # noqa: E731
        shared = SharedTransferState()
        cache = context.cache
        cache_before = cache.snapshot_counters() if cache is not None else None

        tracer = context.tracer
        tracks: list[str | None] | None = None
        if tracer.enabled:
            if trace_tracks is None:
                tracks = ["query:q%d" % index for index in range(len(sessions))]
            elif len(trace_tracks) != len(queries):
                raise ValueError(
                    "got %d trace tracks for %d queries" % (len(trace_tracks), len(queries))
                )
            else:
                tracks = list(trace_tracks)
            # Event sources route through the same tracer for the run.
            if cache is not None:
                cache.tracer = tracer
            if injector is not None:
                injector.tracer = tracer
                injector.trace_tracks = tracks
        tracing = tracks is not None

        makespan = 0.0
        super_iterations = 0
        clocks = [0.0] * len(sessions)
        #: query index -> terminal fault record ("failed"/"cancelled").
        terminal: dict[int, dict] = {}
        #: query index -> suspension checkpoint (preempted this batch).
        suspended: dict[int, object] = {}
        preempt_capture_s = 0.0
        resume_restore_s = 0.0
        if resume is not None:
            # Resumed queries pick up where their suspension checkpoint
            # left off; the host-to-device state copy is billed up front.
            for index, checkpoint in enumerate(resume):
                if checkpoint is None:
                    continue
                cost = driver.restore_checkpoint(sessions[index], checkpoint)
                if tracing and tracks[index] is not None:
                    start = trace_base + clocks[index]
                    tracer.span(
                        "checkpoint", "resume-restore", tracks[index],
                        start, start + cost,
                        checkpoint_bytes=checkpoint.checkpoint_bytes,
                    )
                resume_restore_s += cost
                clocks[index] += cost
                makespan += cost
        checkpoints: list = [None] * len(sessions)
        checkpoint_time = 0.0
        recovery_time = 0.0
        recovered_supers = 0
        if injector is not None:
            faults_before = injector.faults_injected
            retries_before = injector.retries
            retry_time_before = injector.retry_time_s
            # Submit-time checkpoints are free: the query state still
            # lives host-side, nothing has to cross PCIe to save it.
            checkpoints = [driver.capture_checkpoint(session) for session in sessions]
        while True:
            live = [
                index
                for index, session in enumerate(sessions)
                if index not in terminal
                and index not in suspended
                and session.live
                and session.iteration < self.max_iterations
            ]
            if not live:
                break
            if (
                should_preempt is not None
                and preemptible is not None
                and any(preemptible[index] for index in live)
                and should_preempt(makespan)
            ):
                # Yield at the boundary: suspend every live preemptible
                # query (checkpoint copy billed); the rest of the batch
                # runs on without them.
                for index in live:
                    if not preemptible[index]:
                        continue
                    checkpoint = driver.capture_checkpoint(sessions[index])
                    cost = checkpoint.transfer_seconds(context.config)
                    if tracing and tracks[index] is not None:
                        start = trace_base + clocks[index]
                        tracer.span(
                            "checkpoint", "preempt-capture", tracks[index],
                            start, start + cost,
                            checkpoint_bytes=checkpoint.checkpoint_bytes,
                        )
                        tracer.instant(
                            "query", "preempted", track=tracks[index], t=start + cost
                        )
                    preempt_capture_s += cost
                    clocks[index] += cost
                    makespan += cost
                    suspended[index] = checkpoint
                live = [index for index in live if index not in suspended]
                if not live:
                    break
            live.sort(key=order_key)
            if tracing:
                # Fault/cache instants default to the simulated batch clock.
                tracer.set_clock(trace_base + makespan)
            if injector is not None:
                lost = injector.begin_super_iteration(context)
                if lost:
                    # Rollback/re-execution recovery: every live query
                    # returns to its last checkpoint (restore copies
                    # billed), then replays the lost super-iterations on
                    # the re-sharded survivors (or the host).  Values
                    # stay bitwise identical — semantics never depended
                    # on the device count.
                    for index in live:
                        checkpoint = checkpoints[index]
                        recovered_supers += max(
                            0, sessions[index].iteration - checkpoint.iteration
                        )
                        cost = driver.restore_checkpoint(sessions[index], checkpoint)
                        if tracing and tracks[index] is not None:
                            start = trace_base + clocks[index]
                            tracer.span(
                                "checkpoint", "recovery-restore", tracks[index],
                                start, start + cost,
                                checkpoint_bytes=checkpoint.checkpoint_bytes,
                            )
                        recovery_time += cost
                        clocks[index] += cost
                        makespan += cost
                    if tracing:
                        tracer.set_clock(trace_base + makespan)
            shared.begin_super_iteration()
            if cache is not None:
                # One cache observation window per super-iteration: the
                # frontier-aware policy rescores and evicts collapsed
                # partitions once per boundary, over the union of every
                # live query's frontier.
                cache.begin_iteration()

            # Plan every live query's iteration (mutates its state and the
            # shared warm-transfer bookkeeping, in deterministic query
            # order: priority rank first, then submission).  When the
            # cache enforces per-class budgets, each query's fills are
            # tagged with its priority rank so BULK scans cannot displace
            # the interactive working set.
            classed_cache = (
                cache is not None and cache.class_budgets and priorities is not None
            )
            plans = []
            for index in live:
                if classed_cache:
                    cache.set_fill_class(ranks[index])
                plans.append((index, driver.plan(system, sessions[index], shared=shared)))
            if classed_cache:
                cache.set_fill_class(None)

            merged_tasks = context.empty_device_lists()
            merged_sync = [0] * context.num_devices
            overhead = 0.0
            for index, plan in plans:
                session = sessions[index]
                sync_bytes = context.sync_bytes(plan.remote_updates)
                for device in range(context.num_devices):
                    merged_tasks[device].extend(
                        self._tag_task(task, index, offsets[index])
                        for task in plan.device_tasks[device]
                    )
                    merged_sync[device] += sync_bytes[device]
                overhead += plan.overhead_time
                # Per-query statistics: the query's own tasks scheduled
                # alone (its standalone cost given the shared warm state).
                session.result.iterations.append(driver.finish(plan))
                session.iteration += 1

            if injector is not None:
                # Transient transfer faults: retries and backoff are
                # folded into the merged tasks' transfer times before
                # scheduling; exhausted retry policies fail the owning
                # query terminally.
                for query_index, attempts in injector.perturb_transfers(
                    merged_tasks
                ).items():
                    terminal.setdefault(
                        query_index,
                        {
                            "status": "failed",
                            "cause": "transfer fault persisted through %d attempts"
                            % attempts,
                            "attempts": attempts,
                        },
                    )

            # Batch wall-clock: all live queries' tasks co-scheduled on the
            # shared devices, one boundary exchange for their merged deltas.
            timeline = context.schedule(merged_tasks, merged_sync)
            finish_times = self._per_query_finish(timeline)
            scale = context.time_scale
            if tracing:
                super_start = trace_base + makespan
                busy = self._emit_device_spans(tracer, tracks, timeline, super_start, scale)
                for index, plan in plans:
                    track = tracks[index]
                    if track is None:
                        continue
                    start = trace_base + clocks[index]
                    delta = finish_times.get(index, 0.0) * scale + plan.overhead_time
                    stats = plan.stats
                    per_query = busy.get(index, {})
                    tracer.span(
                        "iteration", "iter%d" % (sessions[index].iteration - 1),
                        track, start, start + delta,
                        super=super_iterations,
                        active_vertices=stats.active_vertices,
                        active_edges=stats.active_edges,
                        cache_hit_bytes=stats.cache_hit_bytes,
                        cache_miss_bytes=stats.cache_miss_bytes,
                        kernel_s=per_query.get("gpu", 0.0),
                        transfer_s=per_query.get("pcie", 0.0),
                        cpu_s=per_query.get("cpu", 0.0),
                    )
            for index, plan in plans:
                clocks[index] += finish_times.get(index, 0.0) * scale + plan.overhead_time
            makespan += timeline.makespan * scale + overhead
            super_iterations += 1
            if tracing:
                tracer.span(
                    "super", "super%d" % (super_iterations - 1), "service",
                    super_start, trace_base + makespan, queries=len(plans),
                )

            if deadlines is not None:
                for index in live:
                    deadline = deadlines[index]
                    if index in terminal or deadline is None:
                        continue
                    if clocks[index] > deadline:
                        terminal[index] = {
                            "status": "cancelled",
                            "cause": "deadline %.6f s exceeded at %.6f s"
                            % (deadline, clocks[index]),
                            "attempts": 0,
                        }
            if injector is not None and super_iterations % checkpoint_interval == 0:
                # Boundary checkpoints: still-running queries snapshot
                # their state; the device-to-host copy is billed.
                for index in live:
                    session = sessions[index]
                    if index in terminal or not session.live:
                        continue
                    checkpoint = driver.capture_checkpoint(session)
                    checkpoints[index] = checkpoint
                    cost = checkpoint.transfer_seconds(context.config)
                    if tracing and tracks[index] is not None:
                        start = trace_base + clocks[index]
                        tracer.span(
                            "checkpoint", "checkpoint", tracks[index],
                            start, start + cost,
                            checkpoint_bytes=checkpoint.checkpoint_bytes,
                        )
                    checkpoint_time += cost
                    clocks[index] += cost
                    makespan += cost

        results = []
        for index, session in enumerate(sessions):
            if index in terminal:
                record = terminal[index]
                result = session.result
                result.converged = False
                result.values = None
                result.extra["fault_status"] = record["status"]
                result.extra["fault_cause"] = record["cause"]
                result.extra["fault_attempts"] = record["attempts"]
                results.append(result)
            elif index in suspended:
                # Suspended mid-run: no values yet — the caller resumes
                # the query from its checkpoint in a later batch.
                result = session.result
                result.converged = False
                result.values = None
                result.extra["preempted"] = True
                results.append(result)
            else:
                results.append(system.finish_session(session))
        for index, result in enumerate(results):
            result.extra["batch_latency_s"] = clocks[index]
            if priorities is not None:
                result.extra["priority"] = priorities[index]
        first = results[0]
        cache_totals = (
            cache.delta(cache_before) if cache is not None else dict.fromkeys(
                ("hit_bytes", "miss_bytes", "evicted_bytes"), 0
            )
        )
        fault_kwargs: dict = {}
        if injector is not None:
            fault_kwargs = {
                "faults_injected": injector.faults_injected - faults_before,
                "retries": injector.retries - retries_before,
                "retry_time_s": injector.retry_time_s - retry_time_before,
                "checkpoint_time_s": checkpoint_time,
                "recovery_time_s": recovery_time,
                "recovered_super_iterations": recovered_supers,
            }
        return BatchResult(
            system=first.system,
            algorithm=first.algorithm,
            graph_name=first.graph_name,
            results=results,
            makespan=makespan,
            super_iterations=super_iterations,
            amortized_bytes=shared.amortized_bytes,
            cache_hit_bytes=cache_totals["hit_bytes"],
            cache_miss_bytes=cache_totals["miss_bytes"],
            cache_evicted_bytes=cache_totals["evicted_bytes"],
            latencies=clocks,
            extra={
                "backend": context.backend_name,
                "num_devices": context.num_devices,
                "resident_partitions": context.num_resident_partitions,
                "cache_policy": context.cache_policy,
                "scheduling": "fifo" if priorities is None else "priority",
                **(
                    {
                        "suspended": suspended,
                        "preempt_capture_s": preempt_capture_s,
                    }
                    if suspended
                    else {}
                ),
                **({"resume_restore_s": resume_restore_s} if resume_restore_s else {}),
                **(
                    {
                        "fault_events": list(injector.events),
                        "lost_devices": list(context.lost_devices),
                        "host_fallback": context.host_fallback,
                    }
                    if injector is not None
                    else {}
                ),
            },
            **fault_kwargs,
        )

    # ------------------------------------------------------------------
    # Merged-schedule helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _tag_task(task, query_index: int, priority_offset: float):
        """Copy a stream task into the merged co-schedule.

        The copy carries a ``q<index>|`` name prefix so per-query finish
        times can be read back out of the merged timeline, and — under
        priority scheduling — its class offset added to the task
        priority.  A zero offset leaves the priority field untouched, so
        FIFO merges schedule bit-for-bit like the untagged historical
        path (names never influence scheduling).
        """
        priority = task.priority if not priority_offset else priority_offset + task.priority
        return replace(task, name="q%d|%s" % (query_index, task.name), priority=priority)

    @staticmethod
    def _emit_device_spans(tracer, tracks, timeline, start_s: float, scale: float):
        """Replay one merged co-schedule onto the device trace lanes.

        Emits one span per task stage — ``dev<d>:<resource>`` lanes for
        device-owned stages, the bare resource lane for collective
        (boundary-sync) entries — skipping stages owned by untraced
        queries.  Returns ``{query: {resource: busy_s}}``, the per-query
        occupancy split the exec tiles annotate.
        """
        busy: dict[int, dict[str, float]] = {}
        for entry in timeline.entries:
            head, sep, _ = entry.name.partition("|")
            owner = None
            if sep and head.startswith("q") and head[1:].isdigit():
                owner = int(head[1:])
            for span in entry.spans:
                if owner is not None:
                    resources = busy.setdefault(owner, {})
                    resources[span.resource] = (
                        resources.get(span.resource, 0.0) + (span.end - span.start) * scale
                    )
                    if tracks[owner] is None:
                        continue
                track = (
                    "dev%d:%s" % (entry.device, span.resource)
                    if entry.device >= 0
                    else span.resource
                )
                tracer.span(
                    "device", entry.name, track,
                    start_s + span.start * scale, start_s + span.end * scale,
                    engine=entry.engine, stream=entry.stream,
                )
        return busy

    @staticmethod
    def _per_query_finish(timeline) -> dict[int, float]:
        """Latest task end per query in a merged timeline.

        Collective entries (the boundary sync) carry no ``q<index>|`` tag
        and are excluded: they belong to the batch, not to any query.
        """
        finish: dict[int, float] = {}
        for entry in timeline.entries:
            head, sep, _ = entry.name.partition("|")
            if not sep or not head.startswith("q") or not head[1:].isdigit():
                continue
            index = int(head[1:])
            end = entry.end
            if end > finish.get(index, 0.0):
                finish[index] = end
        return finish
