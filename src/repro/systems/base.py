"""Shared machinery of the simulated graph processing systems."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.graph.csr import CSRGraph
from repro.graph.partition import (
    DeviceShard,
    Partitioning,
    ShardedPartitioning,
    partition_by_bytes,
    partition_by_count,
)
from repro.metrics.results import RunResult
from repro.sim.config import HardwareConfig, default_config
from repro.sim.kernel import KernelModel
from repro.sim.multi_gpu import MultiDeviceScheduler
from repro.sim.pcie import PCIeModel
from repro.sim.streams import StreamScheduler

__all__ = ["GraphSystem"]

# Same scaled default as the HyTGraph engine: roughly 64 edge-balanced
# partitions regardless of the (scaled-down) graph size.
DEFAULT_PARTITION_DIVISOR = 64
DEFAULT_MAX_ITERATIONS = 10_000


class GraphSystem(ABC):
    """Base class: one system bound to one graph and one hardware config.

    Subclasses implement :meth:`run`; the base class provides the graph
    partitioning, the cost models and the bookkeeping every system shares.
    """

    #: Display name used in result tables.
    name: str = "system"

    #: Whether the system implements a sharded multi-device execution
    #: path.  Systems that don't refuse ``num_devices > 1`` configs
    #: instead of silently running single-device.
    supports_multi_device: bool = False

    def __init__(
        self,
        graph: CSRGraph,
        config: HardwareConfig | None = None,
        num_partitions: int | None = None,
        partition_bytes: int | None = None,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ):
        self.graph = graph
        self.config = config or default_config()
        self.max_iterations = max_iterations
        self.partitioning = self._build_partitioning(num_partitions, partition_bytes)
        self.kernel_model = KernelModel(self.config)
        self.pcie = PCIeModel(self.config)
        self.stream_scheduler = StreamScheduler(self.config)
        # Multi-GPU sharded execution (config.num_devices > 1).  Systems
        # with a multi-device path dispatch on ``self.sharding`` in run();
        # num_devices == 1 leaves everything single-device and untouched.
        self.sharding: ShardedPartitioning | None = None
        self.multi_scheduler: MultiDeviceScheduler | None = None
        if self.config.num_devices > 1:
            if not self.supports_multi_device:
                raise ValueError(
                    "%s has no multi-device execution path; run it with num_devices=1"
                    % self.name
                )
            self.sharding = ShardedPartitioning(self.partitioning, self.config.num_devices)
            self.multi_scheduler = MultiDeviceScheduler(self.config)

    def _build_partitioning(
        self, num_partitions: int | None, partition_bytes: int | None
    ) -> Partitioning:
        if num_partitions is not None:
            return partition_by_count(self.graph, num_partitions)
        if partition_bytes is not None:
            return partition_by_bytes(self.graph, partition_bytes)
        target_bytes = max(
            self.graph.edge_bytes_per_edge,
            self.graph.edge_data_bytes // DEFAULT_PARTITION_DIVISOR,
        )
        return partition_by_bytes(self.graph, target_bytes)

    # ------------------------------------------------------------------
    # Shared run helpers
    # ------------------------------------------------------------------
    def _init_run(
        self, program: VertexProgram, source: int | None
    ) -> tuple[ProgramState, np.ndarray, RunResult]:
        """Initialise program state, the pending frontier mask and the result record."""
        program.check_graph(self.graph)
        source = program.validate_source(self.graph, source)
        state = program.create_state(self.graph, source)
        frontier = program.initial_frontier(self.graph, state, source)
        result = RunResult(system=self.name, algorithm=program.name, graph_name=self.graph.name)
        return state, frontier.mask.copy(), result

    def _finish_run(self, result: RunResult, program: VertexProgram, state: ProgramState, pending: np.ndarray) -> RunResult:
        result.converged = not pending.any()
        result.values = program.vertex_result(state)
        return result

    def _active_edge_count(self, active_vertices: np.ndarray) -> int:
        if active_vertices.size == 0:
            return 0
        return int(self.graph.out_degrees[active_vertices].sum())

    # ------------------------------------------------------------------
    # Multi-device helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _count_remote(vertices: np.ndarray, shard: DeviceShard) -> int:
        """Activation messages from ``shard``'s device to other shards."""
        return int(((vertices < shard.vertex_start) | (vertices >= shard.vertex_end)).sum())

    def _sync_bytes(self, remote_updates: list[int]) -> list[int]:
        """Per-device outgoing boundary-delta bytes from message counts."""
        per_update = self.config.boundary_update_bytes
        return [count * per_update for count in remote_updates]

    def _process_per_device(
        self,
        program: VertexProgram,
        state: ProgramState,
        pending: np.ndarray,
        per_device_active: list[np.ndarray],
        remote_updates: list[int],
    ) -> None:
        """Each device pushes its shard's frontier slice, in device order.

        The value arrays stay global (the boundary exchange is charged in
        time and bytes, not re-simulated in the semantics), so activations
        land directly in the shared pending bitmap; cross-shard ones are
        counted as the emitting device's outgoing delta messages.
        """
        for device, device_active in enumerate(per_device_active):
            if device_active.size == 0:
                continue
            newly_active = program.process(self.graph, state, device_active)
            if newly_active.size:
                pending[newly_active] = True
                remote_updates[device] += self._count_remote(newly_active, self.sharding[device])

    @abstractmethod
    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        """Execute ``program`` to convergence on this system."""
