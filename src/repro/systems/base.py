"""Shared machinery of the simulated graph processing systems.

Every system runs on the device-agnostic execution runtime
(:mod:`repro.runtime`): the base class builds one
:class:`~repro.runtime.context.ExecutionContext` (shards, residency,
schedulers — trivial at ``num_devices == 1``) and one
:class:`~repro.runtime.driver.IterationDriver`, and implements the
``run`` loop once.  Subclasses only describe *one iteration* by
implementing :meth:`GraphSystem.plan_iteration`; the same method serves
1..N devices and, through the ``shared`` argument, the concurrent
multi-query batch runner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.graph.csr import CSRGraph
from repro.graph.partition import (
    Partitioning,
    partition_by_bytes,
    partition_by_count,
)
from repro.metrics.results import RunResult
from repro.runtime.batch import SharedTransferState
from repro.runtime.context import ExecutionContext
from repro.runtime.driver import IterationDriver, IterationPlan, QuerySession
from repro.sim.config import HardwareConfig, default_config
from repro.sim.kernel import KernelModel
from repro.sim.pcie import PCIeModel

__all__ = ["GraphSystem"]

# Same scaled default as the HyTGraph engine: roughly 64 edge-balanced
# partitions regardless of the (scaled-down) graph size.
DEFAULT_PARTITION_DIVISOR = 64
DEFAULT_MAX_ITERATIONS = 10_000


class GraphSystem(ABC):
    """Base class: one system bound to one graph and one hardware config.

    Subclasses implement :meth:`plan_iteration`; the base class provides
    the graph partitioning, the cost models, the execution runtime and
    the run loop every system shares.
    """

    #: Display name used in result tables.
    name: str = "system"

    #: Whether the system's transfer policy generalises to sharded
    #: multi-device execution.  Systems that don't refuse
    #: ``num_devices > 1`` configs instead of silently running
    #: single-device.
    supports_multi_device: bool = False

    #: Subclasses that adopt another component's runtime (the HyTGraph
    #: wrapper executes on its engine's hub-sorted partitioning) set
    #: this False and install ``partitioning``/``context``/``driver``
    #: themselves instead of having the base build a discarded set.
    builds_runtime: bool = True

    def __init__(
        self,
        graph: CSRGraph,
        config: HardwareConfig | None = None,
        num_partitions: int | None = None,
        partition_bytes: int | None = None,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        cache_policy: str = "static-prefix",
        cache_budget: int | None = None,
        backend: str | None = None,
    ):
        self.graph = graph
        self.config = config or default_config()
        self.max_iterations = max_iterations
        #: Device-memory cache policy/budget (:mod:`repro.cache`).
        #: Whole-partition transfer paths consult the context's cache;
        #: systems whose transfers are query-specific (compaction,
        #: zero-copy, UM paging) simply never hit it.
        self.cache_policy = cache_policy
        self.cache_budget = cache_budget
        #: Compute backend for the kernel layer (``None`` = ambient/default;
        #: see :mod:`repro.core.backends`).  Resolved by the context so an
        #: unknown or unavailable backend fails construction, not mid-run.
        self.backend = backend
        if self.config.num_devices > 1 and not self.supports_multi_device:
            raise ValueError(
                "%s has no multi-device execution path; run it with num_devices=1"
                % self.name
            )
        self.kernel_model = KernelModel(self.config)
        self.pcie = PCIeModel(self.config)
        if self.builds_runtime:
            self.partitioning = self._build_partitioning(num_partitions, partition_bytes)
            self.context = ExecutionContext(
                self.graph,
                self.partitioning,
                self.config,
                cache_policy=cache_policy,
                cache_budget=cache_budget,
                backend=backend,
            )
            self.driver = IterationDriver(self.context)

    @property
    def sharding(self):
        """The context's device shards (one trivial shard at 1 device)."""
        return self.context.sharding

    def _build_partitioning(
        self, num_partitions: int | None, partition_bytes: int | None
    ) -> Partitioning:
        if num_partitions is not None:
            return partition_by_count(self.graph, num_partitions)
        if partition_bytes is not None:
            return partition_by_bytes(self.graph, partition_bytes)
        target_bytes = max(
            self.graph.edge_bytes_per_edge,
            self.graph.edge_data_bytes // DEFAULT_PARTITION_DIVISOR,
        )
        return partition_by_bytes(self.graph, target_bytes)

    # ------------------------------------------------------------------
    # Session lifecycle (shared by run() and the batch runner)
    # ------------------------------------------------------------------
    def reset_run_state(self) -> None:
        """Reset warm cross-run state (residency flags, page caches).

        ``run`` calls this per run; the batch runner calls it once per
        batch so the warm state is shared across the batch's queries.
        """
        self.context.reset()

    def start_session(self, program: VertexProgram, source: int | None = None) -> QuerySession:
        """Initialise one query: program state, frontier and result record."""
        program.check_graph(self.graph)
        source = program.validate_source(self.graph, source)
        state = program.create_state(self.graph, source)
        frontier = program.initial_frontier(self.graph, state, source)
        result = RunResult(system=self.name, algorithm=program.name, graph_name=self.graph.name)
        result.extra["backend"] = self.context.backend_name
        if self.context.is_multi_device:
            result.extra["num_devices"] = self.config.num_devices
            result.extra["interconnect"] = self.config.interconnect_kind
        session = QuerySession(
            program=program,
            source=source,
            state=state,
            pending=frontier.mask.copy(),
            result=result,
        )
        self._prepare_session(session)
        return session

    def _prepare_session(self, session: QuerySession) -> None:
        """Hook: populate per-query scratch state (default: nothing)."""

    def finish_session(self, session: QuerySession) -> RunResult:
        """Finalise one query's result record."""
        result = session.result
        result.converged = not session.pending.any()
        result.values = session.program.vertex_result(session.state)
        self._annotate_result(result, session)
        return result

    def _annotate_result(self, result: RunResult, session: QuerySession) -> None:
        """Hook: attach system-specific extras (default: nothing)."""

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        """Execute ``program`` to convergence on this system."""
        self.reset_run_state()
        session = self.start_session(program, source)
        self.driver.drive(self, session, self.max_iterations)
        return self.finish_session(session)

    @abstractmethod
    def plan_iteration(
        self, session: QuerySession, shared: SharedTransferState | None = None
    ) -> IterationPlan:
        """Plan (and semantically execute) one outer iteration.

        Implementations mutate ``session.state`` / ``session.pending``
        exactly as the iteration's kernels would and return the
        iteration's per-device stream tasks, remote-activation counts
        and prefilled statistics.  ``shared`` is non-``None`` only under
        the batch runner, where whole-partition transfers may be
        deduplicated across the batch's queries.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _active_edge_count(self, active_vertices: np.ndarray) -> int:
        if active_vertices.size == 0:
            return 0
        return int(self.graph.out_degrees[active_vertices].sum())
