"""Whole-system implementations used in the paper's comparisons.

Each class reproduces the *transfer-management policy* of one of the
systems evaluated in Section VII, implemented on the shared simulator
substrate so the comparison is apples-to-apples:

* :class:`~repro.systems.exptm_filter.ExpTMFilterSystem` — the pure
  ExpTM-filter baseline the authors implement in HyTGraph's codebase.
* :class:`~repro.systems.subway.SubwaySystem` — Subway: global CPU
  compaction each iteration plus multi-round asynchronous re-processing.
* :class:`~repro.systems.emogi.EmogiSystem` — EMOGI: merged/aligned
  zero-copy access, synchronous iterations.
* :class:`~repro.systems.imptm_um.ImpTMUMSystem` — the pure
  unified-memory baseline (on-demand paging with an LRU device cache).
* :class:`~repro.systems.grus.GrusSystem` — Grus: unified-memory caching
  with priority prefetch, falling back to zero-copy when device memory is
  full.
* :class:`~repro.systems.cpu_galois.CPUGaloisSystem` — the CPU-only
  (Galois-like) in-memory baseline.
* :class:`~repro.systems.hytgraph.HyTGraphSystem` — the paper's system,
  wrapping :class:`repro.core.engine.HyTGraphEngine`.

All systems execute the same vertex programs and therefore produce
identical answers; they differ only in simulated time and transfer volume.
"""

from repro.systems.base import GraphSystem
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.subway import SubwaySystem
from repro.systems.emogi import EmogiSystem
from repro.systems.imptm_um import ImpTMUMSystem
from repro.systems.grus import GrusSystem
from repro.systems.cpu_galois import CPUGaloisSystem
from repro.systems.hytgraph import HyTGraphSystem

__all__ = [
    "GraphSystem",
    "ExpTMFilterSystem",
    "SubwaySystem",
    "EmogiSystem",
    "ImpTMUMSystem",
    "GrusSystem",
    "CPUGaloisSystem",
    "HyTGraphSystem",
    "SYSTEMS",
    "make_system",
]

SYSTEMS = {
    "exptm-f": ExpTMFilterSystem,
    "subway": SubwaySystem,
    "emogi": EmogiSystem,
    "imptm-um": ImpTMUMSystem,
    "grus": GrusSystem,
    "galois": CPUGaloisSystem,
    "hytgraph": HyTGraphSystem,
}


def make_system(name: str, graph, config=None, **kwargs) -> GraphSystem:
    """Instantiate a system by its short name (``"subway"``, ``"emogi"``, ...)."""
    key = name.lower()
    if key not in SYSTEMS:
        raise KeyError("unknown system %r; available: %s" % (name, ", ".join(sorted(SYSTEMS))))
    return SYSTEMS[key](graph, config=config, **kwargs)
