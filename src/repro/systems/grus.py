"""Grus-style hybrid unified-memory / zero-copy system (TACO 2021).

Grus manages the host-resident edge data with priorities: high-priority
data (the adjacency lists of high-degree vertices, which are the most
likely to be accessed repeatedly) is prefetched into device memory through
unified memory, and everything that does not fit is accessed through
zero-copy on demand.  Unlike HyTGraph, the split is static — it does not
consider the per-iteration processing cost of the two mechanisms — which
is exactly the difference the paper's comparison isolates.

When the whole graph fits in device memory Grus degenerates to "load once,
then run at device speed", matching its strong numbers on the SK graph and
on the small end of the Figure 9 scaling sweep.

Grus runs on the unified execution runtime but keeps
``supports_multi_device = False``: its static single-cache prefetch plan
has no sharded counterpart here, so multi-device configs are refused at
construction (and earlier, with a clear error, by the workload builder
and the CLI).

Modelling note: Grus's zero-copy fallback predates EMOGI's merged/aligned
warp access, so its on-demand reads are modelled at 32-byte request
granularity (the unoptimised coalescing of Figure 3e) rather than the
128-byte requests EMOGI issues.  DESIGN.md records this substitution.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.results import IterationStats, RunResult
from repro.runtime.batch import SharedTransferState
from repro.runtime.driver import IterationPlan, QuerySession
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind

__all__ = ["GrusSystem"]

# Request granularity of Grus's zero-copy fallback (no merged/aligned
# access, so accesses coalesce at the 32-byte sector level).
GRUS_ZC_REQUEST_BYTES = 32


class GrusSystem(GraphSystem):
    """Priority prefetch into unified memory plus zero-copy fallback."""

    name = "Grus"

    def __init__(self, *args, cache_bytes: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.cache_bytes = cache_bytes
        self._zc_throughput = self.pcie.zero_copy_throughput(GRUS_ZC_REQUEST_BYTES)
        self._vertex_cached, self._prefetched_bytes = self._plan_prefetch()
        # The prefetch happens once, through the unified-memory migration
        # path; charge it as preprocessing-like setup on the first
        # iteration after a warm-state reset.  The prefetched data is
        # query-independent, so a batch pays it once, not once per query.
        self._prefetch_time = self.pcie.page_migration_time(
            int(np.ceil(self._prefetched_bytes / self.config.um_page_bytes))
        )
        self._prefetch_pending = True

    def reset_run_state(self) -> None:
        super().reset_run_state()
        self._prefetch_pending = True

    def _plan_prefetch(self) -> tuple[np.ndarray, int]:
        """Decide which vertices' adjacency lists are cached on the device.

        Vertices are considered in descending out-degree order (the Grus
        priority) and admitted until the device cache budget is exhausted.
        Returns the boolean ``vertex_cached`` mask and the prefetched
        byte volume.
        """
        budget = self.config.gpu_memory_bytes if self.cache_bytes is None else self.cache_bytes
        per_edge = self.graph.edge_bytes_per_edge
        order = np.argsort(-self.graph.out_degrees, kind="stable")
        sizes = self.graph.out_degrees[order] * per_edge
        cumulative = np.cumsum(sizes)
        admitted = cumulative <= budget
        cached = np.zeros(self.graph.num_vertices, dtype=bool)
        cached[order[admitted]] = True
        prefetched_bytes = int(cumulative[admitted][-1]) if admitted.any() else 0
        return cached, prefetched_bytes

    def _annotate_result(self, result: RunResult, session: QuerySession) -> None:
        result.extra["cached_vertices"] = int(self._vertex_cached.sum())
        result.extra["prefetched_bytes"] = self._prefetched_bytes

    def plan_iteration(
        self, session: QuerySession, shared: SharedTransferState | None = None
    ) -> IterationPlan:
        pending = session.pending
        frontier = self.driver.snapshot(pending)
        active_vertices = frontier.active_ids

        cached_active = active_vertices[self._vertex_cached[active_vertices]]
        uncached_active = active_vertices[~self._vertex_cached[active_vertices]]

        device_tasks: list[list[StreamTask]] = self.context.empty_device_lists()
        transfer_bytes = 0
        transfer_time = 0.0
        if uncached_active.size:
            uncached_edges = self._active_edge_count(uncached_active)
            uncached_bytes = uncached_edges * self.graph.edge_bytes_per_edge
            zc_time = uncached_bytes / self._zc_throughput
            transfer_bytes += uncached_bytes
            transfer_time += zc_time
            device_tasks[0].append(
                StreamTask(
                    name="zero-copy-miss",
                    engine=EngineKind.IMP_ZERO_COPY.value,
                    transfer_time=zc_time,
                    kernel_time=self.kernel_model.kernel_time(uncached_edges),
                    overlapped_transfer=True,
                )
            )
        if cached_active.size:
            device_tasks[0].append(
                StreamTask(
                    name="um-cached",
                    engine=EngineKind.IMP_UNIFIED_MEMORY.value,
                    transfer_time=0.0,
                    kernel_time=self.kernel_model.kernel_time(self._active_edge_count(cached_active)),
                    overlapped_transfer=True,
                )
            )

        overhead_time = 0.0
        if self._prefetch_pending:
            overhead_time = self._prefetch_time
            transfer_bytes += self._prefetched_bytes
            transfer_time += self._prefetch_time
            self._prefetch_pending = False

        pending[active_vertices] = False
        remote_updates = [0] * self.context.num_devices
        self.driver.process_per_device(
            session.program, session.state, pending, frontier.per_device, remote_updates
        )

        stats = IterationStats(
            index=session.iteration,
            time=0.0,
            active_vertices=frontier.active_vertices,
            active_edges=frontier.active_edges,
            transfer_bytes=transfer_bytes,
            compaction_time=0.0,
            # The one-off prefetch is accounted in transfer_time but not
            # scheduled as a stream task, so the planner owns this field.
            transfer_time=transfer_time,
            processed_edges=frontier.active_edges,
            engine_partitions={
                EngineKind.IMP_UNIFIED_MEMORY.value: int(cached_active.size > 0),
                EngineKind.IMP_ZERO_COPY.value: int(uncached_active.size > 0),
            },
            engine_tasks={task.engine: 1 for task in device_tasks[0]},
        )
        return IterationPlan(
            stats=stats,
            device_tasks=device_tasks,
            remote_updates=remote_updates,
            overhead_time=overhead_time,
            busy_fields=("gpu",),
        )
