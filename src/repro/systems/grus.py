"""Grus-style hybrid unified-memory / zero-copy system (TACO 2021).

Grus manages the host-resident edge data with priorities: high-priority
data (the adjacency lists of high-degree vertices, which are the most
likely to be accessed repeatedly) is prefetched into device memory through
unified memory, and everything that does not fit is accessed through
zero-copy on demand.  Unlike HyTGraph, the split is static — it does not
consider the per-iteration processing cost of the two mechanisms — which
is exactly the difference the paper's comparison isolates.

When the whole graph fits in device memory Grus degenerates to "load once,
then run at device speed", matching its strong numbers on the SK graph and
on the small end of the Figure 9 scaling sweep.

Modelling note: Grus's zero-copy fallback predates EMOGI's merged/aligned
warp access, so its on-demand reads are modelled at 32-byte request
granularity (the unoptimised coalescing of Figure 3e) rather than the
128-byte requests EMOGI issues.  DESIGN.md records this substitution.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.metrics.results import IterationStats, RunResult
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind

__all__ = ["GrusSystem"]

# Request granularity of Grus's zero-copy fallback (no merged/aligned
# access, so accesses coalesce at the 32-byte sector level).
GRUS_ZC_REQUEST_BYTES = 32


class GrusSystem(GraphSystem):
    """Priority prefetch into unified memory plus zero-copy fallback."""

    name = "Grus"

    def __init__(self, *args, cache_bytes: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.cache_bytes = cache_bytes

    def _plan_prefetch(self) -> tuple[np.ndarray, int]:
        """Decide which vertices' adjacency lists are cached on the device.

        Vertices are considered in descending out-degree order (the Grus
        priority) and admitted until the device cache budget is exhausted.
        Returns the boolean ``vertex_cached`` mask and the prefetched
        byte volume.
        """
        budget = self.config.gpu_memory_bytes if self.cache_bytes is None else self.cache_bytes
        per_edge = self.graph.edge_bytes_per_edge
        order = np.argsort(-self.graph.out_degrees, kind="stable")
        sizes = self.graph.out_degrees[order] * per_edge
        cumulative = np.cumsum(sizes)
        admitted = cumulative <= budget
        cached = np.zeros(self.graph.num_vertices, dtype=bool)
        cached[order[admitted]] = True
        prefetched_bytes = int(cumulative[admitted][-1]) if admitted.any() else 0
        return cached, prefetched_bytes

    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        state, pending, result = self._init_run(program, source)
        zc_throughput = self.pcie.zero_copy_throughput(GRUS_ZC_REQUEST_BYTES)
        vertex_cached, prefetched_bytes = self._plan_prefetch()

        # The prefetch happens once, through the unified-memory migration
        # path; charge it as preprocessing-like setup on the first run.
        prefetch_time = self.pcie.page_migration_time(
            int(np.ceil(prefetched_bytes / self.config.um_page_bytes))
        )
        prefetch_pending = True

        iteration = 0
        while pending.any() and iteration < self.max_iterations:
            active_vertices = np.nonzero(pending)[0]
            active_edges = self._active_edge_count(active_vertices)

            cached_active = active_vertices[vertex_cached[active_vertices]]
            uncached_active = active_vertices[~vertex_cached[active_vertices]]

            stream_tasks: list[StreamTask] = []
            transfer_bytes = 0
            transfer_time = 0.0
            if uncached_active.size:
                uncached_edges = self._active_edge_count(uncached_active)
                uncached_bytes = uncached_edges * self.graph.edge_bytes_per_edge
                zc_time = uncached_bytes / zc_throughput
                transfer_bytes += uncached_bytes
                transfer_time += zc_time
                stream_tasks.append(
                    StreamTask(
                        name="zero-copy-miss",
                        engine=EngineKind.IMP_ZERO_COPY.value,
                        transfer_time=zc_time,
                        kernel_time=self.kernel_model.kernel_time(uncached_edges),
                        overlapped_transfer=True,
                    )
                )
            if cached_active.size:
                stream_tasks.append(
                    StreamTask(
                        name="um-cached",
                        engine=EngineKind.IMP_UNIFIED_MEMORY.value,
                        transfer_time=0.0,
                        kernel_time=self.kernel_model.kernel_time(self._active_edge_count(cached_active)),
                        overlapped_transfer=True,
                    )
                )
            timeline = self.stream_scheduler.schedule(stream_tasks)
            iteration_time = timeline.makespan
            if prefetch_pending:
                iteration_time += prefetch_time
                transfer_bytes += prefetched_bytes
                transfer_time += prefetch_time
                prefetch_pending = False

            pending[active_vertices] = False
            newly_active = program.process(self.graph, state, active_vertices)
            if newly_active.size:
                pending[newly_active] = True

            result.iterations.append(
                IterationStats(
                    index=iteration,
                    time=iteration_time,
                    active_vertices=int(active_vertices.size),
                    active_edges=active_edges,
                    transfer_bytes=transfer_bytes,
                    compaction_time=0.0,
                    transfer_time=transfer_time,
                    kernel_time=timeline.busy_time("gpu"),
                    processed_edges=active_edges,
                    engine_partitions={
                        EngineKind.IMP_UNIFIED_MEMORY.value: int(cached_active.size > 0),
                        EngineKind.IMP_ZERO_COPY.value: int(uncached_active.size > 0),
                    },
                    engine_tasks={task.engine: 1 for task in stream_tasks},
                )
            )
            iteration += 1

        result.extra["cached_vertices"] = int(vertex_cached.sum())
        result.extra["prefetched_bytes"] = prefetched_bytes
        return self._finish_run(result, program, state, pending)
