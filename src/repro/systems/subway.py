"""Subway-style ExpTM-compaction system (EuroSys 2020).

Subway minimises transferred bytes by building, every iteration, a fresh
*subgraph of the active vertices*: the CPU packs their adjacency lists
(plus a new index array) into contiguous memory and ships it with one
explicit copy.  The GPU then processes the loaded subgraph **multiple
times** (asynchronous multi-round processing) to squeeze every update out
of the transferred data before the next, expensive, compaction round.

The multi-round behaviour is what Table VI dissects: it pays off for
accumulative algorithms such as PageRank (extra local rounds still push
useful residual mass, so fewer outer iterations and transfers) but causes
stale computation for value-replacement algorithms such as SSSP (local
updates get overwritten by better values arriving later, so Subway can
move *more* data than EMOGI).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.metrics.results import IterationStats, RunResult
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind
from repro.transfer.explicit_compaction import ExplicitCompactionEngine

__all__ = ["SubwaySystem"]

# Safety cap on local (no-transfer) rounds per outer iteration; Subway's
# own async mode bounds the local work similarly.
MAX_LOCAL_ROUNDS = 32


class SubwaySystem(GraphSystem):
    """Global CPU compaction plus multi-round asynchronous processing."""

    name = "Subway"
    supports_multi_device = True

    def __init__(self, *args, async_rounds: int = MAX_LOCAL_ROUNDS, **kwargs):
        super().__init__(*args, **kwargs)
        if async_rounds < 0:
            raise ValueError("async_rounds must be non-negative")
        self.async_rounds = async_rounds

    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        if self.sharding is not None:
            return self._run_multi(program, source)
        state, pending, result = self._init_run(program, source)
        engine = ExplicitCompactionEngine(self.graph, self.config)

        iteration = 0
        while pending.any() and iteration < self.max_iterations:
            active_vertices = np.nonzero(pending)[0]
            active_edges = self._active_edge_count(active_vertices)

            # One global compaction covering every active vertex; the
            # whole-graph "partition" is irrelevant to the engine's math.
            outcome = engine.transfer(self.partitioning[0], active_vertices)

            # First processing round over the loaded subgraph.
            pending[active_vertices] = False
            loaded = np.zeros(self.graph.num_vertices, dtype=bool)
            loaded[active_vertices] = True
            processed_edges = active_edges
            newly_active = program.process(self.graph, state, active_vertices)
            if newly_active.size:
                pending[newly_active] = True

            # Multi-round async: keep processing activations whose edges are
            # already on the GPU (i.e. inside the loaded subgraph).
            for _ in range(self.async_rounds):
                local = np.nonzero(pending & loaded)[0]
                if local.size == 0:
                    break
                pending[local] = False
                processed_edges += self._active_edge_count(local)
                newly_active = program.process(self.graph, state, local)
                if newly_active.size:
                    pending[newly_active] = True

            kernel_time = self.kernel_model.kernel_time(processed_edges)
            timeline = self.stream_scheduler.schedule(
                [
                    StreamTask(
                        name="compacted-subgraph",
                        engine=EngineKind.EXP_COMPACTION.value,
                        cpu_time=outcome.cpu_time,
                        transfer_time=outcome.transfer_time,
                        kernel_time=kernel_time,
                        overlapped_transfer=False,
                    )
                ]
            )

            result.iterations.append(
                IterationStats(
                    index=iteration,
                    time=timeline.makespan,
                    active_vertices=int(active_vertices.size),
                    active_edges=active_edges,
                    transfer_bytes=outcome.bytes_transferred,
                    compaction_time=outcome.cpu_time,
                    transfer_time=outcome.transfer_time,
                    kernel_time=kernel_time,
                    processed_edges=processed_edges,
                    engine_partitions={EngineKind.EXP_COMPACTION.value: 1},
                    engine_tasks={EngineKind.EXP_COMPACTION.value: 1},
                )
            )
            iteration += 1

        return self._finish_run(result, program, state, pending)

    def _run_multi(self, program: VertexProgram, source: int | None) -> RunResult:
        """Sharded Subway: per-device compaction of the owned frontier.

        The host CPU compacts every device's active subgraph — the
        compactions serialise on the shared CPU resource, the copies on
        the shared host PCIe — then each device runs its multi-round
        asynchronous processing over its own loaded subgraph, and the
        iteration ends with the boundary-delta exchange.
        """
        state, pending, result = self._init_run(program, source)
        result.extra["num_devices"] = self.config.num_devices
        result.extra["interconnect"] = self.config.interconnect_kind
        engine = ExplicitCompactionEngine(self.graph, self.config)
        sharding = self.sharding

        iteration = 0
        while pending.any() and iteration < self.max_iterations:
            active_vertices = np.nonzero(pending)[0]
            active_edges = self._active_edge_count(active_vertices)
            per_device_active = sharding.split_sorted_vertices(active_vertices)

            outcomes = []
            transfer_bytes = 0
            for device, device_active in enumerate(per_device_active):
                if device_active.size == 0:
                    outcomes.append(None)
                    continue
                outcome = engine.transfer(self.partitioning[0], device_active)
                outcomes.append(outcome)
                transfer_bytes += outcome.bytes_transferred

            # First round: every device processes the frontier it owns.
            pending[active_vertices] = False
            loaded = np.zeros(self.graph.num_vertices, dtype=bool)
            loaded[active_vertices] = True
            processed_per_device = [self._active_edge_count(d) for d in per_device_active]
            remote_updates = [0] * sharding.num_devices
            self._process_per_device(program, state, pending, per_device_active, remote_updates)

            # Multi-round async: each device keeps draining activations
            # whose edges sit in its own loaded subgraph.  The round's
            # local frontier is scanned once and sliced per shard; a
            # device sees activations produced by the other devices only
            # from the next round on (per-round bulk-synchronous view).
            for _ in range(self.async_rounds):
                local_frontier = np.nonzero(pending & loaded)[0]
                if local_frontier.size == 0:
                    break
                for device, local in enumerate(sharding.split_sorted_vertices(local_frontier)):
                    if local.size == 0:
                        continue
                    shard = sharding[device]
                    pending[local] = False
                    processed_per_device[device] += self._active_edge_count(local)
                    newly_active = program.process(self.graph, state, local)
                    if newly_active.size:
                        pending[newly_active] = True
                        remote_updates[device] += self._count_remote(newly_active, shard)

            stream_task_lists: list[list[StreamTask]] = [[] for _ in sharding]
            active_devices = 0
            for device, outcome in enumerate(outcomes):
                if outcome is None:
                    continue
                active_devices += 1
                stream_task_lists[device].append(
                    StreamTask(
                        name="compacted-subgraph-d%d" % device,
                        engine=EngineKind.EXP_COMPACTION.value,
                        cpu_time=outcome.cpu_time,
                        transfer_time=outcome.transfer_time,
                        kernel_time=self.kernel_model.kernel_time(processed_per_device[device]),
                        overlapped_transfer=False,
                    )
                )

            sync_bytes = self._sync_bytes(remote_updates)
            timeline = self.multi_scheduler.schedule(stream_task_lists, sync_bytes)

            result.iterations.append(
                IterationStats(
                    index=iteration,
                    time=timeline.makespan,
                    active_vertices=int(active_vertices.size),
                    active_edges=active_edges,
                    transfer_bytes=transfer_bytes,
                    compaction_time=timeline.busy_time("cpu"),
                    transfer_time=timeline.busy_time("pcie"),
                    kernel_time=timeline.busy_time("gpu"),
                    processed_edges=int(sum(processed_per_device)),
                    engine_partitions={EngineKind.EXP_COMPACTION.value: active_devices},
                    engine_tasks={EngineKind.EXP_COMPACTION.value: active_devices},
                    interconnect_bytes=int(sum(sync_bytes)),
                    sync_time=timeline.sync_time,
                )
            )
            iteration += 1

        return self._finish_run(result, program, state, pending)
