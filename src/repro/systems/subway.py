"""Subway-style ExpTM-compaction system (EuroSys 2020).

Subway minimises transferred bytes by building, every iteration, a fresh
*subgraph of the active vertices*: the CPU packs their adjacency lists
(plus a new index array) into contiguous memory and ships it with one
explicit copy.  The GPU then processes the loaded subgraph **multiple
times** (asynchronous multi-round processing) to squeeze every update out
of the transferred data before the next, expensive, compaction round.

The multi-round behaviour is what Table VI dissects: it pays off for
accumulative algorithms such as PageRank (extra local rounds still push
useful residual mass, so fewer outer iterations and transfers) but causes
stale computation for value-replacement algorithms such as SSSP (local
updates get overwritten by better values arriving later, so Subway can
move *more* data than EMOGI).

On multi-device sessions the host CPU compacts every device's owned
frontier — the compactions serialise on the shared CPU resource, the
copies on the shared host PCIe — then each device runs its multi-round
asynchronous processing over its own loaded subgraph, and the iteration
ends with the boundary-delta exchange.  Compacted subgraphs are
query-specific (they pack exactly the query's active adjacency lists),
so batches gain co-scheduling overlap but no transfer dedup — and for
the same reason the device-memory cache subsystem (:mod:`repro.cache`)
has nothing to keep for Subway: a compacted subgraph is useless to any
other iteration or query, so its ``cache_hit_bytes`` stay zero under
every policy.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.results import IterationStats
from repro.runtime.batch import SharedTransferState
from repro.runtime.driver import IterationPlan, QuerySession
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind
from repro.transfer.explicit_compaction import ExplicitCompactionEngine

__all__ = ["SubwaySystem"]

# Safety cap on local (no-transfer) rounds per outer iteration; Subway's
# own async mode bounds the local work similarly.
MAX_LOCAL_ROUNDS = 32


class SubwaySystem(GraphSystem):
    """Global CPU compaction plus multi-round asynchronous processing."""

    name = "Subway"
    supports_multi_device = True

    def __init__(self, *args, async_rounds: int = MAX_LOCAL_ROUNDS, **kwargs):
        super().__init__(*args, **kwargs)
        if async_rounds < 0:
            raise ValueError("async_rounds must be non-negative")
        self.async_rounds = async_rounds
        self.engine = ExplicitCompactionEngine(self.graph, self.config)

    def plan_iteration(
        self, session: QuerySession, shared: SharedTransferState | None = None
    ) -> IterationPlan:
        program, state, pending = session.program, session.state, session.pending
        sharding = self.sharding
        frontier = self.driver.snapshot(pending)
        active_ids = frontier.active_ids

        # One compaction per device covering the frontier it owns; the
        # whole-graph "partition" is irrelevant to the engine's math.
        outcomes = []
        transfer_bytes = 0
        for device_active in frontier.per_device:
            if device_active.size == 0:
                outcomes.append(None)
                continue
            outcome = self.engine.transfer(self.partitioning[0], device_active)
            outcomes.append(outcome)
            transfer_bytes += outcome.bytes_transferred

        # First round: every device processes the frontier it owns.
        pending[active_ids] = False
        loaded = np.zeros(self.graph.num_vertices, dtype=bool)
        loaded[active_ids] = True
        processed_per_device = [self._active_edge_count(d) for d in frontier.per_device]
        remote_updates = [0] * self.context.num_devices
        self.driver.process_per_device(program, state, pending, frontier.per_device, remote_updates)

        # Multi-round async: each device keeps draining activations whose
        # edges sit in its own loaded subgraph.  The round's local
        # frontier is scanned once and sliced per shard; a device sees
        # activations produced by the other devices only from the next
        # round on (per-round bulk-synchronous view).
        for _ in range(self.async_rounds):
            local_frontier = np.nonzero(pending & loaded)[0]
            if local_frontier.size == 0:
                break
            for device, local in enumerate(sharding.split_sorted_vertices(local_frontier)):
                if local.size == 0:
                    continue
                pending[local] = False
                processed_per_device[device] += self._active_edge_count(local)
                newly_active = program.process(self.graph, state, local)
                if newly_active.size:
                    pending[newly_active] = True
                    remote_updates[device] += self.context.count_remote(newly_active, device)

        device_tasks: list[list[StreamTask]] = self.context.empty_device_lists()
        active_devices = 0
        for device, outcome in enumerate(outcomes):
            if outcome is None:
                continue
            active_devices += 1
            device_tasks[device].append(
                StreamTask(
                    name="compacted-subgraph-d%d" % device,
                    engine=EngineKind.EXP_COMPACTION.value,
                    cpu_time=outcome.cpu_time,
                    transfer_time=outcome.transfer_time,
                    kernel_time=self.kernel_model.kernel_time(processed_per_device[device]),
                    overlapped_transfer=False,
                )
            )

        stats = IterationStats(
            index=session.iteration,
            time=0.0,
            active_vertices=frontier.active_vertices,
            active_edges=frontier.active_edges,
            transfer_bytes=transfer_bytes,
            processed_edges=int(sum(processed_per_device)),
            engine_partitions={EngineKind.EXP_COMPACTION.value: active_devices},
            engine_tasks={EngineKind.EXP_COMPACTION.value: active_devices},
        )
        return IterationPlan(stats=stats, device_tasks=device_tasks, remote_updates=remote_updates)
