"""Pure unified-memory system (the "ImpTM-UM" row of Table V).

The edge arrays live in CUDA managed memory; touching an absent 4-KB page
triggers a fault and a page migration, and migrated pages stay cached in
device memory until evicted.  When the whole graph fits in GPU memory the
data is transferred exactly once and every later iteration runs at device
speed — which is why the UM-based systems win on the SK graph — but on
larger graphs the page-granular transfers carry a lot of inactive data and
the fault overhead dominates (Figure 3d).

ImpTM-UM runs on the unified execution runtime but keeps
``supports_multi_device = False``: one managed-memory page cache has no
sharded counterpart here, so multi-device configs are refused at
construction (and earlier, with a clear error, by the workload builder
and the CLI).  Under the batch runner the page cache is warm across the
batch's queries — later queries fault in only what earlier ones evicted.
"""

from __future__ import annotations

from repro.metrics.results import IterationStats, RunResult
from repro.runtime.batch import SharedTransferState
from repro.runtime.driver import IterationPlan, QuerySession
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind
from repro.transfer.unified_memory import UnifiedMemoryEngine

__all__ = ["ImpTMUMSystem"]


class ImpTMUMSystem(GraphSystem):
    """Unified-memory on-demand paging with an LRU device cache."""

    name = "ImpTM-UM"

    def __init__(self, *args, cache_bytes: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.cache_bytes = cache_bytes
        self.engine = UnifiedMemoryEngine(self.graph, self.config, cache_bytes=self.cache_bytes)

    def reset_run_state(self) -> None:
        super().reset_run_state()
        self.engine.reset()

    def _annotate_result(self, result: RunResult, session: QuerySession) -> None:
        # Per-query counters accumulated around this session's own
        # transfer calls — under the batch runner the page cache is
        # shared, so the engine-wide totals would misattribute the whole
        # batch's activity to every query.
        counters = session.scratch.get(
            "page_cache", {"accesses": 0, "hits": 0, "faults": 0, "evictions": 0}
        )
        result.extra["page_cache_stats"] = {
            "hits": counters["hits"],
            "faults": counters["faults"],
            "evictions": counters["evictions"],
            "hit_rate": counters["hits"] / counters["accesses"] if counters["accesses"] else 0.0,
        }

    def plan_iteration(
        self, session: QuerySession, shared: SharedTransferState | None = None
    ) -> IterationPlan:
        pending = session.pending
        frontier = self.driver.snapshot(pending)
        active_vertices = frontier.active_ids

        cache_stats = self.engine.cache.stats
        before = (cache_stats.accesses, cache_stats.hits, cache_stats.faults, cache_stats.evictions)
        outcome = self.engine.transfer(self.partitioning[0], active_vertices)
        counters = session.scratch.setdefault(
            "page_cache", {"accesses": 0, "hits": 0, "faults": 0, "evictions": 0}
        )
        counters["accesses"] += cache_stats.accesses - before[0]
        counters["hits"] += cache_stats.hits - before[1]
        counters["faults"] += cache_stats.faults - before[2]
        counters["evictions"] += cache_stats.evictions - before[3]
        kernel_time = self.kernel_model.kernel_time(frontier.active_edges)
        device_tasks: list[list[StreamTask]] = self.context.empty_device_lists()
        device_tasks[0].append(
            StreamTask(
                name="um-frontier",
                engine=EngineKind.IMP_UNIFIED_MEMORY.value,
                transfer_time=outcome.transfer_time,
                kernel_time=kernel_time,
                overlapped_transfer=True,
            )
        )

        pending[active_vertices] = False
        remote_updates = [0] * self.context.num_devices
        self.driver.process_per_device(
            session.program, session.state, pending, frontier.per_device, remote_updates
        )

        stats = IterationStats(
            index=session.iteration,
            time=0.0,
            active_vertices=frontier.active_vertices,
            active_edges=frontier.active_edges,
            transfer_bytes=outcome.bytes_transferred,
            processed_edges=frontier.active_edges,
            engine_partitions={EngineKind.IMP_UNIFIED_MEMORY.value: 1},
            engine_tasks={EngineKind.IMP_UNIFIED_MEMORY.value: 1},
        )
        return IterationPlan(stats=stats, device_tasks=device_tasks, remote_updates=remote_updates)
