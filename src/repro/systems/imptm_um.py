"""Pure unified-memory system (the "ImpTM-UM" row of Table V).

The edge arrays live in CUDA managed memory; touching an absent 4-KB page
triggers a fault and a page migration, and migrated pages stay cached in
device memory until evicted.  When the whole graph fits in GPU memory the
data is transferred exactly once and every later iteration runs at device
speed — which is why the UM-based systems win on the SK graph — but on
larger graphs the page-granular transfers carry a lot of inactive data and
the fault overhead dominates (Figure 3d).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.metrics.results import IterationStats, RunResult
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind
from repro.transfer.unified_memory import UnifiedMemoryEngine

__all__ = ["ImpTMUMSystem"]


class ImpTMUMSystem(GraphSystem):
    """Unified-memory on-demand paging with an LRU device cache."""

    name = "ImpTM-UM"

    def __init__(self, *args, cache_bytes: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.cache_bytes = cache_bytes

    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        state, pending, result = self._init_run(program, source)
        engine = UnifiedMemoryEngine(self.graph, self.config, cache_bytes=self.cache_bytes)
        engine.reset()

        iteration = 0
        while pending.any() and iteration < self.max_iterations:
            active_vertices = np.nonzero(pending)[0]
            active_edges = self._active_edge_count(active_vertices)

            outcome = engine.transfer(self.partitioning[0], active_vertices)
            kernel_time = self.kernel_model.kernel_time(active_edges)
            timeline = self.stream_scheduler.schedule(
                [
                    StreamTask(
                        name="um-frontier",
                        engine=EngineKind.IMP_UNIFIED_MEMORY.value,
                        transfer_time=outcome.transfer_time,
                        kernel_time=kernel_time,
                        overlapped_transfer=True,
                    )
                ]
            )

            pending[active_vertices] = False
            newly_active = program.process(self.graph, state, active_vertices)
            if newly_active.size:
                pending[newly_active] = True

            result.iterations.append(
                IterationStats(
                    index=iteration,
                    time=timeline.makespan,
                    active_vertices=int(active_vertices.size),
                    active_edges=active_edges,
                    transfer_bytes=outcome.bytes_transferred,
                    compaction_time=0.0,
                    transfer_time=outcome.transfer_time,
                    kernel_time=kernel_time,
                    processed_edges=active_edges,
                    engine_partitions={EngineKind.IMP_UNIFIED_MEMORY.value: 1},
                    engine_tasks={EngineKind.IMP_UNIFIED_MEMORY.value: 1},
                )
            )
            iteration += 1

        result.extra["page_cache_stats"] = {
            "hits": engine.cache.stats.hits,
            "faults": engine.cache.stats.faults,
            "evictions": engine.cache.stats.evictions,
            "hit_rate": engine.cache.stats.hit_rate,
        }
        return self._finish_run(result, program, state, pending)
