"""HyTGraph wrapped in the common :class:`GraphSystem` interface.

The actual runtime lives in :mod:`repro.core.engine`; this wrapper exists
so the benchmark harness can instantiate the paper's system exactly like
the baselines and collect identical :class:`~repro.metrics.results.RunResult`
records.
"""

from __future__ import annotations

from repro.algorithms.base import VertexProgram
from repro.core.engine import HyTGraphEngine, HyTGraphOptions
from repro.graph.csr import CSRGraph
from repro.metrics.results import RunResult
from repro.sim.config import HardwareConfig
from repro.systems.base import GraphSystem

__all__ = ["HyTGraphSystem"]


class HyTGraphSystem(GraphSystem):
    """The paper's hybrid-transfer-management system."""

    name = "HyTGraph"
    supports_multi_device = True

    def __init__(
        self,
        graph: CSRGraph,
        config: HardwareConfig | None = None,
        options: HyTGraphOptions | None = None,
        num_partitions: int | None = None,
        partition_bytes: int | None = None,
        max_iterations: int = 10_000,
    ):
        super().__init__(
            graph,
            config=config,
            num_partitions=num_partitions,
            partition_bytes=partition_bytes,
            max_iterations=max_iterations,
        )
        self.options = options or HyTGraphOptions()
        if num_partitions is not None:
            self.options.num_partitions = num_partitions
        if partition_bytes is not None:
            self.options.partition_bytes = partition_bytes
        self.options.max_iterations = max_iterations
        self.engine = HyTGraphEngine(graph, config=self.config, options=self.options)

    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        result = self.engine.run(program, source=source)
        result.system = self.name
        return result
