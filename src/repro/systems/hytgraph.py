"""HyTGraph wrapped in the common :class:`GraphSystem` interface.

The actual runtime lives in :mod:`repro.core.engine`; this wrapper exists
so the benchmark harness can instantiate the paper's system exactly like
the baselines and collect identical :class:`~repro.metrics.results.RunResult`
records.  The wrapper adopts the engine's execution context and driver
(built over the hub-sorted graph's partitioning), so the session/plan
protocol — including the concurrent multi-query batch runner — drives
the engine directly.
"""

from __future__ import annotations

from repro.algorithms.base import VertexProgram
from repro.core.engine import HyTGraphEngine, HyTGraphOptions
from repro.graph.csr import CSRGraph
from repro.metrics.results import RunResult
from repro.runtime.batch import SharedTransferState
from repro.runtime.driver import IterationPlan, QuerySession
from repro.sim.config import HardwareConfig
from repro.systems.base import GraphSystem

__all__ = ["HyTGraphSystem"]


class HyTGraphSystem(GraphSystem):
    """The paper's hybrid-transfer-management system."""

    name = "HyTGraph"
    supports_multi_device = True
    builds_runtime = False

    def __init__(
        self,
        graph: CSRGraph,
        config: HardwareConfig | None = None,
        options: HyTGraphOptions | None = None,
        num_partitions: int | None = None,
        partition_bytes: int | None = None,
        max_iterations: int = 10_000,
        cache_policy: str = "static-prefix",
        cache_budget: int | None = None,
        backend: str | None = None,
    ):
        super().__init__(
            graph,
            config=config,
            num_partitions=num_partitions,
            partition_bytes=partition_bytes,
            max_iterations=max_iterations,
            cache_policy=cache_policy,
            cache_budget=cache_budget,
            backend=backend,
        )
        self.options = options or HyTGraphOptions()
        if num_partitions is not None:
            self.options.num_partitions = num_partitions
        if partition_bytes is not None:
            self.options.partition_bytes = partition_bytes
        self.options.max_iterations = max_iterations
        # The engine builds the runtime, so the cache and backend knobs
        # ride in through its options (explicit arguments win over an
        # options object carrying the defaults).
        if cache_policy != "static-prefix":
            self.options.cache_policy = cache_policy
        if cache_budget is not None:
            self.options.cache_budget = cache_budget
        if backend is not None:
            self.options.backend = backend
        self.engine = HyTGraphEngine(graph, config=self.config, options=self.options)
        # Execute on the engine's runtime, built over the hub-sorted
        # graph's partitioning (builds_runtime=False skips the base build).
        self.partitioning = self.engine.partitioning
        self.context = self.engine.context
        self.driver = self.engine.driver

    def reset_run_state(self) -> None:
        self.engine.reset_run_state()

    def start_session(self, program: VertexProgram, source: int | None = None) -> QuerySession:
        session = self.engine.start_session(program, source)
        session.result.system = self.name
        return session

    def plan_iteration(
        self, session: QuerySession, shared: SharedTransferState | None = None
    ) -> IterationPlan:
        return self.engine.plan_iteration(session, shared)

    def finish_session(self, session: QuerySession) -> RunResult:
        result = self.engine.finish_session(session)
        result.system = self.name
        return result

    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        result = self.engine.run(program, source=source)
        result.system = self.name
        return result
