"""CPU-only in-memory baseline (the "Galois" row of Table V).

A shared-memory CPU framework keeps the whole graph in host DRAM, so it
never pays PCIe transfers at all — its cost is simply that a 10-core CPU
pushes edges an order of magnitude slower than a GPU.  The paper includes
it to show that the GPU-accelerated systems are worth the transfer
management trouble (5.3x-12.8x speedups for HyTGraph).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.metrics.results import IterationStats, RunResult
from repro.systems.base import GraphSystem

__all__ = ["CPUGaloisSystem"]


class CPUGaloisSystem(GraphSystem):
    """In-memory CPU execution with no host-GPU traffic."""

    name = "Galois"

    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        state, pending, result = self._init_run(program, source)

        iteration = 0
        while pending.any() and iteration < self.max_iterations:
            active_vertices = np.nonzero(pending)[0]
            active_edges = self._active_edge_count(active_vertices)
            iteration_time = self.kernel_model.cpu_processing_time(active_edges)

            pending[active_vertices] = False
            newly_active = program.process(self.graph, state, active_vertices)
            if newly_active.size:
                pending[newly_active] = True

            result.iterations.append(
                IterationStats(
                    index=iteration,
                    time=iteration_time,
                    active_vertices=int(active_vertices.size),
                    active_edges=active_edges,
                    transfer_bytes=0,
                    compaction_time=0.0,
                    transfer_time=0.0,
                    kernel_time=iteration_time,
                    processed_edges=active_edges,
                    engine_partitions={"CPU": 1},
                    engine_tasks={"CPU": 1},
                )
            )
            iteration += 1

        return self._finish_run(result, program, state, pending)
