"""CPU-only in-memory baseline (the "Galois" row of Table V).

A shared-memory CPU framework keeps the whole graph in host DRAM, so it
never pays PCIe transfers at all — its cost is simply that a 10-core CPU
pushes edges an order of magnitude slower than a GPU.  The paper includes
it to show that the GPU-accelerated systems are worth the transfer
management trouble (5.3x-12.8x speedups for HyTGraph).

The system runs on the unified execution runtime with an empty device
schedule: its whole iteration time is CPU processing, charged as plan
overhead.
"""

from __future__ import annotations

from repro.metrics.results import IterationStats
from repro.runtime.batch import SharedTransferState
from repro.runtime.driver import IterationPlan, QuerySession
from repro.systems.base import GraphSystem

__all__ = ["CPUGaloisSystem"]


class CPUGaloisSystem(GraphSystem):
    """In-memory CPU execution with no host-GPU traffic."""

    name = "Galois"

    def plan_iteration(
        self, session: QuerySession, shared: SharedTransferState | None = None
    ) -> IterationPlan:
        pending = session.pending
        frontier = self.driver.snapshot(pending)
        iteration_time = self.kernel_model.cpu_processing_time(frontier.active_edges)

        pending[frontier.active_ids] = False
        remote_updates = [0] * self.context.num_devices
        self.driver.process_per_device(
            session.program, session.state, pending, frontier.per_device, remote_updates
        )

        stats = IterationStats(
            index=session.iteration,
            time=0.0,
            active_vertices=frontier.active_vertices,
            active_edges=frontier.active_edges,
            transfer_bytes=0,
            compaction_time=0.0,
            transfer_time=0.0,
            kernel_time=iteration_time,
            processed_edges=frontier.active_edges,
            engine_partitions={"CPU": 1},
            engine_tasks={"CPU": 1},
        )
        return IterationPlan(
            stats=stats,
            device_tasks=self.context.empty_device_lists(),
            remote_updates=remote_updates,
            overhead_time=iteration_time,
            busy_fields=(),
        )
