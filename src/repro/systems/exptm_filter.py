"""Pure ExpTM-filter system (the "ExpTM-F" row of Table V).

The paper implements this baseline inside HyTGraph's own codebase for a
fair comparison: every iteration, every partition containing at least one
active edge is shipped to the GPU in full with explicit memory copy and
processed synchronously.  No CPU compaction, no on-demand access — which
means maximum PCIe utilisation per byte but a large volume of redundant
bytes whenever partitions are sparsely active (Figure 3a).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.metrics.results import IterationStats, RunResult
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind
from repro.transfer.explicit_filter import ExplicitFilterEngine

__all__ = ["ExpTMFilterSystem"]


class ExpTMFilterSystem(GraphSystem):
    """Filter-based explicit transfer management (GraphReduce/GTS/Graphie style)."""

    name = "ExpTM-F"
    supports_multi_device = True

    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        if self.sharding is not None:
            return self._run_multi(program, source)
        state, pending, result = self._init_run(program, source)
        engine = ExplicitFilterEngine(self.graph, self.config)

        iteration = 0
        while pending.any() and iteration < self.max_iterations:
            active_vertices = np.nonzero(pending)[0]
            active_edges = self._active_edge_count(active_vertices)
            active_per_partition, _ = self.partitioning.active_counts(pending)

            stream_tasks: list[StreamTask] = []
            transfer_bytes = 0
            active_partition_count = 0
            for partition in self.partitioning:
                in_partition = active_vertices[
                    (active_vertices >= partition.vertex_start) & (active_vertices < partition.vertex_end)
                ]
                if in_partition.size == 0:
                    continue
                active_partition_count += 1
                outcome = engine.transfer(partition, in_partition)
                kernel_time = self.kernel_model.kernel_time(self._active_edge_count(in_partition))
                transfer_bytes += outcome.bytes_transferred
                stream_tasks.append(
                    StreamTask(
                        name="P%d" % partition.index,
                        engine=EngineKind.EXP_FILTER.value,
                        transfer_time=outcome.transfer_time,
                        kernel_time=kernel_time,
                        overlapped_transfer=False,
                    )
                )

            timeline = self.stream_scheduler.schedule(stream_tasks)

            # Synchronous processing: every active vertex pushes once.
            pending[active_vertices] = False
            newly_active = program.process(self.graph, state, active_vertices)
            if newly_active.size:
                pending[newly_active] = True

            result.iterations.append(
                IterationStats(
                    index=iteration,
                    time=timeline.makespan,
                    active_vertices=int(active_vertices.size),
                    active_edges=active_edges,
                    transfer_bytes=transfer_bytes,
                    compaction_time=timeline.busy_time("cpu"),
                    transfer_time=timeline.busy_time("pcie"),
                    kernel_time=timeline.busy_time("gpu"),
                    processed_edges=active_edges,
                    engine_partitions={EngineKind.EXP_FILTER.value: active_partition_count},
                    engine_tasks={EngineKind.EXP_FILTER.value: len(stream_tasks)},
                )
            )
            iteration += 1

        return self._finish_run(result, program, state, pending)

    def _run_multi(self, program: VertexProgram, source: int | None) -> RunResult:
        """Sharded ExpTM-filter: each device ships its own active partitions.

        Every device transfers the active partitions of its shard in full
        over the shared host PCIe and processes them on its own GPU; the
        iteration ends with the boundary-delta exchange.  The redundancy
        weakness is unchanged — sharding splits the partitions, not the
        redundant bytes inside them.
        """
        state, pending, result = self._init_run(program, source)
        result.extra["num_devices"] = self.config.num_devices
        result.extra["interconnect"] = self.config.interconnect_kind
        engine = ExplicitFilterEngine(self.graph, self.config)
        sharding = self.sharding

        iteration = 0
        while pending.any() and iteration < self.max_iterations:
            active_vertices = np.nonzero(pending)[0]
            active_edges = self._active_edge_count(active_vertices)
            per_device_active = sharding.split_sorted_vertices(active_vertices)

            stream_task_lists: list[list[StreamTask]] = [[] for _ in sharding]
            transfer_bytes = 0
            active_partition_count = 0
            task_count = 0
            for partition in self.partitioning:
                in_partition = active_vertices[
                    (active_vertices >= partition.vertex_start) & (active_vertices < partition.vertex_end)
                ]
                if in_partition.size == 0:
                    continue
                device = sharding.device_of_partition(partition.index)
                active_partition_count += 1
                task_count += 1
                outcome = engine.transfer(partition, in_partition)
                kernel_time = self.kernel_model.kernel_time(self._active_edge_count(in_partition))
                transfer_bytes += outcome.bytes_transferred
                stream_task_lists[device].append(
                    StreamTask(
                        name="P%d-d%d" % (partition.index, device),
                        engine=EngineKind.EXP_FILTER.value,
                        transfer_time=outcome.transfer_time,
                        kernel_time=kernel_time,
                        overlapped_transfer=False,
                    )
                )

            pending[active_vertices] = False
            remote_updates = [0] * sharding.num_devices
            self._process_per_device(program, state, pending, per_device_active, remote_updates)

            sync_bytes = self._sync_bytes(remote_updates)
            timeline = self.multi_scheduler.schedule(stream_task_lists, sync_bytes)

            result.iterations.append(
                IterationStats(
                    index=iteration,
                    time=timeline.makespan,
                    active_vertices=int(active_vertices.size),
                    active_edges=active_edges,
                    transfer_bytes=transfer_bytes,
                    compaction_time=timeline.busy_time("cpu"),
                    transfer_time=timeline.busy_time("pcie"),
                    kernel_time=timeline.busy_time("gpu"),
                    processed_edges=active_edges,
                    engine_partitions={EngineKind.EXP_FILTER.value: active_partition_count},
                    engine_tasks={EngineKind.EXP_FILTER.value: task_count},
                    interconnect_bytes=int(sum(sync_bytes)),
                    sync_time=timeline.sync_time,
                )
            )
            iteration += 1

        return self._finish_run(result, program, state, pending)
