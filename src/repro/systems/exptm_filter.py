"""Pure ExpTM-filter system (the "ExpTM-F" row of Table V).

The paper implements this baseline inside HyTGraph's own codebase for a
fair comparison: every iteration, every partition containing at least one
active edge is shipped to the GPU in full with explicit memory copy and
processed synchronously.  No CPU compaction, no on-demand access — which
means maximum PCIe utilisation per byte but a large volume of redundant
bytes whenever partitions are sparsely active (Figure 3a).

On multi-device sessions every device ships its own shard's active
partitions over the shared host PCIe; the redundancy weakness is
unchanged — sharding splits the partitions, not the redundant bytes
inside them.  Under the batch runner the whole-partition copies *are*
shareable: a partition shipped for one query in a super-iteration is on
the device for every other query active in it.

Because every transfer is a whole partition, this system benefits most
directly from the adaptive device-memory cache (:mod:`repro.cache`):
under ``lru`` / ``frontier-aware`` policies a shipped partition stays
resident until evicted, and later iterations (or later super-iterations
of a batch) read it for free.  The default ``static-prefix`` policy
leaves the historical ship-every-iteration behaviour untouched.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.results import IterationStats
from repro.runtime.batch import SharedTransferState
from repro.runtime.driver import IterationPlan, QuerySession
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind
from repro.transfer.explicit_filter import ExplicitFilterEngine

__all__ = ["ExpTMFilterSystem"]


class ExpTMFilterSystem(GraphSystem):
    """Filter-based explicit transfer management (GraphReduce/GTS/Graphie style)."""

    name = "ExpTM-F"
    supports_multi_device = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.engine = ExplicitFilterEngine(self.graph, self.config)

    def plan_iteration(
        self, session: QuerySession, shared: SharedTransferState | None = None
    ) -> IterationPlan:
        pending = session.pending
        frontier = self.driver.snapshot(pending)
        active_ids = frontier.active_ids
        # Partitions hold consecutive vertex ranges and active_ids is
        # sorted, so one bisection splits the frontier per partition.
        boundaries = np.append(self.partitioning.vertex_starts, self.graph.num_vertices)
        cuts = np.searchsorted(active_ids, boundaries)

        cache = self.context.cache
        cache = cache if cache is not None and cache.adaptive else None
        if cache is not None and active_ids.size:
            # Feed the eviction policy this iteration's per-partition
            # active-edge counts (committed at the next boundary).
            degrees = self.graph.out_degrees[active_ids]
            partition_of = self.partitioning.partition_of_vertices(active_ids)
            cache.observe_frontier(
                np.bincount(
                    partition_of, weights=degrees, minlength=self.partitioning.num_partitions
                ).astype(np.int64)
            )

        device_tasks: list[list[StreamTask]] = self.context.empty_device_lists()
        transfer_bytes = 0
        active_partition_count = 0
        task_count = 0
        for partition in self.partitioning:
            in_partition = active_ids[cuts[partition.index] : cuts[partition.index + 1]]
            if in_partition.size == 0:
                continue
            device = self.sharding.device_of_partition(partition.index)
            active_partition_count += 1
            task_count += 1
            kernel_time = self.kernel_model.kernel_time(self._active_edge_count(in_partition))
            if cache is not None:
                billable = cache.claim_billable([partition.index], shared)
            elif shared is not None:
                billable = shared.claim_partitions(
                    [partition.index], lambda index: self.partitioning[index].edge_bytes
                )
            else:
                billable = [partition.index]
            if not billable:
                # Cache-resident, or another query in this batch
                # super-iteration already shipped it; only the kernel runs.
                transfer_time = 0.0
            else:
                outcome = self.engine.transfer(partition, in_partition)
                transfer_bytes += outcome.bytes_transferred
                transfer_time = outcome.transfer_time
            device_tasks[device].append(
                StreamTask(
                    name="P%d-d%d" % (partition.index, device),
                    engine=EngineKind.EXP_FILTER.value,
                    transfer_time=transfer_time,
                    kernel_time=kernel_time,
                    overlapped_transfer=False,
                )
            )

        # Synchronous processing: every active vertex pushes once.
        pending[active_ids] = False
        remote_updates = [0] * self.context.num_devices
        self.driver.process_per_device(
            session.program, session.state, pending, frontier.per_device, remote_updates
        )

        stats = IterationStats(
            index=session.iteration,
            time=0.0,
            active_vertices=frontier.active_vertices,
            active_edges=frontier.active_edges,
            transfer_bytes=transfer_bytes,
            processed_edges=frontier.active_edges,
            engine_partitions={EngineKind.EXP_FILTER.value: active_partition_count},
            engine_tasks={EngineKind.EXP_FILTER.value: task_count},
        )
        return IterationPlan(stats=stats, device_tasks=device_tasks, remote_updates=remote_updates)
