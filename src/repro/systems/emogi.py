"""EMOGI-style ImpTM-zero-copy system (VLDB 2020).

EMOGI keeps the edge arrays pinned in host memory and lets GPU warps read
the neighbors of each active vertex directly through zero-copy with
merged, 128-byte-aligned accesses.  There is no CPU stage and no explicit
transfer; the implicit transfer overlaps the kernel, so an iteration's
time is essentially ``max(zero-copy traffic time, kernel time)``.

Its weakness — the reason HyTGraph beats it on dense frontiers — is that
low-degree active vertices issue mostly-empty memory requests, wasting
PCIe bandwidth (Figures 3e/3f), and there is no data reuse at all across
iterations.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.metrics.results import IterationStats, RunResult
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind
from repro.transfer.zero_copy import ZeroCopyEngine

__all__ = ["EmogiSystem"]


class EmogiSystem(GraphSystem):
    """Synchronous zero-copy graph traversal."""

    name = "EMOGI"
    supports_multi_device = True

    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        if self.sharding is not None:
            return self._run_multi(program, source)
        state, pending, result = self._init_run(program, source)
        engine = ZeroCopyEngine(self.graph, self.config)

        iteration = 0
        while pending.any() and iteration < self.max_iterations:
            active_vertices = np.nonzero(pending)[0]
            active_edges = self._active_edge_count(active_vertices)

            outcome = engine.transfer(self.partitioning[0], active_vertices)
            kernel_time = self.kernel_model.kernel_time(active_edges)
            timeline = self.stream_scheduler.schedule(
                [
                    StreamTask(
                        name="zero-copy-frontier",
                        engine=EngineKind.IMP_ZERO_COPY.value,
                        transfer_time=outcome.transfer_time,
                        kernel_time=kernel_time,
                        overlapped_transfer=True,
                    )
                ]
            )

            pending[active_vertices] = False
            newly_active = program.process(self.graph, state, active_vertices)
            if newly_active.size:
                pending[newly_active] = True

            result.iterations.append(
                IterationStats(
                    index=iteration,
                    time=timeline.makespan,
                    active_vertices=int(active_vertices.size),
                    active_edges=active_edges,
                    transfer_bytes=outcome.bytes_transferred,
                    compaction_time=0.0,
                    transfer_time=outcome.transfer_time,
                    kernel_time=kernel_time,
                    processed_edges=active_edges,
                    engine_partitions={EngineKind.IMP_ZERO_COPY.value: 1},
                    engine_tasks={EngineKind.IMP_ZERO_COPY.value: 1},
                )
            )
            iteration += 1

        return self._finish_run(result, program, state, pending)

    def _run_multi(self, program: VertexProgram, source: int | None) -> RunResult:
        """Sharded zero-copy: each device reads its own shard's frontier.

        Every device issues zero-copy reads for the active vertices it
        owns; all reads cross the shared host PCIe complex, each device's
        kernel overlaps its own reads, and the iteration ends with the
        boundary-delta exchange.  EMOGI still reuses nothing across
        iterations — sharding splits the work but not the traffic.
        """
        state, pending, result = self._init_run(program, source)
        result.extra["num_devices"] = self.config.num_devices
        result.extra["interconnect"] = self.config.interconnect_kind
        engine = ZeroCopyEngine(self.graph, self.config)
        sharding = self.sharding

        iteration = 0
        while pending.any() and iteration < self.max_iterations:
            active_vertices = np.nonzero(pending)[0]
            active_edges = self._active_edge_count(active_vertices)
            per_device_active = sharding.split_sorted_vertices(active_vertices)

            stream_task_lists: list[list[StreamTask]] = [[] for _ in sharding]
            transfer_bytes = 0
            active_devices = 0
            for device, device_active in enumerate(per_device_active):
                if device_active.size == 0:
                    continue
                active_devices += 1
                outcome = engine.transfer(self.partitioning[0], device_active)
                kernel_time = self.kernel_model.kernel_time(self._active_edge_count(device_active))
                transfer_bytes += outcome.bytes_transferred
                stream_task_lists[device].append(
                    StreamTask(
                        name="zero-copy-frontier-d%d" % device,
                        engine=EngineKind.IMP_ZERO_COPY.value,
                        transfer_time=outcome.transfer_time,
                        kernel_time=kernel_time,
                        overlapped_transfer=True,
                    )
                )

            pending[active_vertices] = False
            remote_updates = [0] * sharding.num_devices
            self._process_per_device(program, state, pending, per_device_active, remote_updates)

            sync_bytes = self._sync_bytes(remote_updates)
            timeline = self.multi_scheduler.schedule(stream_task_lists, sync_bytes)

            result.iterations.append(
                IterationStats(
                    index=iteration,
                    time=timeline.makespan,
                    active_vertices=int(active_vertices.size),
                    active_edges=active_edges,
                    transfer_bytes=transfer_bytes,
                    compaction_time=0.0,
                    transfer_time=timeline.busy_time("pcie"),
                    kernel_time=timeline.busy_time("gpu"),
                    processed_edges=active_edges,
                    engine_partitions={EngineKind.IMP_ZERO_COPY.value: active_devices},
                    engine_tasks={EngineKind.IMP_ZERO_COPY.value: active_devices},
                    interconnect_bytes=int(sum(sync_bytes)),
                    sync_time=timeline.sync_time,
                )
            )
            iteration += 1

        return self._finish_run(result, program, state, pending)
