"""EMOGI-style ImpTM-zero-copy system (VLDB 2020).

EMOGI keeps the edge arrays pinned in host memory and lets GPU warps read
the neighbors of each active vertex directly through zero-copy with
merged, 128-byte-aligned accesses.  There is no CPU stage and no explicit
transfer; the implicit transfer overlaps the kernel, so an iteration's
time is essentially ``max(zero-copy traffic time, kernel time)``.

Its weakness — the reason HyTGraph beats it on dense frontiers — is that
low-degree active vertices issue mostly-empty memory requests, wasting
PCIe bandwidth (Figures 3e/3f), and there is no data reuse at all across
iterations (or across the queries of a batch: zero-copy reads are
on-demand and leave nothing on the device to share).

On multi-device sessions every device issues zero-copy reads for the
active vertices of its own shard; all reads cross the shared host PCIe
complex, each device's kernel overlaps its own reads, and the iteration
ends with the boundary-delta exchange.  Sharding splits the work but not
the traffic.

The device-memory cache subsystem (:mod:`repro.cache`) is wired through
the shared runtime, but zero-copy reads never populate it: they move
only the requested words and leave no reusable partition image in
device memory, so EMOGI's ``cache_hit_bytes`` stay zero under every
policy — which is precisely its no-reuse weakness, now visible in the
metrics.
"""

from __future__ import annotations

from repro.metrics.results import IterationStats
from repro.runtime.batch import SharedTransferState
from repro.runtime.driver import IterationPlan, QuerySession
from repro.sim.streams import StreamTask
from repro.systems.base import GraphSystem
from repro.transfer.base import EngineKind
from repro.transfer.zero_copy import ZeroCopyEngine

__all__ = ["EmogiSystem"]


class EmogiSystem(GraphSystem):
    """Synchronous zero-copy graph traversal."""

    name = "EMOGI"
    supports_multi_device = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.engine = ZeroCopyEngine(self.graph, self.config)

    def plan_iteration(
        self, session: QuerySession, shared: SharedTransferState | None = None
    ) -> IterationPlan:
        pending = session.pending
        frontier = self.driver.snapshot(pending)

        device_tasks: list[list[StreamTask]] = self.context.empty_device_lists()
        transfer_bytes = 0
        active_devices = 0
        for device, device_active in enumerate(frontier.per_device):
            if device_active.size == 0:
                continue
            active_devices += 1
            outcome = self.engine.transfer(self.partitioning[0], device_active)
            kernel_time = self.kernel_model.kernel_time(self._active_edge_count(device_active))
            transfer_bytes += outcome.bytes_transferred
            device_tasks[device].append(
                StreamTask(
                    name="zero-copy-frontier-d%d" % device,
                    engine=EngineKind.IMP_ZERO_COPY.value,
                    transfer_time=outcome.transfer_time,
                    kernel_time=kernel_time,
                    overlapped_transfer=True,
                )
            )

        # Synchronous processing: every device pushes its shard's frontier.
        pending[frontier.active_ids] = False
        remote_updates = [0] * self.context.num_devices
        self.driver.process_per_device(
            session.program, session.state, pending, frontier.per_device, remote_updates
        )

        stats = IterationStats(
            index=session.iteration,
            time=0.0,
            active_vertices=frontier.active_vertices,
            active_edges=frontier.active_edges,
            transfer_bytes=transfer_bytes,
            processed_edges=frontier.active_edges,
            engine_partitions={EngineKind.IMP_ZERO_COPY.value: active_devices},
            engine_tasks={EngineKind.IMP_ZERO_COPY.value: active_devices},
        )
        return IterationPlan(stats=stats, device_tasks=device_tasks, remote_updates=remote_updates)
