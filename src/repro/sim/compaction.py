"""CPU-based active-edge compaction engine.

The ExpTM-compaction approach (Section II-B, Subway-style) removes the
inactive edges of a partition on the host CPU, packing the surviving
(active) adjacency lists into one contiguous buffer plus a fresh compressed
index array so the GPU kernel can address the relocated neighbors.  The
price is CPU time and main-memory traffic that grows with the active edge
volume — on Subway the compaction stage accounts for roughly a third of
total runtime (Figure 3c).

:class:`CompactionEngine` does both jobs here: it *actually builds* the
compacted sub-CSR (so the kernels can run on it and correctness is
preserved) and it *prices* the work using the configured CPU compaction
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sim.config import HardwareConfig

__all__ = ["CompactionEngine", "CompactionResult", "CompactedSubgraph"]


@dataclass(frozen=True)
class CompactedSubgraph:
    """The dense sub-CSR produced by compaction.

    Attributes
    ----------
    vertices:
        Original ids of the active vertices, in the order they appear in
        the compacted structure.
    row_offset:
        Compressed index array (length ``len(vertices) + 1``).
    column_index:
        Neighbors of the active vertices, packed contiguously.
    edge_value:
        Matching edge weights, or ``None`` for unweighted graphs.
    """

    vertices: np.ndarray
    row_offset: np.ndarray
    column_index: np.ndarray
    edge_value: np.ndarray | None

    @property
    def num_vertices(self) -> int:
        """Number of active vertices in the compacted subgraph."""
        return int(self.vertices.size)

    @property
    def num_edges(self) -> int:
        """Number of edges kept after removing inactive ones."""
        return int(self.column_index.size)


@dataclass(frozen=True)
class CompactionResult:
    """Cost and content of one compaction operation."""

    subgraph: CompactedSubgraph
    output_bytes: int
    cpu_time: float


class CompactionEngine:
    """Builds compacted subgraphs and prices the CPU work."""

    def __init__(self, config: HardwareConfig):
        self.config = config

    def output_bytes(self, active_degrees_sum: int, num_active_vertices: int, weighted: bool) -> int:
        """Bytes produced by compaction (Formula 2's transfer volume).

        ``sum(Do(v)) * d1 + |A| * d2`` — the packed neighbors (plus weights
        when present) and the new per-vertex index entries.
        """
        d1 = self.config.vertex_value_bytes
        if weighted:
            d1 += self.config.vertex_value_bytes
        return int(active_degrees_sum) * d1 + int(num_active_vertices) * self.config.index_entry_bytes

    def cpu_time(self, output_bytes: int) -> float:
        """Seconds of host CPU work to produce ``output_bytes`` of compacted data.

        The engine reads the scattered source adjacency lists and writes
        the packed output; both are charged against the configured
        compaction throughput (the paper deliberately keeps this a simple
        throughput model — see Section VIII "Cost computation of ExpTM-C").
        """
        if output_bytes <= 0:
            return 0.0
        return output_bytes / self.config.cpu_compaction_throughput

    def compact(self, graph: CSRGraph, active_vertices: np.ndarray) -> CompactionResult:
        """Remove inactive edges: pack the adjacency lists of ``active_vertices``."""
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        degrees = graph.out_degrees[active_vertices] if active_vertices.size else np.zeros(0, dtype=np.int64)
        row_offset = np.zeros(active_vertices.size + 1, dtype=np.int64)
        np.cumsum(degrees, out=row_offset[1:])
        total_edges = int(row_offset[-1])
        column_index = np.empty(total_edges, dtype=np.int64)
        edge_value = np.empty(total_edges, dtype=np.float64) if graph.is_weighted else None
        for position, vertex in enumerate(active_vertices.tolist()):
            src_start, src_end = graph.edge_slice(vertex)
            dst_start, dst_end = row_offset[position], row_offset[position + 1]
            column_index[dst_start:dst_end] = graph.column_index[src_start:src_end]
            if edge_value is not None:
                edge_value[dst_start:dst_end] = graph.edge_value[src_start:src_end]
        subgraph = CompactedSubgraph(
            vertices=active_vertices,
            row_offset=row_offset,
            column_index=column_index,
            edge_value=edge_value,
        )
        bytes_out = self.output_bytes(total_edges, active_vertices.size, graph.is_weighted)
        return CompactionResult(subgraph=subgraph, output_bytes=bytes_out, cpu_time=self.cpu_time(bytes_out))
