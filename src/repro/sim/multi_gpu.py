"""Multi-GPU scheduling: per-device streams, one host, one interconnect.

The sharded execution layer runs one :class:`~repro.sim.streams.StreamScheduler`
per device.  The schedulers contend for two *shared host* resources — the
CPU compaction engine and the host PCIe complex (every explicit copy and
zero-copy read crosses the same root complex) — while each device brings
its own GPU and its own CUDA streams.  Tasks from different devices are
interleaved in global priority order, which models all devices making
progress concurrently.

Every iteration ends with a **boundary synchronisation phase**: devices
exchange the delta updates they produced for vertices owned by other
shards (one ``(compacted-index entry, value)`` message per remote
activation) plus a convergence-flag all-reduce.  The exchange runs
all-to-all over dedicated inter-GPU links, so its duration is the fixed
interconnect latency plus the busiest sender's bytes at the interconnect
bandwidth.  The phase appears in the iteration timeline as one collective
entry on the ``"interconnect"`` resource, after every device's last task.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.config import HardwareConfig
from repro.sim.events import (
    INTERCONNECT_RESOURCE,
    SYNC_ENGINE,
    StageSpan,
    Timeline,
    TimelineEntry,
)
from repro.sim.streams import ResourceState, StreamScheduler, StreamTask

__all__ = ["MultiDeviceScheduler"]


class MultiDeviceScheduler:
    """Schedules per-device task lists onto N GPUs sharing one host."""

    def __init__(self, config: HardwareConfig, num_devices: int | None = None):
        self.config = config
        self.num_devices = num_devices if num_devices is not None else config.num_devices
        if self.num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        #: One stream scheduler per device, as on real multi-GPU hosts.
        self.device_schedulers = [StreamScheduler(config) for _ in range(self.num_devices)]

    # ------------------------------------------------------------------
    # Boundary synchronisation
    # ------------------------------------------------------------------
    def sync_duration(self, sync_bytes_per_device: Sequence[int] | None) -> float:
        """Seconds of the per-iteration boundary synchronisation phase.

        Single-device runs synchronise nothing.  Multi-device runs always
        pay the interconnect latency (barrier + convergence all-reduce)
        plus the busiest sender's outgoing delta bytes over its link.
        """
        if self.num_devices <= 1:
            return 0.0
        busiest = max(sync_bytes_per_device, default=0) if sync_bytes_per_device else 0
        return self.config.interconnect_latency + busiest / self.config.interconnect_bandwidth

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        device_tasks: Sequence[list[StreamTask]],
        sync_bytes_per_device: Sequence[int] | None = None,
    ) -> Timeline:
        """Schedule every device's tasks plus the boundary sync phase.

        ``device_tasks[d]`` is device ``d``'s task list.  Tasks are
        placed in global ``(priority, submission order, device)`` order
        onto each device's own streams/GPU while the ``cpu`` and ``pcie``
        resources are shared across all devices.
        """
        if len(device_tasks) != self.num_devices:
            raise ValueError(
                "expected %d device task lists, got %d" % (self.num_devices, len(device_tasks))
            )

        merged: list[tuple[float, int, int, StreamTask]] = []
        for device, tasks in enumerate(device_tasks):
            for position, task in enumerate(tasks):
                merged.append((task.priority, position, device, task))
        merged.sort(key=lambda item: item[:3])

        cpu = ResourceState()
        pcie = ResourceState()
        gpus = [ResourceState() for _ in range(self.num_devices)]
        stream_free = [[0.0] * self.config.num_streams for _ in range(self.num_devices)]
        timeline = Timeline()

        for _, _, device, task in merged:
            timeline.entries.append(
                self.device_schedulers[device].place(
                    task, stream_free[device], cpu, pcie, gpus[device], device=device
                )
            )

        if self.num_devices > 1:
            start = timeline.makespan
            duration = self.sync_duration(sync_bytes_per_device)
            timeline.entries.append(
                TimelineEntry(
                    name="boundary-sync",
                    engine=SYNC_ENGINE,
                    stream=0,
                    spans=(StageSpan(INTERCONNECT_RESOURCE, start, start + duration),),
                    device=-1,
                )
            )
        return timeline
