"""Flexible multi-stream scheduling (Section VI-B, Figure 6).

HyTGraph runs the three processing engines on multiple CUDA streams so
that CPU compaction, PCIe data transfer and GPU kernels of *different*
tasks overlap.  This module reproduces that behaviour with a small
deterministic list scheduler over three exclusive resources:

``cpu``   — the host compaction engine (ExpTM-compaction tasks only)
``pcie``  — the host-to-GPU interconnect (every task that moves bytes)
``gpu``   — the compute kernel

Each :class:`StreamTask` carries the per-stage durations computed by the
transfer engines and the kernel model.  Tasks are assigned to streams in
priority order; stages of one task run in order (compact -> transfer ->
kernel), different streams' stages overlap whenever their resources are
free.  Zero-copy tasks overlap their transfer with their kernel implicitly
(the GPU threads stall on PCIe reads), so they occupy the GPU and PCIe for
``max(transfer, kernel)`` simultaneously.

The scheduler returns a :class:`~repro.sim.events.Timeline` whose makespan
is the simulated iteration time and whose spans feed the breakdown
figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import HardwareConfig
from repro.sim.events import StageSpan, Timeline, TimelineEntry

__all__ = ["StreamTask", "StreamScheduler", "ResourceState", "Timeline", "TimelineEntry"]


@dataclass
class StreamTask:
    """One schedulable unit of work.

    Attributes
    ----------
    name:
        Label shown in timelines (usually the partition/task id).
    engine:
        Transfer engine name (``"ExpTM-F"``, ``"ExpTM-C"``, ``"ImpTM-ZC"``,
        ``"ImpTM-UM"`` or ``"CPU"``).
    cpu_time:
        Host compaction seconds (0 for non-compaction engines).
    transfer_time:
        PCIe seconds.
    kernel_time:
        GPU kernel seconds.
    overlapped_transfer:
        When True the transfer and kernel stages run concurrently on their
        two resources for ``max(transfer, kernel)`` seconds (zero-copy /
        unified-memory on-demand access); when False they are sequential
        (explicit copy then kernel).
    priority:
        Lower value = scheduled earlier (contribution-driven scheduling
        sets this).
    attempts:
        How many sends the task's transfer took (1 = clean; >1 means the
        fault injector drew transient failures and the retries/backoff
        are already folded into ``transfer_time``).
    """

    name: str
    engine: str
    cpu_time: float = 0.0
    transfer_time: float = 0.0
    kernel_time: float = 0.0
    overlapped_transfer: bool = False
    priority: float = 0.0
    attempts: int = 1

    @property
    def serial_time(self) -> float:
        """Duration if the task ran alone with no overlap across stages."""
        if self.overlapped_transfer:
            return self.cpu_time + max(self.transfer_time, self.kernel_time)
        return self.cpu_time + self.transfer_time + self.kernel_time


@dataclass
class ResourceState:
    """When an exclusive simulated resource next becomes free.

    Shared mutable state so several schedulers can contend for the same
    physical resource: the multi-GPU layer passes one ``pcie`` (and one
    ``cpu``) state to every device's scheduler while keeping the ``gpu``
    states per device.
    """

    free_at: float = 0.0


class StreamScheduler:
    """Deterministic multi-stream list scheduler."""

    def __init__(self, config: HardwareConfig):
        self.config = config

    def schedule(self, tasks: list[StreamTask], num_streams: int | None = None) -> Timeline:
        """Schedule ``tasks`` onto streams and shared resources.

        Tasks are processed in ascending ``priority`` (ties broken by
        submission order, keeping the schedule deterministic).  Each stream
        runs its tasks back to back; the ``cpu``, ``pcie`` and ``gpu``
        resources serialise across streams, which is what creates the
        overlap benefit of Figure 6.
        """
        if num_streams is None:
            num_streams = self.config.num_streams
        if num_streams <= 0:
            raise ValueError("num_streams must be positive")

        ordered = sorted(enumerate(tasks), key=lambda pair: (pair[1].priority, pair[0]))
        stream_free = [0.0] * num_streams
        cpu = ResourceState()
        pcie = ResourceState()
        gpu = ResourceState()
        timeline = Timeline()

        for _, task in ordered:
            timeline.entries.append(self.place(task, stream_free, cpu, pcie, gpu))
        return timeline

    def place(
        self,
        task: StreamTask,
        stream_free: list[float],
        cpu: ResourceState,
        pcie: ResourceState,
        gpu: ResourceState,
        device: int = 0,
    ) -> TimelineEntry:
        """Place one task onto this scheduler's streams and resources.

        The resource states are caller-owned so they can be shared: the
        multi-GPU layer hands every device's scheduler the same ``cpu``
        and ``pcie`` states (one host) but a per-device ``gpu`` state and
        ``stream_free`` list.
        """
        stream_index = min(range(len(stream_free)), key=lambda s: stream_free[s])
        cursor = stream_free[stream_index]
        spans: list[StageSpan] = []

        if task.cpu_time > 0:
            start = max(cursor, cpu.free_at)
            end = start + task.cpu_time
            cpu.free_at = end
            spans.append(StageSpan("cpu", start, end))
            cursor = end

        if task.overlapped_transfer:
            duration = max(task.transfer_time, task.kernel_time)
            if duration > 0:
                start = max(cursor, pcie.free_at, gpu.free_at)
                end = start + duration
                pcie.free_at = end
                gpu.free_at = end
                if task.transfer_time > 0:
                    spans.append(StageSpan("pcie", start, start + task.transfer_time))
                if task.kernel_time > 0:
                    spans.append(StageSpan("gpu", start, start + task.kernel_time))
                cursor = end
        else:
            if task.transfer_time > 0:
                start = max(cursor, pcie.free_at)
                end = start + task.transfer_time
                pcie.free_at = end
                spans.append(StageSpan("pcie", start, end))
                cursor = end
            if task.kernel_time > 0:
                start = max(cursor, gpu.free_at)
                end = start + task.kernel_time
                gpu.free_at = end
                spans.append(StageSpan("gpu", start, end))
                cursor = end

        stream_free[stream_index] = cursor
        return TimelineEntry(
            name=task.name, engine=task.engine, stream=stream_index, spans=tuple(spans), device=device
        )

    def serial_time(self, tasks: list[StreamTask]) -> float:
        """Total time if every stage of every task ran back to back.

        The ratio ``serial_time / schedule(...).makespan`` quantifies how
        much the multi-stream overlap is worth; the single-stream ablation
        uses it.
        """
        return sum(task.serial_time for task in tasks)
