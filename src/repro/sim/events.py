"""Timeline records produced by the multi-stream scheduler.

The scheduler in :mod:`repro.sim.streams` assigns every task's stages
(CPU compaction, PCIe transfer, GPU kernel) to simulated resources; the
resulting :class:`TimelineEntry` records are what the per-iteration
breakdown figures (Figure 3b/3c, Figure 7c/7d) aggregate.

Multi-GPU runs add two things to the same records: every entry carries
the ``device`` that executed it, and each iteration ends with one
boundary-synchronisation entry occupying the ``"interconnect"`` resource
(the inter-GPU delta exchange; see :mod:`repro.runtime.context`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageSpan", "TimelineEntry", "Timeline", "INTERCONNECT_RESOURCE", "SYNC_ENGINE"]

#: Resource name of the inter-GPU interconnect in multi-device timelines.
INTERCONNECT_RESOURCE = "interconnect"

#: Engine label of the per-iteration boundary-synchronisation entry.
SYNC_ENGINE = "sync"


@dataclass(frozen=True)
class StageSpan:
    """One resource occupancy interval: ``[start, end)`` seconds on ``resource``."""

    resource: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the span in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class TimelineEntry:
    """Scheduling record of one task.

    ``device`` is the GPU the task ran on (0 on single-device runs; -1
    marks collective entries such as the boundary synchronisation, which
    involve every device).
    """

    name: str
    engine: str
    stream: int
    spans: tuple[StageSpan, ...]
    device: int = 0

    @property
    def start(self) -> float:
        """When the first stage of the task started."""
        return min(span.start for span in self.spans) if self.spans else 0.0

    @property
    def end(self) -> float:
        """When the last stage of the task finished."""
        return max(span.end for span in self.spans) if self.spans else 0.0

    def time_on(self, resource: str) -> float:
        """Total seconds this task occupied ``resource``."""
        return sum(span.duration for span in self.spans if span.resource == resource)


@dataclass
class Timeline:
    """The full schedule of one iteration."""

    entries: list[TimelineEntry] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """End-to-end wall-clock time of the schedule."""
        return max((entry.end for entry in self.entries), default=0.0)

    def busy_time(self, resource: str) -> float:
        """Total busy seconds of a resource across all tasks."""
        return sum(entry.time_on(resource) for entry in self.entries)

    def per_engine_time(self) -> dict[str, float]:
        """Sum of task durations grouped by transfer engine."""
        totals: dict[str, float] = {}
        for entry in self.entries:
            totals[entry.engine] = totals.get(entry.engine, 0.0) + (entry.end - entry.start)
        return totals

    def device_entries(self, device: int) -> list[TimelineEntry]:
        """The entries that ran on ``device`` (excluding collective entries)."""
        return [entry for entry in self.entries if entry.device == device]

    @property
    def sync_time(self) -> float:
        """Total interconnect occupancy (boundary synchronisation phases)."""
        return self.busy_time(INTERCONNECT_RESOURCE)
