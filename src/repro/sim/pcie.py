"""PCIe transfer-time model (explicit copy, zero-copy and unified memory).

The paper's cost model (Section V-A) describes all host-to-GPU traffic in
terms of PCIe Transaction Layer Packets: a TLP carries at most ``MR = 256``
outstanding memory requests, each request up to ``m = 128`` bytes, and one
saturated TLP takes a round-trip time ``RTT``.

* Explicit memory copy (``cudaMemcpy``) always ships saturated TLPs, so
  transferring ``B`` bytes costs ``ceil(B / m / MR) * RTT`` (Formula 1's
  time term).
* Zero-copy accesses are per-vertex: vertex ``v`` with out-degree
  ``Do(v)`` needs ``ceil(Do(v) * d1 / m)`` requests, plus one more if its
  neighbor array is misaligned with the 128-byte request boundary
  (the ``am(v)`` term of Formula 3).  A TLP of unsaturated requests still
  pays a fixed fraction γ of the full RTT, giving the damped round trip
  ``RTT_zc = γ·RTT + (1-γ)·payload_fraction·RTT``.
* Unified memory migrates whole 4-KB pages at ``um_peak_fraction`` of the
  explicit-copy bandwidth plus a per-fault overhead.

:class:`PCIeModel` packages these calculations; everything is vectorised
over NumPy arrays so per-iteration planning over hundreds of partitions is
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.config import HardwareConfig

__all__ = ["PCIeModel", "ZeroCopyAccess"]


@dataclass(frozen=True)
class ZeroCopyAccess:
    """Summary of a batch of zero-copy accesses.

    Attributes
    ----------
    num_requests:
        Total outstanding memory requests issued.
    num_tlps:
        Number of TLPs needed (``ceil(num_requests / MR)``).
    payload_bytes:
        Useful bytes actually carried (the active edge data).
    time:
        Seconds on the PCIe bus.
    """

    num_requests: int
    num_tlps: int
    payload_bytes: int
    time: float


class PCIeModel:
    """Transfer-time calculator for one hardware configuration."""

    def __init__(self, config: HardwareConfig):
        self.config = config

    # ------------------------------------------------------------------
    # Explicit copy (cudaMemcpy)
    # ------------------------------------------------------------------
    def explicit_copy_tlps(self, num_bytes: int) -> int:
        """Number of saturated TLPs needed to ship ``num_bytes``."""
        if num_bytes <= 0:
            return 0
        return int(np.ceil(num_bytes / self.config.tlp_payload_bytes))

    def explicit_copy_time(self, num_bytes: int) -> float:
        """Seconds to transfer ``num_bytes`` with the explicit copy engine."""
        return self.explicit_copy_tlps(num_bytes) * self.config.tlp_round_trip_time

    def explicit_copy_throughput(self) -> float:
        """Sustained explicit-copy throughput in bytes/second."""
        return self.config.pcie_bandwidth

    # ------------------------------------------------------------------
    # Zero-copy
    # ------------------------------------------------------------------
    def requests_for_vertices(
        self,
        degrees: np.ndarray,
        start_bytes: np.ndarray | None = None,
        value_bytes: int | None = None,
    ) -> np.ndarray:
        """Outstanding memory requests needed per vertex.

        Parameters
        ----------
        degrees:
            Out-degrees of the accessed (active) vertices.
        start_bytes:
            Physical byte offset of each vertex's neighbor array; used to
            detect misalignment (the ``am(v)`` term).  ``None`` assumes
            aligned starts.
        value_bytes:
            Bytes per neighbor entry (``d1``); defaults to the config value.
        """
        degrees = np.asarray(degrees, dtype=np.int64)
        d1 = self.config.vertex_value_bytes if value_bytes is None else value_bytes
        m = self.config.pcie_request_bytes
        if start_bytes is None:
            # ceil(Do * d1 / m), zero-degree vertices need no request.
            return np.ceil(degrees * d1 / m).astype(np.int64)
        start_bytes = np.asarray(start_bytes, dtype=np.int64)
        span = (start_bytes % m) + degrees * d1
        requests = np.ceil(span / m).astype(np.int64)
        requests[degrees == 0] = 0
        return requests

    def zero_copy_rtt(self, payload_fraction: float) -> float:
        """Damped TLP round trip for zero-copy with the given payload fraction.

        ``RTT_zc = γ·RTT + (1-γ)·payload_fraction·RTT`` (Section V-A); a
        fully saturated TLP (payload_fraction = 1) costs the full RTT, an
        almost-empty one still costs γ of it.
        """
        payload_fraction = float(np.clip(payload_fraction, 0.0, 1.0))
        gamma = self.config.zero_copy_gamma
        return (gamma + (1.0 - gamma) * payload_fraction) * self.config.tlp_round_trip_time

    def zero_copy_access(
        self,
        degrees: np.ndarray,
        start_bytes: np.ndarray | None = None,
        value_bytes: int | None = None,
    ) -> ZeroCopyAccess:
        """Cost of accessing the out-edges of the given vertices via zero-copy.

        Every outstanding request pays a fixed header/management share of
        the TLP round trip (the γ part), and the payload itself moves at
        the full PCIe payload rate (the 1-γ part):

            time = γ·RTT·requests/MR + (1-γ)·RTT·payload/(MR·m)

        A fully saturated batch (every request carrying ``m`` bytes) costs
        exactly ``ceil(requests/MR)·RTT`` — the cudaMemcpy rate — while a
        batch of mostly-empty requests is dominated by the per-request
        overhead, reproducing the throughput collapse of Figure 3(e).
        """
        d1 = self.config.vertex_value_bytes if value_bytes is None else value_bytes
        degrees = np.asarray(degrees, dtype=np.int64)
        requests = self.requests_for_vertices(degrees, start_bytes, value_bytes=d1)
        total_requests = int(requests.sum())
        payload_bytes = int(degrees.sum()) * d1
        num_tlps = int(np.ceil(total_requests / self.config.pcie_max_outstanding)) if total_requests else 0
        return ZeroCopyAccess(
            num_requests=total_requests,
            num_tlps=num_tlps,
            payload_bytes=payload_bytes,
            time=self.zero_copy_time(total_requests, payload_bytes),
        )

    def zero_copy_time(self, total_requests: int, payload_bytes: int) -> float:
        """Zero-copy occupancy for a request/payload total (see above).

        Shared by :meth:`zero_copy_access` and the batched
        ``ZeroCopyEngine.transfer_task`` accounting so the formula lives
        in exactly one place.
        """
        gamma = self.config.zero_copy_gamma
        rtt = self.config.tlp_round_trip_time
        mr = self.config.pcie_max_outstanding
        header_time = gamma * rtt * total_requests / mr
        payload_time = (1.0 - gamma) * rtt * payload_bytes / (mr * self.config.pcie_request_bytes)
        return header_time + payload_time

    def zero_copy_throughput(self, request_bytes: int) -> float:
        """Effective zero-copy throughput when every request carries ``request_bytes``.

        Reproduces Figure 3(e): at 128-byte requests zero-copy matches
        cudaMemcpy; smaller requests waste bandwidth on TLP headers, which
        the γ-damped RTT captures.
        """
        if request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        request_bytes = min(request_bytes, self.config.pcie_request_bytes)
        payload_fraction = request_bytes / self.config.pcie_request_bytes
        payload_per_tlp = self.config.pcie_max_outstanding * request_bytes
        return payload_per_tlp / self.zero_copy_rtt(payload_fraction)

    # ------------------------------------------------------------------
    # Unified memory
    # ------------------------------------------------------------------
    def page_migration_time(self, num_pages: int) -> float:
        """Seconds to fault in ``num_pages`` 4-KB unified-memory pages.

        Migration runs at ``um_peak_fraction`` of the explicit-copy
        bandwidth and pays a fixed TLB/page-table overhead per fault.
        """
        if num_pages <= 0:
            return 0.0
        transfer = num_pages * self.config.um_page_bytes / self.config.um_bandwidth
        overhead = num_pages * self.config.um_fault_overhead
        return transfer + overhead

    def pages_for_byte_ranges(self, start_bytes: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Distinct 4-KB page ids touched by each ``[start, start+length)`` range.

        Returns the union of page ids across all ranges (sorted, unique).
        """
        start_bytes = np.asarray(start_bytes, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        page = self.config.um_page_bytes
        pages: list[np.ndarray] = []
        nonzero = lengths > 0
        for start, length in zip(start_bytes[nonzero], lengths[nonzero]):
            first = start // page
            last = (start + length - 1) // page
            pages.append(np.arange(first, last + 1, dtype=np.int64))
        if not pages:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(pages))
