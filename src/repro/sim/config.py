"""Hardware configuration presets for the simulated platform.

The paper's test platform is an Intel Silver 4210 10-core CPU with 128 GB
DRAM and a GTX 2080Ti over PCIe 3.0 (Section VII-A); the GPU-sensitivity
study (Figure 10) adds a GTX 1080 and a Tesla P100, and Table I quotes the
GPU-memory-vs-PCIe bandwidth gap for P100 through H100.

:class:`HardwareConfig` captures every parameter the cost model and the
transfer engines need.  The *shape* of the results depends only on the
ratios between these numbers (memory bandwidth vs PCIe, compaction
throughput vs PCIe, request size vs cache line), so the presets reuse the
paper's published figures directly.

Because the reproduction runs on scaled-down graphs, GPU memory capacity
must be scaled by the same factor as the graphs to preserve the
oversubscription regime; use :meth:`HardwareConfig.scaled_memory` for
that (the benchmark harness does it automatically).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "HardwareConfig",
    "HostConfig",
    "NetworkConfig",
    "GPU_PRESETS",
    "INTERCONNECT_PRESETS",
    "NETWORK_PRESETS",
    "gtx_2080ti",
    "gtx_1080",
    "tesla_p100",
    "tesla_v100",
    "a100",
    "h100",
    "default_config",
]

GiB = 1024 ** 3
MiB = 1024 ** 2

# Inter-GPU interconnect presets: (bandwidth bytes/s per direction and
# device pair, latency seconds per synchronisation phase).  "nvlink"
# models an NVLink 2.0-class point-to-point mesh (~25 GB/s per link);
# "pcie-peer" models peer-to-peer DMA through the PCIe switch, which is
# both slower and higher latency because every hop crosses the root
# complex.
INTERCONNECT_PRESETS: dict[str, tuple[float, float]] = {
    "nvlink": (25e9, 10e-6),
    "pcie-peer": (11e9, 25e-6),
}

# Host-to-host network presets: (bandwidth bytes/s per flow, latency
# seconds per message).  "rdma" models a 100 Gb/s RoCE/InfiniBand fabric
# with kernel-bypass latencies; "tcp" a 25 GbE link through the kernel
# TCP stack (bandwidth-capable but latency-heavy); "ethernet-10g" a
# plain 10 GbE datacenter link.  The network tier is an order of
# magnitude below PCIe on every preset, which is exactly why cross-host
# movement (checkpoint shipping) must be billed rather than assumed free.
NETWORK_PRESETS: dict[str, tuple[float, float]] = {
    "rdma": (12.5e9, 2e-6),
    "tcp": (2.5e9, 50e-6),
    "ethernet-10g": (1.25e9, 30e-6),
}


@dataclass(frozen=True)
class NetworkConfig:
    """The host-interconnect of a simulated multi-node cluster.

    Attributes
    ----------
    kind:
        Preset name used in reports (one of :data:`NETWORK_PRESETS`
        for presets; free-form for custom links).
    bandwidth:
        Bytes/second one cross-host flow sustains.
    latency:
        Fixed seconds per message (connection setup, NIC traversal,
        switch hops) billed once per transfer.
    """

    kind: str = "tcp"
    bandwidth: float = 2.5e9
    latency: float = 50e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("network bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("network latency must be non-negative")

    @classmethod
    def from_preset(cls, kind: str) -> "NetworkConfig":
        """The preset named ``kind`` (``"tcp"``/``"rdma"``/``"ethernet-10g"``)."""
        key = kind.strip().lower()
        if key not in NETWORK_PRESETS:
            raise KeyError(
                "unknown network preset %r; available: %s"
                % (kind, ", ".join(sorted(NETWORK_PRESETS)))
            )
        bandwidth, latency = NETWORK_PRESETS[key]
        return cls(kind=key, bandwidth=bandwidth, latency=latency)

    def transfer_seconds(self, nbytes: int) -> float:
        """Simulated seconds one ``nbytes`` cross-host transfer takes."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        return self.latency + nbytes / self.bandwidth

    def scaled(self, scale: float) -> "NetworkConfig":
        """A copy scaled for graphs ``scale`` times the paper's size.

        Like :meth:`HardwareConfig.scaled`, the fixed per-event overhead
        (message latency) is multiplied by ``scale`` so its magnitude
        relative to per-checkpoint transfer times stays what it would be
        at full scale; bandwidth is a physical constant and stays.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(self, latency=self.latency * scale)


@dataclass(frozen=True)
class HostConfig:
    """Topology of a simulated cluster: N hosts of M GPUs over a network.

    Each host is one complete instance of the paper's platform
    (:class:`HardwareConfig` with ``gpus_per_host`` devices); the
    network prices every byte that crosses host boundaries.
    """

    hosts: int = 1
    gpus_per_host: int = 1
    network: "NetworkConfig | str" = "tcp"

    def __post_init__(self) -> None:
        if self.hosts < 1:
            raise ValueError("hosts must be at least 1")
        if self.gpus_per_host < 1:
            raise ValueError("gpus_per_host must be at least 1")
        if isinstance(self.network, str):
            object.__setattr__(self, "network", NetworkConfig.from_preset(self.network))
        elif not isinstance(self.network, NetworkConfig):
            raise ValueError("network must be a NetworkConfig or a preset name")

    @property
    def total_gpus(self) -> int:
        """GPUs across the whole cluster."""
        return self.hosts * self.gpus_per_host

    def scaled(self, scale: float) -> "HostConfig":
        """A copy with the network's fixed overheads scaled (see above)."""
        return replace(self, network=self.network.scaled(scale))


@dataclass(frozen=True)
class HardwareConfig:
    """All hardware parameters of the simulated host + GPU platform.

    Attributes
    ----------
    name:
        Preset name used in reports (``"GTX-2080Ti"`` etc.).
    gpu_memory_bytes:
        Device memory available for caching edge-associated data after the
        vertex-associated arrays are resident.
    gpu_memory_bandwidth:
        Device global-memory bandwidth in bytes/second (Table I column 2).
    gpu_edge_throughput:
        Edges per second one kernel can process when data is on-device.
    gpu_kernel_launch_overhead:
        Fixed seconds per kernel launch (motivates task combining).
    pcie_bandwidth:
        Practical host-to-GPU explicit-copy bandwidth in bytes/second
        (the paper quotes 12.3 GB/s practical for PCIe 3.0 x16).
    pcie_request_bytes:
        Maximum payload of one outstanding memory request (``m`` = 128 B).
    pcie_max_outstanding:
        Maximum outstanding requests per TLP (``MR`` = 256 for PCIe 3.0).
    zero_copy_gamma:
        The γ damping factor splitting a zero-copy TLP's round-trip time
        into a fixed part and a payload-proportional part (γ = 0.625).
    um_page_bytes:
        Unified-memory migration granularity (4 KB pages).
    um_peak_fraction:
        Peak unified-memory bandwidth as a fraction of cudaMemcpy (73.9 %).
    um_fault_overhead:
        Seconds of TLB-invalidation / page-table overhead per page fault.
    cpu_compaction_throughput:
        Bytes per second the CPU compaction engine produces.
    cpu_edge_throughput:
        Edges per second of the CPU-only (Galois-like) baseline.
    cpu_threads:
        Host CPU cores (10 in the paper's testbed).
    num_streams:
        CUDA streams used by the multi-stream scheduler.
    vertex_value_bytes:
        ``d1`` — bytes per neighbor id / vertex value (4).
    index_entry_bytes:
        ``d2`` — bytes per compacted-index entry (8).
    num_devices:
        Number of GPUs attached to the host.  1 (the paper's testbed)
        runs the single-device engines unchanged; larger values enable
        the sharded multi-GPU execution layer.
    interconnect_kind:
        Inter-GPU link type, one of :data:`INTERCONNECT_PRESETS`
        (``"nvlink"`` or ``"pcie-peer"``).  Only meaningful when
        ``num_devices > 1``.
    interconnect_bandwidth:
        Bytes/second one device pair can exchange boundary deltas at.
    interconnect_latency:
        Fixed seconds per boundary-synchronisation phase (barrier plus
        convergence-flag all-reduce).
    """

    name: str = "GTX-2080Ti"
    gpu_memory_bytes: int = 11 * GiB
    gpu_memory_bandwidth: float = 616e9
    gpu_edge_throughput: float = 10e9
    gpu_kernel_launch_overhead: float = 10e-6
    pcie_bandwidth: float = 12.3e9
    pcie_request_bytes: int = 128
    pcie_max_outstanding: int = 256
    zero_copy_gamma: float = 0.625
    um_page_bytes: int = 4096
    um_peak_fraction: float = 0.739
    um_fault_overhead: float = 0.5e-6
    cpu_compaction_throughput: float = 1.5e9
    cpu_edge_throughput: float = 0.25e9
    cpu_threads: int = 10
    num_streams: int = 4
    vertex_value_bytes: int = 4
    index_entry_bytes: int = 8
    num_devices: int = 1
    interconnect_kind: str = "nvlink"
    interconnect_bandwidth: float = 25e9
    interconnect_latency: float = 10e-6

    def __post_init__(self) -> None:
        if self.pcie_request_bytes <= 0 or self.pcie_max_outstanding <= 0:
            raise ValueError("PCIe request size and outstanding count must be positive")
        if not 0.0 <= self.zero_copy_gamma <= 1.0:
            raise ValueError("zero_copy_gamma must be in [0, 1]")
        if not 0.0 < self.um_peak_fraction <= 1.0:
            raise ValueError("um_peak_fraction must be in (0, 1]")
        if self.pcie_bandwidth <= 0 or self.gpu_memory_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        if self.interconnect_bandwidth <= 0:
            raise ValueError("interconnect_bandwidth must be positive")
        if self.interconnect_latency < 0:
            raise ValueError("interconnect_latency must be non-negative")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def tlp_payload_bytes(self) -> int:
        """Payload of one fully-saturated TLP (``MR * m`` bytes)."""
        return self.pcie_max_outstanding * self.pcie_request_bytes

    @property
    def tlp_round_trip_time(self) -> float:
        """``RTT`` — seconds for PCIe to process one saturated TLP."""
        return self.tlp_payload_bytes / self.pcie_bandwidth

    @property
    def memory_bandwidth_ratio(self) -> float:
        """GPU-memory-bandwidth / PCIe-bandwidth gap (Table I last column)."""
        return self.gpu_memory_bandwidth / self.pcie_bandwidth

    @property
    def um_bandwidth(self) -> float:
        """Peak unified-memory migration bandwidth in bytes/second."""
        return self.pcie_bandwidth * self.um_peak_fraction

    @property
    def is_multi_device(self) -> bool:
        """Whether the sharded multi-GPU execution layer is active."""
        return self.num_devices > 1

    @property
    def boundary_update_bytes(self) -> int:
        """Bytes per boundary-vertex delta message (id entry + value)."""
        return self.index_entry_bytes + self.vertex_value_bytes

    # ------------------------------------------------------------------
    # Adjusted copies
    # ------------------------------------------------------------------
    def with_gpu_memory(self, gpu_memory_bytes: int) -> "HardwareConfig":
        """A copy with a different device-memory capacity."""
        return replace(self, gpu_memory_bytes=int(gpu_memory_bytes))

    def scaled_memory(self, scale: float) -> "HardwareConfig":
        """A copy with device memory scaled by ``scale``.

        When graphs are scaled down by a factor ``s`` relative to the
        paper's datasets, calling ``preset.scaled_memory(s)`` preserves the
        graph-size-to-GPU-memory ratio that drives the oversubscription
        behaviour (which system wins on which dataset).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(self, gpu_memory_bytes=max(1, int(self.gpu_memory_bytes * scale)))

    def scaled(self, scale: float) -> "HardwareConfig":
        """A copy scaled for graphs ``scale`` times the paper's size.

        The device-memory capacity and the fixed per-event overheads
        (kernel launch, interconnect synchronisation latency) are
        multiplied by ``scale`` so that their magnitude *relative to
        per-partition transfer and kernel times* stays what it is on the
        paper's billion-edge graphs.  Bandwidths, request sizes and page
        sizes are physical constants and stay untouched.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(
            self,
            gpu_memory_bytes=max(1, int(self.gpu_memory_bytes * scale)),
            gpu_kernel_launch_overhead=self.gpu_kernel_launch_overhead * scale,
            interconnect_latency=self.interconnect_latency * scale,
        )

    def with_streams(self, num_streams: int) -> "HardwareConfig":
        """A copy with a different number of CUDA streams."""
        if num_streams <= 0:
            raise ValueError("num_streams must be positive")
        return replace(self, num_streams=num_streams)

    def with_devices(self, num_devices: int, interconnect: str | None = None) -> "HardwareConfig":
        """A copy attached to ``num_devices`` GPUs of this preset.

        Each device keeps the preset's per-device memory and bandwidth
        (so the aggregate device memory grows with ``num_devices``);
        ``interconnect`` names one of :data:`INTERCONNECT_PRESETS` and
        defaults to the current kind.
        """
        if num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        kind = interconnect or self.interconnect_kind
        if kind not in INTERCONNECT_PRESETS:
            raise KeyError(
                "unknown interconnect %r; available: %s"
                % (kind, ", ".join(sorted(INTERCONNECT_PRESETS)))
            )
        bandwidth, latency = INTERCONNECT_PRESETS[kind]
        return replace(
            self,
            num_devices=num_devices,
            interconnect_kind=kind,
            interconnect_bandwidth=bandwidth,
            interconnect_latency=latency,
        )


def gtx_2080ti() -> HardwareConfig:
    """The paper's primary testbed GPU: GTX 2080Ti, 11 GB, 616 GB/s."""
    return HardwareConfig(name="GTX-2080Ti", gpu_memory_bytes=11 * GiB, gpu_memory_bandwidth=616e9,
                          gpu_edge_throughput=10e9)


def gtx_1080() -> HardwareConfig:
    """GTX 1080: 8 GB, 320 GB/s, fewer cores (Figure 10)."""
    return HardwareConfig(name="GTX-1080", gpu_memory_bytes=8 * GiB, gpu_memory_bandwidth=320e9,
                          gpu_edge_throughput=6e9)


def tesla_p100() -> HardwareConfig:
    """Tesla P100: 16 GB, 732 GB/s (Table I row 1, Figure 10)."""
    return HardwareConfig(name="P100", gpu_memory_bytes=16 * GiB, gpu_memory_bandwidth=732e9,
                          gpu_edge_throughput=8e9)


def tesla_v100() -> HardwareConfig:
    """Tesla V100: 16 GB HBM2 at 900 GB/s, PCIe 3.0 (Table I row 2)."""
    return HardwareConfig(name="V100", gpu_memory_bytes=16 * GiB, gpu_memory_bandwidth=900e9,
                          gpu_edge_throughput=11e9)


def a100() -> HardwareConfig:
    """A100: 40 GB, 1.9 TB/s, PCIe 4.0 x16 at 32 GB/s (Table I row 3)."""
    return HardwareConfig(name="A100", gpu_memory_bytes=40 * GiB, gpu_memory_bandwidth=1.9e12,
                          pcie_bandwidth=26e9, gpu_edge_throughput=20e9)


def h100() -> HardwareConfig:
    """H100: 80 GB, 3 TB/s, PCIe 5.0 x16 at 64 GB/s (Table I row 4)."""
    return HardwareConfig(name="H100", gpu_memory_bytes=80 * GiB, gpu_memory_bandwidth=3.0e12,
                          pcie_bandwidth=52e9, gpu_edge_throughput=30e9)


GPU_PRESETS: dict[str, HardwareConfig] = {
    "GTX-1080": gtx_1080(),
    "GTX-2080Ti": gtx_2080ti(),
    "P100": tesla_p100(),
    "V100": tesla_v100(),
    "A100": a100(),
    "H100": h100(),
}


def default_config() -> HardwareConfig:
    """The default simulated platform (the paper's GTX 2080Ti testbed)."""
    return gtx_2080ti()
