"""GPU kernel and CPU processing time models.

The transfer engines decide how bytes reach the GPU; this module decides
how long the *computation* on those bytes takes.  The paper inherits its
processing kernels from SEP-Graph/Tigr with CTA scheduling and
bitmap-directed frontiers (Section VI-C); at the level this reproduction
models, kernel time is dominated by

* a fixed launch overhead per kernel (which is why HyTGraph's task
  combiner merges partitions — Section V-B), and
* an edge-processing term: active edges divided by an effective edge
  throughput, derated when the frontier is tiny (low occupancy) or when
  many active vertices contend on atomics.

The CPU model prices the Galois-like in-memory baseline and is an order of
magnitude slower per edge, matching the 5–13x GPU speedups of Table V.
"""

from __future__ import annotations

from repro.sim.config import HardwareConfig

__all__ = ["KernelModel"]

# Below this many active edges a kernel cannot fill the GPU, so throughput
# ramps linearly from ``_MIN_OCCUPANCY_FRACTION`` up to 1.0.
_OCCUPANCY_SATURATION_EDGES = 1 << 16
_MIN_OCCUPANCY_FRACTION = 0.05


class KernelModel:
    """Analytic kernel/CPU time model for one hardware configuration."""

    def __init__(self, config: HardwareConfig):
        self.config = config

    def occupancy(self, active_edges: int) -> float:
        """Fraction of peak edge throughput achievable for this frontier size."""
        if active_edges >= _OCCUPANCY_SATURATION_EDGES:
            return 1.0
        fraction = active_edges / _OCCUPANCY_SATURATION_EDGES
        return _MIN_OCCUPANCY_FRACTION + (1.0 - _MIN_OCCUPANCY_FRACTION) * fraction

    def kernel_time(self, active_edges: int, num_kernels: int = 1) -> float:
        """Seconds of GPU time to process ``active_edges`` edges.

        ``num_kernels`` separate launches each pay the launch overhead —
        the quantity the task combiner reduces.
        """
        if active_edges <= 0 and num_kernels <= 0:
            return 0.0
        launch = max(num_kernels, 1) * self.config.gpu_kernel_launch_overhead
        if active_edges <= 0:
            return launch
        effective = self.config.gpu_edge_throughput * self.occupancy(active_edges)
        return launch + active_edges / effective

    def device_scan_time(self, num_items: int) -> float:
        """Seconds for a device-side scan/reduction over ``num_items`` items.

        Used to price the on-GPU cost analysis + engine selection of
        Algorithm 1 (lines 2-13), which the paper runs on the GPU so only
        the selection result crosses PCIe.
        """
        if num_items <= 0:
            return 0.0
        bytes_touched = num_items * 3 * self.config.vertex_value_bytes
        return self.config.gpu_kernel_launch_overhead + bytes_touched / self.config.gpu_memory_bandwidth

    def cpu_processing_time(self, active_edges: int) -> float:
        """Seconds for the CPU-only baseline to process ``active_edges`` edges."""
        if active_edges <= 0:
            return 0.0
        return active_edges / self.config.cpu_edge_throughput
