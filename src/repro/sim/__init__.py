"""Simulated GPU-accelerated hardware substrate.

The paper's evaluation runs on real NVIDIA GPUs connected to host memory
over PCIe 3.0.  This package replaces that testbed with an analytic /
discrete-event simulator whose parameters come straight from the paper:

* :mod:`repro.sim.config` — hardware presets (PCIe generation, GPU memory
  size and bandwidth, CPU compaction throughput) for the GPUs of Table I
  and Figure 10.
* :mod:`repro.sim.pcie` — the PCIe Transaction-Layer-Packet model: 256
  outstanding memory requests per TLP, 32/64/96/128-byte request payloads,
  the γ = 0.625 zero-copy round-trip damping factor (Section V-A).
* :mod:`repro.sim.memory` — device memory accounting and the 4-KB-page
  LRU cache used by the unified-memory engine.
* :mod:`repro.sim.compaction` — the CPU active-edge compaction engine.
* :mod:`repro.sim.kernel` — GPU kernel and CPU processing time models.
* :mod:`repro.sim.streams` — the multi-stream scheduler that overlaps CPU
  compaction, PCIe transfers and GPU kernels (Section VI-B, Figure 6).

Multi-device scheduling (per-device streams over one shared host plus the
boundary-synchronisation phase) lives in the execution runtime:
:class:`repro.runtime.context.MultiDeviceScheduler`.

The simulator computes *time* and *bytes moved*; algorithm semantics are
computed exactly by the vertex programs regardless of the simulated
hardware, so simulation never affects answer correctness.
"""

from repro.sim.config import (
    HardwareConfig,
    GPU_PRESETS,
    INTERCONNECT_PRESETS,
    gtx_1080,
    gtx_2080ti,
    tesla_p100,
    default_config,
)
from repro.sim.pcie import PCIeModel
from repro.sim.memory import DeviceMemory, PageCache
from repro.sim.compaction import CompactionEngine, CompactionResult
from repro.sim.kernel import KernelModel
from repro.sim.streams import ResourceState, StreamScheduler, StreamTask, Timeline, TimelineEntry

__all__ = [
    "HardwareConfig",
    "GPU_PRESETS",
    "INTERCONNECT_PRESETS",
    "gtx_1080",
    "gtx_2080ti",
    "tesla_p100",
    "default_config",
    "PCIeModel",
    "DeviceMemory",
    "PageCache",
    "CompactionEngine",
    "CompactionResult",
    "KernelModel",
    "ResourceState",
    "StreamScheduler",
    "StreamTask",
    "Timeline",
    "TimelineEntry",
]
