"""Device memory accounting and the unified-memory page cache.

Two pieces of state live here:

* :class:`DeviceMemory` — a simple byte-granular allocator tracking how
  much of the simulated GPU's global memory is in use (vertex-associated
  arrays are allocated first; whatever is left can cache edge data).
* :class:`PageCache` — the 4-KB-page LRU cache behind the unified-memory
  transfer engine.  Accessing a set of pages returns how many hit the
  cache and how many fault (and therefore must be migrated over PCIe);
  when the cache is full, the least recently used pages are evicted.
  Because the paper enables ``cudaMemAdviseSetReadMostly`` (Section III-C)
  evicted pages are discarded, not written back.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["DeviceMemory", "PageCache", "PageAccessResult"]


class DeviceMemory:
    """Byte-granular accounting of simulated GPU global memory."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        self._allocations: dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self.used_bytes

    def allocate(self, label: str, num_bytes: int) -> None:
        """Reserve ``num_bytes`` under ``label``.

        Raises :class:`MemoryError` when the device memory is
        oversubscribed — this is exactly the condition under which the
        in-GPU-memory systems of Section I "fail to work".
        """
        if num_bytes < 0:
            raise ValueError("cannot allocate a negative size")
        if label in self._allocations:
            raise ValueError("label %r already allocated" % label)
        if num_bytes > self.free_bytes:
            raise MemoryError(
                "device memory oversubscribed: need %d bytes, only %d free"
                % (num_bytes, self.free_bytes)
            )
        self._allocations[label] = int(num_bytes)

    def free(self, label: str) -> None:
        """Release the allocation named ``label``."""
        if label not in self._allocations:
            raise KeyError("no allocation named %r" % label)
        del self._allocations[label]

    def can_fit(self, num_bytes: int) -> bool:
        """Whether ``num_bytes`` more would fit."""
        return num_bytes <= self.free_bytes

    def allocation(self, label: str) -> int:
        """Size of the allocation named ``label``."""
        return self._allocations[label]

    def __contains__(self, label: str) -> bool:
        return label in self._allocations


@dataclass(frozen=True)
class PageAccessResult:
    """Outcome of one batch of page accesses against the cache."""

    hits: int
    faults: int
    evictions: int

    @property
    def total(self) -> int:
        """Total pages accessed."""
        return self.hits + self.faults


@dataclass
class PageCacheStats:
    """Cumulative statistics of a :class:`PageCache`."""

    accesses: int = 0
    hits: int = 0
    faults: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accessed pages served from the cache."""
        return self.hits / self.accesses if self.accesses else 0.0


class PageCache:
    """LRU cache of unified-memory pages resident in device memory."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_pages = int(capacity_pages)
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.stats = PageCacheStats()

    @property
    def resident_pages(self) -> int:
        """Number of pages currently cached."""
        return len(self._pages)

    def is_resident(self, page_id: int) -> bool:
        """Whether ``page_id`` is currently in device memory."""
        return page_id in self._pages

    def access(self, page_ids: np.ndarray) -> PageAccessResult:
        """Access a batch of pages, migrating the missing ones.

        Pages that miss are faulted in; if the cache is full the least
        recently used resident pages are evicted (and discarded — the edge
        data is read-only).  Returns hit/fault/eviction counts for the
        batch, which the unified-memory engine converts into time.
        """
        page_ids = np.asarray(page_ids, dtype=np.int64)
        hits = 0
        faults = 0
        evictions = 0
        for page_id in page_ids.tolist():
            if page_id in self._pages:
                hits += 1
                self._pages.move_to_end(page_id)
                continue
            faults += 1
            if self.capacity_pages == 0:
                continue
            if len(self._pages) >= self.capacity_pages:
                self._pages.popitem(last=False)
                evictions += 1
            self._pages[page_id] = None
        self.stats.accesses += hits + faults
        self.stats.hits += hits
        self.stats.faults += faults
        self.stats.evictions += evictions
        return PageAccessResult(hits=hits, faults=faults, evictions=evictions)

    def pin(self, page_ids: np.ndarray) -> int:
        """Insert pages without counting them as faults (Grus-style prefetch).

        Returns the number of pages actually inserted (stops when the cache
        is full; prefetched pages are never evicted by :meth:`pin`).
        """
        inserted = 0
        for page_id in np.asarray(page_ids, dtype=np.int64).tolist():
            if page_id in self._pages:
                continue
            if len(self._pages) >= self.capacity_pages:
                break
            self._pages[page_id] = None
            inserted += 1
        return inserted

    def clear(self) -> None:
        """Drop every cached page (new run)."""
        self._pages.clear()
