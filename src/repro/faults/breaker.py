"""Circuit breaker shedding BULK work under repeated faults.

When waves keep hitting faults, continuing to admit heavy analytical
work makes every failure mode worse: BULK queries hold the session for
many super-iterations, widening the window for the next fault and
starving the INTERACTIVE traffic the service exists to protect.  The
:class:`CircuitBreaker` counts consecutive faulty waves; once
``threshold`` is reached it *opens* and the
:class:`~repro.service.GraphService` sheds queued BULK requests (typed
``QueryFailed``, never silently dropped) while still serving the
cheaper classes.  After ``cooldown`` consecutive clean waves the
breaker closes again and BULK admission resumes.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-faulty-wave breaker (open = shed BULK work)."""

    def __init__(self, threshold: int = 3, cooldown: int = 1):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if cooldown < 1:
            raise ValueError("cooldown must be at least 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._faulty_streak = 0
        self._clean_streak = 0
        self._open = False
        #: How many times the breaker tripped (monotonic).
        self.trips = 0

    @property
    def open(self) -> bool:
        """Whether BULK work is currently shed."""
        return self._open

    def record(self, faults: int) -> None:
        """Fold one served wave's injected-fault count into the state."""
        if faults > 0:
            self._clean_streak = 0
            self._faulty_streak += 1
            if not self._open and self._faulty_streak >= self.threshold:
                self._open = True
                self.trips += 1
        else:
            self._faulty_streak = 0
            if self._open:
                self._clean_streak += 1
                if self._clean_streak >= self.cooldown:
                    self._open = False
                    self._clean_streak = 0

    def reset(self) -> None:
        """Back to closed with no history."""
        self._faulty_streak = 0
        self._clean_streak = 0
        self._open = False
