"""Fault injection and recovery for the simulated serving stack.

The failure model every later scaling feature builds on:

* :class:`~repro.faults.spec.FaultSpec` /
  :class:`~repro.faults.spec.FaultSchedule` — typed, seed-deterministic
  descriptions of what goes wrong (device loss, transient transfer
  faults, memory pressure, interconnect degradation);
* :class:`~repro.faults.spec.RetryPolicy` — exponential-backoff retries
  for transient transfer faults, billed into the simulated timeline;
* :class:`~repro.faults.injector.FaultInjector` — interprets a schedule
  at super-iteration and task boundaries;
* :class:`~repro.faults.checkpoint.QueryCheckpoint` — per-query state
  snapshots the runner restores from on permanent faults;
* :class:`~repro.faults.breaker.CircuitBreaker` — sheds BULK work under
  repeated faults.

The invariant the whole subsystem is built around: faults perturb
*time, placement and residency*, never vertex-program semantics — every
query that survives (with retries, rollback/re-execution, re-sharding
or host fallback) returns values bitwise identical to a fault-free run.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.checkpoint import QueryCheckpoint
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "QueryCheckpoint",
    "RetryPolicy",
]
