"""Typed, seed-deterministic fault specifications.

A :class:`FaultSpec` names one thing that goes wrong on the simulated
platform; a :class:`FaultSchedule` bundles several specs with the seed
that makes every random draw (transient transfer failures) reproducible.
The schedule is pure data — the :class:`~repro.faults.injector.FaultInjector`
interprets it at runtime boundaries, and the same (schedule, seed) pair
always produces the same injected faults, which is what lets the chaos
grid assert bitwise-equal recovered values against a fault-free run.

Four fault kinds cover the failure surface of a multi-GPU serving host:

``device-loss``
    One GPU disappears permanently at super-iteration ``k``.  Its shard
    is remapped onto the survivors (host fallback when none remain) and
    every live query rolls back to its last checkpoint.
``transfer-flaky``
    Each PCIe transfer fails independently with probability ``p`` from
    super-iteration ``k`` on.  Failures are retried with exponential
    backoff (:class:`RetryPolicy`); a transfer that exhausts its
    attempts fails the owning query permanently.
``memory-pressure``
    The per-device cache budget shrinks by ``factor`` at super-iteration
    ``k`` (a co-tenant grabbed device memory); over-budget residents are
    evicted immediately.
``interconnect-degrade``
    Boundary-synchronisation traffic slows down by ``factor`` from
    super-iteration ``k`` on (link contention, a failed NVLink lane).

A fifth kind covers the multi-node tier:

``host-loss``
    One whole simulated host disappears at *cluster wave* ``k``.  This
    is a cluster-level fault: the single-host
    :class:`~repro.faults.injector.FaultInjector` skips it, and the
    :class:`~repro.cluster.ClusterService` interprets it instead —
    shipping the lost host's in-flight checkpoints to surviving
    replicas over the network.

The compact text form parsed by :meth:`FaultSchedule.parse` is what the
CLI's ``serve --faults`` flag accepts::

    device-loss@3:device=1;transfer-flaky:p=0.05;host-loss@4:host=1
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["FaultKind", "FaultSpec", "FaultSchedule", "RetryPolicy"]


class FaultKind(Enum):
    """The injectable fault taxonomy."""

    #: Permanent loss of one device at a super-iteration boundary.
    DEVICE_LOSS = "device-loss"
    #: Transient per-transfer failure with probability ``p``.
    TRANSFER_FLAKY = "transfer-flaky"
    #: Mid-run shrink of the per-device cache budget.
    MEMORY_PRESSURE = "memory-pressure"
    #: Multiplicative slowdown of the inter-GPU boundary exchange.
    INTERCONNECT_DEGRADE = "interconnect-degrade"
    #: Permanent loss of one whole simulated host at a cluster wave
    #: boundary (interpreted by the cluster tier, not the injector).
    HOST_LOSS = "host-loss"

    @classmethod
    def parse(cls, value: "FaultKind | str") -> "FaultKind":
        """Coerce a member or its registry name (``"device-loss"``)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError:
            raise ValueError(
                "unknown fault kind %r; pick one of: %s"
                % (value, ", ".join(member.value for member in cls))
            ) from None


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Attributes
    ----------
    kind:
        Which :class:`FaultKind` this spec injects.
    at_super_iteration:
        The super-iteration boundary the fault takes effect at
        (``transfer-flaky`` stays active from there on; the other kinds
        fire exactly once).  For ``host-loss`` the index counts
        *cluster waves* served, not super-iterations.
    device:
        ``device-loss`` only: which device dies (default: the last one).
    host:
        ``host-loss`` only: which host dies (default: the last one).
    probability:
        ``transfer-flaky`` only: per-transfer failure probability.
    factor:
        ``memory-pressure``: the budget multiplier in ``(0, 1]``;
        ``interconnect-degrade``: the slowdown multiplier ``>= 1``.
    """

    kind: FaultKind
    at_super_iteration: int = 0
    device: int | None = None
    probability: float | None = None
    factor: float | None = None
    host: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "kind", FaultKind.parse(self.kind))
        if self.at_super_iteration < 0:
            raise ValueError("at_super_iteration must be non-negative")
        if self.kind is FaultKind.DEVICE_LOSS:
            if self.device is not None and self.device < 0:
                raise ValueError("device must be non-negative")
        elif self.device is not None:
            raise ValueError("device= applies only to device-loss faults")
        if self.kind is FaultKind.HOST_LOSS:
            if self.host is not None and self.host < 0:
                raise ValueError("host must be non-negative")
        elif self.host is not None:
            raise ValueError("host= applies only to host-loss faults")
        if self.kind is FaultKind.TRANSFER_FLAKY:
            if self.probability is None or not 0.0 < self.probability <= 1.0:
                raise ValueError("transfer-flaky needs a probability p in (0, 1]")
        elif self.probability is not None:
            raise ValueError("p= applies only to transfer-flaky faults")
        if self.kind is FaultKind.MEMORY_PRESSURE:
            if self.factor is None or not 0.0 < self.factor <= 1.0:
                raise ValueError("memory-pressure needs a factor in (0, 1]")
        elif self.kind is FaultKind.INTERCONNECT_DEGRADE:
            if self.factor is None or self.factor < 1.0:
                raise ValueError("interconnect-degrade needs a factor >= 1")
        elif self.factor is not None:
            raise ValueError(
                "factor= applies only to memory-pressure/interconnect-degrade faults"
            )


#: Per-kind key=value options accepted by :meth:`FaultSchedule.parse`.
_PARSE_KEYS = {
    FaultKind.DEVICE_LOSS: {"device": int},
    FaultKind.TRANSFER_FLAKY: {"p": float, "probability": float},
    FaultKind.MEMORY_PRESSURE: {"factor": float},
    FaultKind.INTERCONNECT_DEGRADE: {"factor": float},
    FaultKind.HOST_LOSS: {"host": int},
}


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of fault specs plus the chaos seed.

    The seed drives every random draw the injector makes (transfer-flaky
    failures); two injectors built from equal schedules inject byte-
    identical fault sequences on the same workload.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError("FaultSchedule.specs must hold FaultSpec objects")

    def host_loss_specs(self) -> tuple[FaultSpec, ...]:
        """The cluster-level ``host-loss`` specs of this schedule."""
        return tuple(
            spec for spec in self.specs if spec.kind is FaultKind.HOST_LOSS
        )

    def without_host_loss(self) -> "FaultSchedule | None":
        """The host-local remainder of the schedule (``None`` when empty).

        The cluster tier hands this to each replica's injector: every
        per-host fault kind keeps its semantics unchanged, while the
        ``host-loss`` specs are interpreted at the cluster layer.
        """
        specs = tuple(
            spec for spec in self.specs if spec.kind is not FaultKind.HOST_LOSS
        )
        if not specs:
            return None
        return FaultSchedule(specs=specs, seed=self.seed)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultSchedule":
        """Parse the compact CLI form.

        ``;``-separated entries, each ``kind[@super][:key=value,...]``::

            device-loss@3:device=1;transfer-flaky:p=0.05

        Raises ``ValueError`` with the offending entry named.
        """
        specs: list[FaultSpec] = []
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            head, _, options = entry.partition(":")
            name, _, at_text = head.partition("@")
            kind = FaultKind.parse(name)
            kwargs: dict[str, object] = {"kind": kind}
            if at_text:
                try:
                    kwargs["at_super_iteration"] = int(at_text)
                except ValueError:
                    raise ValueError(
                        "bad fault entry %r: %r is not a super-iteration index"
                        % (entry, at_text)
                    ) from None
            keys = _PARSE_KEYS[kind]
            for pair in filter(None, (p.strip() for p in options.split(","))):
                key, sep, value = pair.partition("=")
                key = key.strip().lower()
                if not sep or key not in keys:
                    raise ValueError(
                        "bad fault entry %r: expected %s"
                        % (entry, "/".join("%s=..." % k for k in keys))
                    )
                try:
                    parsed = keys[key](value.strip())
                except ValueError:
                    raise ValueError(
                        "bad fault entry %r: %r is not a valid %s" % (entry, value, key)
                    ) from None
                kwargs["probability" if key == "p" else key] = parsed
            specs.append(FaultSpec(**kwargs))
        if not specs:
            raise ValueError("empty fault schedule %r" % text)
        return cls(specs=tuple(specs), seed=seed)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry policy for transient transfer faults.

    ``max_attempts`` bounds the *total* sends of one transfer (the first
    try plus retries); a transfer whose every attempt fails is a
    permanent fault and fails the owning query.  The ``i``-th retry
    waits ``backoff_base_s * backoff_multiplier**i`` simulated seconds
    before re-sending; backoff and re-send time are billed into the
    simulated timeline.
    """

    max_attempts: int = 4
    backoff_base_s: float = 1e-5
    backoff_multiplier: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")

    def backoff_seconds(self, failed_attempts: int) -> float:
        """Total backoff wait after ``failed_attempts`` consecutive failures."""
        return sum(
            self.backoff_base_s * self.backoff_multiplier**i
            for i in range(failed_attempts)
        )
