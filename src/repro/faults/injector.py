"""The runtime fault injector.

One :class:`FaultInjector` interprets a
:class:`~repro.faults.spec.FaultSchedule` against a running execution
session.  The runtime consults it at two boundaries:

* **super-iteration boundaries** — :meth:`begin_super_iteration` applies
  the one-shot faults due at this boundary directly to the
  :class:`~repro.runtime.context.ExecutionContext` (cache-budget
  shrinks, interconnect degradation) and returns the devices lost, so
  the caller can roll live queries back to their checkpoints;
* **task boundaries** — :meth:`perturb_transfers` walks the merged
  per-device stream-task lists in deterministic order and draws, per
  transfer-carrying task, the transient failures of the active
  ``transfer-flaky`` specs.  Failed attempts are retried under the
  :class:`~repro.faults.spec.RetryPolicy`: the re-sends and the
  exponential backoff are billed into the task's transfer time (hence
  into the simulated timeline), and a task that exhausts its attempts
  permanently fails the owning query.

Every random draw comes from one ``numpy`` generator seeded with the
schedule's seed, and the walk order is deterministic (devices, then
merged task order), so equal (schedule, workload) pairs inject equal
fault sequences — the property the chaos grid and the CI seed matrix
rely on.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.faults.spec import FaultKind, FaultSchedule, RetryPolicy
from repro.obs.tracer import NULL_TRACER

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies one fault schedule to one execution session."""

    def __init__(self, schedule: FaultSchedule, retry: RetryPolicy | None = None):
        self.schedule = schedule
        self.retry = retry or RetryPolicy()
        self._rng = np.random.default_rng(schedule.seed)
        #: Next super-iteration index (one counter for the injector's
        #: lifetime: a service's waves share it, so ``@k`` means the
        #: k-th super-iteration the session executes overall).
        self._super = 0
        self._applied: set[int] = set()
        self._flaky_p = 0.0
        #: Chronological record of every injected fault (events feed the
        #: batch record and the CLI report).
        self.events: list[dict] = []
        self.faults_injected = 0
        self.retries = 0
        self.retry_time_s = 0.0
        #: Per-device fault counts (transfer faults on the device's
        #: tasks, plus its loss) — the service's device-health view.
        self.device_faults: dict[int, int] = {}
        #: Span sink for fault events (no-op unless a service installs a
        #: recording tracer; see :mod:`repro.obs`).
        self.tracer = NULL_TRACER
        #: Query-index → trace track, set by the batch runner around
        #: :meth:`perturb_transfers` so retries also land on the owning
        #: query's lane (``None`` = fault lane only).
        self.trace_tracks = None

    # ------------------------------------------------------------------
    # Super-iteration boundary
    # ------------------------------------------------------------------
    def begin_super_iteration(self, context) -> list[int]:
        """Apply the faults due at this boundary; return lost devices.

        Memory pressure and interconnect degradation mutate ``context``
        directly (they need no query-state recovery).  Device losses are
        applied to the context — shard remap, cache invalidation, host
        fallback — and *returned*, because the caller owns the query
        checkpoints the recovery rolls back to.
        """
        boundary = self._super
        self._super += 1
        lost: list[int] = []
        for position, spec in enumerate(self.schedule.specs):
            if spec.kind is FaultKind.TRANSFER_FLAKY:
                continue
            if spec.kind is FaultKind.HOST_LOSS:
                # Cluster-level fault: a single-host session has no host
                # to lose — the ClusterService interprets these instead
                # (and strips them from replica schedules).
                continue
            if position in self._applied or boundary < spec.at_super_iteration:
                continue
            self._applied.add(position)
            event = {"super_iteration": boundary, "kind": spec.kind.value}
            if spec.kind is FaultKind.DEVICE_LOSS:
                if context.host_fallback:
                    # Nothing left to lose; the session already runs on
                    # the host.  Record the no-op and move on.
                    event["skipped"] = "host fallback already active"
                else:
                    device = spec.device if spec.device is not None else context.num_devices - 1
                    device = min(device, context.num_devices - 1)
                    context.lose_device(device)
                    self.faults_injected += 1
                    self.device_faults[device] = self.device_faults.get(device, 0) + 1
                    event["device"] = device
                    lost.append(device)
            elif spec.kind is FaultKind.MEMORY_PRESSURE:
                context.shrink_cache_budget(spec.factor)
                self.faults_injected += 1
                event["factor"] = spec.factor
            elif spec.kind is FaultKind.INTERCONNECT_DEGRADE:
                context.degrade_interconnect(spec.factor)
                self.faults_injected += 1
                event["factor"] = spec.factor
            self.events.append(event)
            if self.tracer.enabled:
                self.tracer.instant("fault", event["kind"], track="faults", **{
                    key: value for key, value in event.items() if key != "kind"
                })
        # The transfer-failure probability active from this boundary on
        # (several flaky specs compose as the max).
        self._flaky_p = max(
            (
                spec.probability
                for spec in self.schedule.specs
                if spec.kind is FaultKind.TRANSFER_FLAKY
                and spec.at_super_iteration <= boundary
            ),
            default=0.0,
        )
        return lost

    # ------------------------------------------------------------------
    # Task boundary
    # ------------------------------------------------------------------
    def perturb_transfers(self, device_tasks: list[list]) -> dict[int, int]:
        """Draw transient failures over the merged per-device task lists.

        Tasks are rewritten in place with their retry re-sends and
        backoff folded into ``transfer_time`` (and ``attempts`` set), so
        the retry cost lands in the co-scheduled timeline.  Returns
        ``{query_index: attempts}`` for the queries whose transfer
        exhausted the retry policy — permanent failures the caller must
        turn into a terminal query state.
        """
        if self._flaky_p <= 0.0:
            return {}
        probability = self._flaky_p
        retry = self.retry
        failures: dict[int, int] = {}
        for device, tasks in enumerate(device_tasks):
            for position, task in enumerate(tasks):
                if task.transfer_time <= 0.0:
                    continue
                failed = 0
                while failed < retry.max_attempts and self._rng.random() < probability:
                    failed += 1
                if failed == 0:
                    continue
                permanent = failed >= retry.max_attempts
                # Every failed attempt beyond the originally billed send
                # is a re-send; a permanent failure never gets the final
                # successful send, so one re-send less.
                resends = failed if not permanent else failed - 1
                extra = resends * task.transfer_time + retry.backoff_seconds(failed)
                attempts = failed if permanent else failed + 1
                self.faults_injected += 1
                self.retries += resends
                self.retry_time_s += extra
                self.device_faults[device] = self.device_faults.get(device, 0) + 1
                self.events.append(
                    {
                        "super_iteration": self._super - 1,
                        "kind": FaultKind.TRANSFER_FLAKY.value,
                        "task": task.name,
                        "device": device,
                        "attempts": attempts,
                        "permanent": permanent,
                    }
                )
                tasks[position] = replace(
                    task, transfer_time=task.transfer_time + extra, attempts=attempts
                )
                query = self._query_of(task.name)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "fault", "retry", track="faults", task=task.name,
                        device=device, attempts=attempts, permanent=permanent,
                        retry_time_s=extra,
                    )
                    track = (
                        self.trace_tracks[query]
                        if self.trace_tracks is not None and query is not None
                        else None
                    )
                    if track is not None:
                        self.tracer.instant(
                            "fault", "retry", track=track, task=task.name,
                            device=device, attempts=attempts, permanent=permanent,
                            retry_time_s=extra,
                        )
                if permanent:
                    if query is not None:
                        failures[query] = max(failures.get(query, 0), attempts)
        return failures

    @staticmethod
    def _query_of(task_name: str) -> int | None:
        """The owning query index from a merged task's ``q<i>|`` prefix."""
        head, sep, _ = task_name.partition("|")
        if not sep or not head.startswith("q") or not head[1:].isdigit():
            return None
        return int(head[1:])
