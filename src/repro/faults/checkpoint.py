"""Query-state checkpoints for fault recovery.

A :class:`QueryCheckpoint` is a consistent snapshot of one query taken
at a super-iteration boundary: the program's per-vertex value arrays,
the frontier bitmap, the iteration counters and a manifest of what was
cache-resident at capture time.  On a permanent fault (device loss) the
runner restores every live query from its last checkpoint and
re-executes from there — the vertex-program semantics are deterministic
and device-count independent, so re-execution converges to values
bitwise identical to a fault-free run (the chaos grid asserts exactly
that).

Costs are billed into the simulated timeline: capturing is one
device-to-host copy of the state bytes over PCIe, restoring is the same
copy back.  The submit-time checkpoint is free — the host still holds
the initial state, nothing has to cross PCIe for it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState

__all__ = ["QueryCheckpoint"]


@dataclass
class QueryCheckpoint:
    """One query's recoverable state at a super-iteration boundary.

    Attributes
    ----------
    iteration:
        The session's outer-iteration counter at capture time.
    recorded_iterations:
        How many :class:`~repro.metrics.results.IterationStats` records
        the session's result held at capture time; restore truncates the
        record list back to this length so rolled-back iterations leave
        no trace (their re-execution is recorded fresh).
    state / pending:
        Deep copies of the per-vertex value arrays and the frontier
        bitmap.
    scratch:
        Deep copy of the session's system-specific scratch state.
    residency:
        Manifest of the cache-resident partitions at capture time
        (``None`` on cacheless sessions).  Informational: device memory
        does not survive the faults that trigger a restore, so residency
        is rebuilt by the cache layer, not replayed from here.
    checkpoint_bytes:
        Bytes one capture/restore moves across PCIe.
    """

    iteration: int
    recorded_iterations: int
    state: ProgramState
    pending: np.ndarray
    scratch: dict
    residency: np.ndarray | None
    checkpoint_bytes: int

    @classmethod
    def capture(cls, session, cache=None) -> "QueryCheckpoint":
        """Snapshot ``session`` (a :class:`~repro.runtime.driver.QuerySession`)."""
        state = session.state.copy()
        pending = session.pending.copy()
        nbytes = sum(array.nbytes for array in state.arrays.values()) + pending.nbytes
        return cls(
            iteration=session.iteration,
            recorded_iterations=len(session.result.iterations),
            state=state,
            pending=pending,
            scratch=copy.deepcopy(session.scratch),
            residency=None if cache is None else cache.resident.copy(),
            checkpoint_bytes=int(nbytes),
        )

    def transfer_seconds(self, config) -> float:
        """Simulated seconds one capture/restore copy spends on PCIe."""
        return self.checkpoint_bytes / config.pcie_bandwidth

    def restore(self, session, config=None) -> float:
        """Roll ``session`` back to this checkpoint; returns the billed seconds.

        The checkpoint itself stays intact (arrays are copied back out),
        so one checkpoint can serve several restores.  With ``config``
        the host-to-device copy is priced at PCIe bandwidth; without it
        the restore is free (used by state-only tests).
        """
        session.state = self.state.copy()
        session.pending = self.pending.copy()
        session.iteration = self.iteration
        del session.result.iterations[self.recorded_iterations :]
        session.scratch = copy.deepcopy(self.scratch)
        return 0.0 if config is None else self.transfer_seconds(config)
