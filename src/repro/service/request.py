"""Typed request/response surface of the serving API.

A :class:`QueryRequest` is what a client of :class:`~repro.service.GraphService`
submits: which algorithm, from which source, at which :class:`Priority`
class, optionally with a latency deadline (the SLA).  Submission returns
a :class:`QueryHandle` that walks the request lifecycle::

    submit() ──▶ QUEUED ──▶ RUNNING ──▶ DONE ──▶ result()
          │
          └────▶ REJECTED (admission control; see repro.service.admission)

Handles are poll-based: :meth:`QueryHandle.poll` never executes anything,
:meth:`QueryHandle.result` drains the service's queue on demand.

Under fault injection two more terminal states exist: ``FAILED`` (a
fault persisted through the retry policy, or the circuit breaker shed
the request) and ``CANCELLED`` (deadline enforcement).  Demanding such a
request's result raises :class:`QueryFailed` carrying the fault cause
and the attempt count, mirroring how :class:`RequestRejected` surfaces
admission refusals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum

from repro.metrics.results import RunResult

__all__ = [
    "Priority",
    "QueryRequest",
    "RequestStatus",
    "QueryHandle",
    "RequestRejected",
    "QueryFailed",
]


class Priority(IntEnum):
    """Request priority classes (lower value = served first).

    The scheduler orders merged per-device task lists in strict class
    order — every stream task of a higher class is scheduled before any
    task of a lower class — so one INTERACTIVE point lookup is never
    stuck behind a BULK analytical scan.
    """

    #: Cheap point lookups with tight latency expectations.
    INTERACTIVE = 0
    #: The default class for ordinary queries.
    STANDARD = 1
    #: Heavy analytical work that tolerates queueing.
    BULK = 2

    @classmethod
    def parse(cls, value: "Priority | str | int") -> "Priority":
        """Coerce an enum member, name (``"interactive"``) or value."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                raise ValueError(
                    "unknown priority %r; pick one of: %s"
                    % (value, ", ".join(member.name.lower() for member in cls))
                ) from None
        return cls(value)


@dataclass(frozen=True)
class QueryRequest:
    """One typed query submission.

    Attributes
    ----------
    algorithm:
        Registry key of the vertex program (``"sssp"``, ``"bfs"``,
        ``"cc"``, ``"pagerank"``, ``"php"``).
    source:
        Traversal source for source-based algorithms (``None`` for the
        sourceless ones; ``None`` on a source-based algorithm lets the
        service pick its default source).
    priority:
        Scheduling class; also accepts the class name as a string.
    deadline_s:
        Optional latency SLA in simulated seconds.  Missing it never
        cancels the query — the service records the miss per request
        (:attr:`QueryHandle.deadline_met`) and aggregates SLA attainment
        in :class:`~repro.service.stats.ServiceStats`.  With arrival
        timestamps the SLA clock starts at :attr:`arrival_s`, not at
        the start of the serving run.
    label:
        Free-form client tag carried through to the handle (trace names,
        tenant ids).
    arrival_s:
        Simulated arrival timestamp.  ``0.0`` (the default) reproduces
        the historical everything-at-once behaviour; a trace whose
        requests carry increasing arrivals is served event-driven —
        waves form only over requests that have arrived, and queue wait
        is measured from this timestamp.
    """

    algorithm: str
    source: int | None = None
    priority: Priority = Priority.STANDARD
    deadline_s: float | None = None
    label: str | None = None
    arrival_s: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "priority", Priority.parse(self.priority))
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")
        if not (self.arrival_s >= 0.0):  # also catches NaN
            raise ValueError("arrival_s must be a non-negative time")


class RequestStatus(Enum):
    """Lifecycle state of a submitted request."""

    #: Admitted and waiting for a scheduling wave.
    QUEUED = "queued"
    #: Refused by admission control (terminal; see ``reject_reason``).
    REJECTED = "rejected"
    #: Being executed in the current scheduling wave.
    RUNNING = "running"
    #: Finished; the result is available (terminal).
    DONE = "done"
    #: A fault persisted through recovery, or the circuit breaker shed
    #: the request (terminal; see ``fault_cause``).
    FAILED = "failed"
    #: Deadline enforcement cancelled the query mid-run (terminal).
    CANCELLED = "cancelled"


class RequestRejected(RuntimeError):
    """Raised when a rejected request's result is demanded."""


class QueryFailed(RuntimeError):
    """Raised when a failed or cancelled request's result is demanded.

    Attributes
    ----------
    cause:
        The fault cause recorded by the runtime (e.g. ``"transfer fault
        persisted through 4 attempts"`` or a deadline message).
    attempts:
        Transfer attempts of the fatal fault (0 for cancellations and
        breaker sheds).
    """

    def __init__(self, message: str, cause: str | None = None, attempts: int = 0):
        super().__init__(message)
        self.cause = cause
        self.attempts = attempts


@dataclass
class QueryHandle:
    """Client-side view of one submitted request (submit → poll → result)."""

    request: QueryRequest
    request_id: int
    status: RequestStatus = RequestStatus.QUEUED
    #: Why admission control refused the request (``None`` unless REJECTED).
    reject_reason: str | None = None
    #: Admission-control estimate of the request's bytes in flight.
    estimated_bytes: int = 0
    #: Scheduling wave the request ran in (``None`` until it runs).
    wave: int | None = None
    #: Simulated arrival-to-completion latency (queue wait + execution).
    latency_s: float | None = None
    #: Simulated seconds between arrival and the first wave that ran the
    #: request (``None`` until it runs).
    queue_wait_s: float | None = None
    #: How many times the query was preempted at a super-iteration
    #: boundary and later resumed from its checkpoint.
    preemptions: int = 0
    #: SLA outcome (``None`` when the request carried no deadline).
    deadline_met: bool | None = None
    #: Why the request FAILED / was CANCELLED (``None`` otherwise).
    fault_cause: str | None = None
    #: Transfer attempts of the fatal fault (0 unless FAILED on one).
    attempts: int = 0
    #: Earliest simulated time a scheduling wave may take this handle
    #: (0.0 normally — :attr:`ready_s` then reduces to the arrival
    #: stamp; raised above it only by cross-host checkpoint shipping,
    #: whose network transfer must land before the query can resume).
    _ready_s: float = field(default=0.0, repr=False)
    #: Suspended-state checkpoint of a preempted query (``None`` unless
    #: the request is currently waiting to resume).
    _checkpoint: object | None = field(default=None, repr=False)
    _service: object | None = field(default=None, repr=False)
    #: The resolved (program, source) pair the service will execute.
    _query: tuple | None = field(default=None, repr=False)
    _result: RunResult | None = field(default=None, repr=False)

    @property
    def arrival_s(self) -> float:
        """The request's simulated arrival timestamp."""
        return self.request.arrival_s

    @property
    def ready_s(self) -> float:
        """Earliest simulated time a scheduling wave may take this handle.

        Equals :attr:`arrival_s` unless a cross-host checkpoint shipment
        is in flight, in which case it is the shipment's landing time.
        """
        return max(self.request.arrival_s, self._ready_s)

    @property
    def done(self) -> bool:
        """Whether the request reached a terminal state."""
        return self.status in (
            RequestStatus.DONE,
            RequestStatus.REJECTED,
            RequestStatus.FAILED,
            RequestStatus.CANCELLED,
        )

    def poll(self) -> RequestStatus:
        """Current lifecycle state; never triggers execution."""
        return self.status

    def result(self, wait: bool = True) -> RunResult | None:
        """The query's :class:`RunResult`.

        ``wait=True`` (default) drains the owning service's queue until
        this request completes; ``wait=False`` returns ``None`` when the
        result is not ready yet.  Raises :class:`RequestRejected` for
        requests refused by admission control and :class:`QueryFailed`
        for requests that failed terminally or were cancelled.
        """
        if self.status is RequestStatus.REJECTED:
            raise RequestRejected(
                "request %d (%s) was rejected: %s"
                % (self.request_id, self.request.algorithm, self.reject_reason)
            )
        if self._result is None and not self.done and wait:
            self._service.drain()
        if self.status in (RequestStatus.FAILED, RequestStatus.CANCELLED):
            raise QueryFailed(
                "request %d (%s) %s: %s"
                % (
                    self.request_id,
                    self.request.algorithm,
                    "failed" if self.status is RequestStatus.FAILED else "was cancelled",
                    self.fault_cause,
                ),
                cause=self.fault_cause,
                attempts=self.attempts,
            )
        return self._result
