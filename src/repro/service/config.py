"""One dataclass for every serving knob.

Historically the knobs of a run were scattered across ``make_system``
kwargs, ``build_workload`` arguments and per-CLI flags; the service
collects them in :class:`ServiceConfig` so a deployment is described by
one value — which graph, which system, how many devices over which
interconnect, which cache policy, and the serving policies (scheduling
discipline, admission budget) layered on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.systems import SYSTEMS

__all__ = ["ServiceConfig", "SCHEDULING_POLICIES", "ADMISSION_POLICIES"]

#: How a wave's merged task lists are ordered.
SCHEDULING_POLICIES = ("priority", "fifo")

#: What happens to a request that does not fit the admission budget.
ADMISSION_POLICIES = ("queue", "reject")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`~repro.service.GraphService` needs to exist.

    Graph/platform knobs (``dataset``/``scale``/``gpu``/``devices``/
    ``interconnect``) feed :func:`repro.bench.workloads.build_workload`
    when the service builds its own graph; they are ignored when a
    prebuilt system or workload is supplied.  Cache knobs are forwarded
    to the system; serving knobs configure the scheduler and the
    admission controller.
    """

    # --- system/platform ------------------------------------------------
    system: str = "hytgraph"
    dataset: str = "SK"
    scale: float = 1.0
    gpu: str | None = None
    devices: int = 1
    interconnect: str | None = None
    # --- device-memory cache -------------------------------------------
    cache_policy: str = "static-prefix"
    cache_budget: int | None = None
    # --- serving --------------------------------------------------------
    #: ``"priority"`` orders merged tasks by request priority class;
    #: ``"fifo"`` reproduces the historical submission-order co-schedule.
    scheduling: str = "priority"
    #: Estimated-bytes-in-flight ceiling per scheduling wave
    #: (``None`` = unlimited; ``0`` admits only zero-estimate requests).
    admission_budget_bytes: int | None = None
    #: ``"queue"`` holds overflow requests for a later wave; ``"reject"``
    #: refuses them outright (hard back-pressure).
    admission_policy: str = "queue"
    max_iterations: int | None = None

    def __post_init__(self):
        if self.system.lower() not in SYSTEMS:
            raise ValueError(
                "unknown system %r; available: %s"
                % (self.system, ", ".join(sorted(SYSTEMS)))
            )
        if self.scheduling not in SCHEDULING_POLICIES:
            raise ValueError(
                "unknown scheduling policy %r; pick one of: %s"
                % (self.scheduling, ", ".join(SCHEDULING_POLICIES))
            )
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ValueError(
                "unknown admission policy %r; pick one of: %s"
                % (self.admission_policy, ", ".join(ADMISSION_POLICIES))
            )
        if self.admission_budget_bytes is not None and self.admission_budget_bytes < 0:
            raise ValueError("admission_budget_bytes must be non-negative")
        if self.devices < 1:
            raise ValueError("devices must be at least 1")

    def system_kwargs(self) -> dict:
        """Constructor kwargs for ``make_system`` from the cache knobs."""
        kwargs: dict = {}
        if self.cache_policy != "static-prefix":
            kwargs["cache_policy"] = self.cache_policy
        if self.cache_budget is not None:
            kwargs["cache_budget"] = self.cache_budget
        if self.max_iterations is not None:
            kwargs["max_iterations"] = self.max_iterations
        return kwargs
