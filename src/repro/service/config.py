"""One dataclass for every serving knob.

Historically the knobs of a run were scattered across ``make_system``
kwargs, ``build_workload`` arguments and per-CLI flags; the service
collects them in :class:`ServiceConfig` so a deployment is described by
one value — which graph, which system, how many devices over which
interconnect, which cache policy, and the serving policies (scheduling
discipline, admission budget) layered on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.policy import CACHE_POLICIES
from repro.core.backends import resolve_backend_name
from repro.faults import FaultSchedule, RetryPolicy
from repro.obs.tracer import TracingConfig
from repro.systems import SYSTEMS

__all__ = ["ServiceConfig", "SCHEDULING_POLICIES", "ADMISSION_POLICIES"]

#: How a wave's merged task lists are ordered.
SCHEDULING_POLICIES = ("priority", "fifo")

#: What happens to a request that does not fit the admission budget.
ADMISSION_POLICIES = ("queue", "reject")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`~repro.service.GraphService` needs to exist.

    Graph/platform knobs (``dataset``/``scale``/``gpu``/``devices``/
    ``interconnect``) feed :func:`repro.bench.workloads.build_workload`
    when the service builds its own graph; they are ignored when a
    prebuilt system or workload is supplied.  Cache knobs are forwarded
    to the system; serving knobs configure the scheduler and the
    admission controller.
    """

    # --- system/platform ------------------------------------------------
    system: str = "hytgraph"
    dataset: str = "SK"
    scale: float = 1.0
    gpu: str | None = None
    devices: int = 1
    interconnect: str | None = None
    # --- device-memory cache -------------------------------------------
    cache_policy: str = "static-prefix"
    cache_budget: int | None = None
    # --- compute backend -------------------------------------------------
    #: Kernel-layer compute backend (``"numpy"``, ``"numba"``,
    #: ``"array-api"`` or ``"auto"``); ``None`` keeps the ambient default
    #: (``REPRO_BACKEND`` env override, numpy otherwise).  Validated at
    #: config construction so an unknown or uninstalled backend fails the
    #: deployment immediately, naming the installed backends.
    backend: str | None = None
    # --- serving --------------------------------------------------------
    #: ``"priority"`` orders merged tasks by request priority class;
    #: ``"fifo"`` reproduces the historical submission-order co-schedule.
    scheduling: str = "priority"
    #: Estimated-bytes-in-flight ceiling per scheduling wave
    #: (``None`` = unlimited; ``0`` admits only zero-estimate requests).
    admission_budget_bytes: int | None = None
    #: ``"queue"`` holds overflow requests for a later wave; ``"reject"``
    #: refuses them outright (hard back-pressure).
    admission_policy: str = "queue"
    #: When True, a running BULK query yields at super-iteration
    #: boundaries to newly arrived INTERACTIVE work: its state is
    #: checkpointed (copy billed), the wave closes, and it resumes from
    #: the checkpoint in a later wave.  Off by default — the historical
    #: run-to-completion wave behaviour, bitwise.
    preemption: bool = False
    #: Per-device device-cache byte caps per priority class
    #: (class name -> bytes, e.g. ``{"bulk": 16_000_000}``); classes
    #: without an entry are uncapped.  Only meaningful under an adaptive
    #: cache policy; ``None`` keeps classless admission.
    cache_class_budgets: dict | None = None
    max_iterations: int | None = None
    # --- faults and recovery ---------------------------------------------
    #: Default latency SLA applied to requests that carry none
    #: (``None`` = no default; must be positive when set).
    deadline_s: float | None = None
    #: When True, a query whose accumulated latency exceeds its
    #: (request or default) deadline is cancelled mid-run instead of
    #: merely recorded as an SLA miss.
    enforce_deadlines: bool = False
    #: Retry policy for transient transfer faults.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Fault schedule to inject (a :class:`FaultSchedule`, a spec string
    #: such as ``"device-loss@3:device=1;transfer-flaky:p=0.05"``, or
    #: ``None`` for fault-free serving).
    faults: FaultSchedule | str | None = None
    #: Seed of the injector's random stream (applied when ``faults`` is
    #: given as a spec string).
    chaos_seed: int = 0
    #: Checkpoint query state every this many super-iterations.
    checkpoint_interval: int = 1
    #: Consecutive faulty waves before the circuit breaker opens and
    #: queued BULK work is shed.
    breaker_threshold: int = 3
    #: Consecutive clean waves before an open breaker closes again.
    breaker_cooldown: int = 1
    # --- observability ---------------------------------------------------
    #: Span tracing (:mod:`repro.obs`): ``None``/``False`` for the no-op
    #: tracer (zero overhead, the default), ``True`` for a recording
    #: tracer with default :class:`~repro.obs.tracer.TracingConfig`, or
    #: a ``TracingConfig`` for explicit capacity/sampling.  Tracing only
    #: records spans — every served number is bitwise unchanged.
    tracing: TracingConfig | bool | None = None

    def __post_init__(self):
        if self.system.lower() not in SYSTEMS:
            raise ValueError(
                "unknown system %r; available: %s"
                % (self.system, ", ".join(sorted(SYSTEMS)))
            )
        if self.scheduling not in SCHEDULING_POLICIES:
            raise ValueError(
                "unknown scheduling policy %r; pick one of: %s"
                % (self.scheduling, ", ".join(SCHEDULING_POLICIES))
            )
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ValueError(
                "unknown admission policy %r; pick one of: %s"
                % (self.admission_policy, ", ".join(ADMISSION_POLICIES))
            )
        if self.backend is not None:
            # Raises BackendError (a ValueError) naming the installed
            # backends for unknown or uninstalled names.
            resolve_backend_name(self.backend)
        if self.cache_policy.lower() not in CACHE_POLICIES:
            raise ValueError(
                "unknown cache policy %r; pick one of: %s"
                % (self.cache_policy, ", ".join(sorted(CACHE_POLICIES)))
            )
        if self.admission_budget_bytes is not None and self.admission_budget_bytes < 0:
            raise ValueError("admission_budget_bytes must be non-negative")
        if self.cache_class_budgets is not None:
            from repro.service.request import Priority

            normalized = {}
            for name, cap in self.cache_class_budgets.items():
                rank = Priority.parse(name)
                if int(cap) < 0:
                    raise ValueError(
                        "cache_class_budgets[%r] must be non-negative" % (name,)
                    )
                normalized[rank] = int(cap)
            object.__setattr__(self, "cache_class_budgets", normalized)
        if self.devices < 1:
            raise ValueError("devices must be at least 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (omit it for no deadline)")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown < 1:
            raise ValueError("breaker_cooldown must be at least 1")
        if isinstance(self.faults, str):
            object.__setattr__(
                self, "faults", FaultSchedule.parse(self.faults, seed=self.chaos_seed)
            )
        if self.tracing is True:
            object.__setattr__(self, "tracing", TracingConfig())
        elif self.tracing is False:
            object.__setattr__(self, "tracing", None)
        elif self.tracing is not None and not isinstance(self.tracing, TracingConfig):
            raise ValueError("tracing must be None, a bool, or a TracingConfig")

    def system_kwargs(self) -> dict:
        """Constructor kwargs for ``make_system`` (cache + backend knobs)."""
        kwargs: dict = {}
        if self.cache_policy != "static-prefix":
            kwargs["cache_policy"] = self.cache_policy
        if self.cache_budget is not None:
            kwargs["cache_budget"] = self.cache_budget
        if self.backend is not None:
            kwargs["backend"] = self.backend
        if self.max_iterations is not None:
            kwargs["max_iterations"] = self.max_iterations
        return kwargs
