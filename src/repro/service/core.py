"""The :class:`GraphService` facade: one warmed session serving typed queries.

A service owns exactly one system instance — hence one warmed
:class:`~repro.runtime.context.ExecutionContext` (partitioning, shards,
schedulers) and one device-memory cache — per (graph, config), and every
query submitted to it executes on that session.  Requests flow::

    QueryRequest ── submit() ──▶ admission control ──▶ QUEUED ─┐
                         │                                     │ drain()
                         └──────────▶ REJECTED                 ▼
                                                    priority-scheduled wave
                                                     (QueryBatchRunner)
                                                               │
    result() ◀─────────────── DONE ◀───────────────────────────┘

``drain`` serves the queue in *waves*: the admission controller splits
off as many queued requests as fit its byte budget, the batch runner
co-schedules them with merged task lists ordered by priority class, and
each completed request records its simulated latency (queue wait plus
execution) and SLA outcome.  Submitting is cheap and never executes;
polling a handle never executes; ``drain`` (or ``handle.result()``) does
the work.

Per-query *values* are bitwise identical to standalone ``system.run``
calls — the scheduler shares transfer state, never semantics — which is
what lets ``Workload.run``/``run_batch``/``run_sequential`` and the CLI
be thin adapters over this class (asserted across the full
algorithm × system grid in ``tests/test_service.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms import make_algorithm
from repro.algorithms.base import VertexProgram
from repro.faults import CircuitBreaker, FaultInjector
from repro.metrics.results import BatchResult, RunResult
from repro.obs import MetricsRegistry, make_tracer, write_chrome_trace
from repro.runtime.batch import QueryBatchRunner
from repro.service.admission import AdmissionController
from repro.service.config import ServiceConfig
from repro.service.request import (
    Priority,
    QueryHandle,
    QueryRequest,
    RequestStatus,
)
from repro.service.stats import ServiceStats, register_service_metrics
from repro.systems import make_system

__all__ = ["GraphService"]


class GraphService:
    """Session-oriented serving API over one (graph, config) pair.

    Parameters
    ----------
    config:
        The :class:`ServiceConfig` describing platform and serving
        policies (defaults throughout when omitted).
    system:
        A prebuilt :class:`~repro.systems.base.GraphSystem` to serve on.
        When omitted the service builds its own from ``config`` (and
        ``graph``/``hardware`` when given): the dataset stand-in is
        loaded weighted so every algorithm can run against it — except
        CC, whose weakly-connected semantics need a symmetrized graph
        (submit a CC request only to a service built over one; a
        directed graph is refused at submit).
    graph / hardware:
        Optional prebuilt graph and
        :class:`~repro.sim.config.HardwareConfig` for the self-built
        path.
    """

    def __init__(self, config: ServiceConfig | None = None, *, system=None, graph=None, hardware=None):
        self.config = config or ServiceConfig()
        if system is None:
            system = self._build_system(self.config, graph, hardware)
        self.system = system
        self.runner = QueryBatchRunner(system)
        self.admission = AdmissionController(
            system,
            budget_bytes=self.config.admission_budget_bytes,
            policy=self.config.admission_policy,
        )
        self._handles: list[QueryHandle] = []
        self._queue: list[QueryHandle] = []
        self._batches: list[BatchResult] = []
        self._next_request_id = 0
        self._waves_served = 0
        #: Simulated clock: accumulated makespan of the served waves
        #: (plus idle jumps to the next arrival under event-driven
        #: serving).
        self._clock_s = 0.0
        if self.config.cache_class_budgets:
            cache = self.system.context.cache
            if cache is not None:
                cache.set_class_budgets(
                    {
                        float(int(rank)): cap
                        for rank, cap in self.config.cache_class_budgets.items()
                    }
                )
        #: Sheds queued BULK work after repeated faulty waves.
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        #: One injector for the service lifetime (``@k`` fault offsets
        #: count super-iterations across all waves); ``None`` fault-free.
        self._injector = (
            FaultInjector(self.config.faults, retry=self.config.retry)
            if self.config.faults is not None
            else None
        )
        #: Span tracer (:mod:`repro.obs`): the shared no-op unless
        #: ``config.tracing`` asks for recording.  Installed on the
        #: execution context so the runtime layers see the same sink.
        self.tracer = make_tracer(self.config.tracing)
        if self.tracer.enabled:
            self.system.context.tracer = self.tracer
        #: Lazily computed: whether the service graph is symmetric
        #: (gates programs with ``needs_symmetric``, e.g. CC).
        self._graph_symmetric: bool | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _build_system(config: ServiceConfig, graph, hardware):
        from repro.bench.workloads import build_workload, scaled_config_for
        from repro.sim.config import GPU_PRESETS, gtx_2080ti

        if graph is None:
            # The SSSP cell loads the dataset weighted, so one graph
            # serves every algorithm except CC (gated at submit: its
            # weakly-connected semantics need a symmetrized graph).
            workload = build_workload(
                config.dataset,
                "sssp",
                scale=config.scale,
                preset=config.gpu,
                num_devices=config.devices,
                interconnect=config.interconnect,
            )
            graph, hardware = workload.graph, workload.config
        elif hardware is None:
            preset = GPU_PRESETS[config.gpu] if config.gpu else None
            if config.devices != 1 or config.interconnect is not None:
                preset = (preset or gtx_2080ti()).with_devices(config.devices, config.interconnect)
            hardware = scaled_config_for(graph, None, preset)
        return make_system(config.system, graph, config=hardware, **config.system_kwargs())

    @classmethod
    def for_workload(
        cls, workload, system_name: str, config: ServiceConfig | None = None, **system_kwargs
    ) -> "GraphService":
        """A service over one benchmark workload's graph and hardware.

        This is the constructor the ``Workload``/CLI adapters use: the
        system is built exactly as the historical entry points built it
        (same graph, same scaled hardware config, same kwargs), so
        results stay bitwise compatible.
        """
        workload.check_multi_device(system_name)
        system = make_system(
            system_name, workload.graph, config=workload.config, **system_kwargs
        )
        if config is None:
            config = ServiceConfig(system=system_name.lower(), dataset=workload.dataset)
        return cls(config, system=system)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The graph every query of this service runs against."""
        return self.system.graph

    @property
    def batches(self) -> list[BatchResult]:
        """The served waves' batch records, in serving order."""
        return list(self._batches)

    # ------------------------------------------------------------------
    # Lifecycle: submit -> poll -> drain -> result
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> QueryHandle:
        """Validate, estimate and admit (or reject) one request.

        Never executes anything.  Invalid requests — unknown algorithm,
        a source on a sourceless program, a program the service's graph
        cannot run — raise immediately; admission refusals return a
        ``REJECTED`` handle instead (the request was well-formed, the
        service is protecting itself).
        """
        return self._submit_resolved(request, make_algorithm(request.algorithm.lower()))

    def submit_program(
        self,
        program: VertexProgram,
        source: int | None = None,
        *,
        priority: Priority = Priority.STANDARD,
        deadline_s: float | None = None,
        label: str | None = None,
    ) -> QueryHandle:
        """Submit a pre-built vertex program (the ``Workload`` adapters' path).

        Equivalent to :meth:`submit` with the program's request, minus
        the registry lookup — callers that already hold a program object
        (benchmark workloads, the CLI) reuse it unchanged.
        """
        request = QueryRequest(
            algorithm=program.name.lower(),
            source=source,
            priority=priority,
            deadline_s=deadline_s,
            label=label,
        )
        return self._submit_resolved(request, program)

    def _check_program(self, program: VertexProgram) -> None:
        """Reject programs this service's graph cannot serve.

        Shared with the cluster tier, which must validate *before*
        routing (an invalid request must raise identically no matter
        which replica it would have landed on).
        """
        program.check_graph(self.graph)
        if program.needs_symmetric and not self._symmetric_graph():
            # The evaluation grid symmetrizes the graph for CC (weakly
            # connected components); serving it on a directed graph would
            # silently return different labels than every other entry
            # point, so refuse instead.
            raise ValueError(
                "%s assumes a symmetric graph, but this service's graph is "
                "directed; build the service with graph.symmetrize()" % program.name
            )

    def _submit_resolved(self, request: QueryRequest, program: VertexProgram) -> QueryHandle:
        self._check_program(program)
        source = self._resolve_source(program, request.source)
        estimate = self.admission.estimate_request_bytes(program, source)
        handle = QueryHandle(
            request=request,
            request_id=self._next_request_id,
            estimated_bytes=estimate,
            _service=self,
            _query=(program, source),
        )
        self._next_request_id += 1
        reason = self.admission.decide(estimate)
        if reason is not None:
            handle.status = RequestStatus.REJECTED
            handle.reject_reason = reason
            if self.tracer.enabled and self.tracer.trace_query(handle.request_id):
                self.tracer.instant(
                    "query", "rejected", track=self._track_of(handle),
                    t=handle.arrival_s, reason=reason,
                )
        else:
            self._queue.append(handle)
        self._handles.append(handle)
        return handle

    def submit_many(self, requests: Sequence[QueryRequest]) -> list[QueryHandle]:
        """Submit several requests; one handle each, in order."""
        return [self.submit(request) for request in requests]

    def _symmetric_graph(self) -> bool:
        """Whether every edge has its reverse (computed once, cached)."""
        if self._graph_symmetric is None:
            import numpy as np
            from scipy.sparse import csr_matrix

            graph = self.graph
            adjacency = csr_matrix(
                (
                    np.ones(graph.num_edges, dtype=np.int64),
                    graph.column_index,
                    graph.row_offset,
                ),
                shape=(graph.num_vertices, graph.num_vertices),
            )
            self._graph_symmetric = (adjacency != adjacency.T).nnz == 0
        return self._graph_symmetric

    def _resolve_source(self, program: VertexProgram, source: int | None) -> int | None:
        if not program.needs_source:
            if source is not None:
                raise ValueError("algorithm %r takes no traversal source" % program.name)
            return None
        if source is None:
            from repro.bench.workloads import pick_source

            return pick_source(self.graph)
        return program.validate_source(self.graph, source)

    def drain(self) -> list[BatchResult]:
        """Serve every queued request; returns the waves' batch records.

        Each wave is one priority-scheduled batch on the warmed session:
        the admission controller splits off what fits its budget (in
        priority order under ``priority`` scheduling, submission order
        under ``fifo``), the batch runner co-schedules it, and each
        request's latency runs from its arrival timestamp to its
        completion in the service clock — queue wait included, which is
        what the deadline SLAs are checked against.

        With arrival-stamped requests the queue drains *event-driven*:
        a wave forms only over requests that have arrived by the
        current clock (the clock jumps forward over idle gaps), and —
        with :attr:`ServiceConfig.preemption` — a running BULK query
        yields at super-iteration boundaries to INTERACTIVE work that
        arrived mid-wave, resuming from its checkpoint in a later wave.
        With every arrival at t=0 and preemption off this reduces
        bitwise to the historical all-at-once wave behaviour.
        """
        served: list[BatchResult] = []
        while True:
            batch = self.step()
            if batch is None:
                return served
            served.append(batch)

    def step(self) -> BatchResult | None:
        """Form and serve the next scheduling wave (``None`` when idle).

        One wave: breaker shedding, arrival-gated wave formation,
        admission, execution (with preemption/resume when configured),
        then latency/SLA bookkeeping.  This is the granularity the
        replay harness pumps — it lets a caller interleave submissions
        with serving instead of draining to exhaustion.
        """
        if self.breaker.open:
            self._shed_bulk()
        if not self._queue:
            return None
        arrived = [handle for handle in self._queue if handle.ready_s <= self._clock_s]
        if not arrived:
            # Idle period: jump the clock to the next arrival (or, for a
            # handle whose checkpoint is still in flight over the
            # network, to the moment the shipment lands).
            self._clock_s = min(handle.ready_s for handle in self._queue)
            arrived = [
                handle for handle in self._queue if handle.ready_s <= self._clock_s
            ]
        prioritized = self.config.scheduling == "priority"
        if prioritized:
            arrived.sort(key=lambda handle: (handle.request.priority, handle.request_id))
        wave = self.admission.take_wave(arrived)
        taken = {id(handle) for handle in wave}
        self._queue = [handle for handle in self._queue if id(handle) not in taken]
        wave_start = self._clock_s
        wave_index = self._waves_served
        self._waves_served += 1
        for handle in wave:
            handle.status = RequestStatus.RUNNING
            handle.wave = wave_index
            if handle.queue_wait_s is None:
                handle.queue_wait_s = wave_start - handle.arrival_s
        queries = [handle._query for handle in wave]
        priorities = (
            [int(handle.request.priority) for handle in wave] if prioritized else None
        )
        deadlines = self._wave_deadlines(wave)
        preempt_flags = None
        preempt_check = None
        if self.config.preemption:
            flags = [handle.request.priority is Priority.BULK for handle in wave]
            if any(flags):
                preempt_flags = flags
                preempt_check = self._preemption_check(wave_start)
        resume = [handle._checkpoint for handle in wave]
        if not any(checkpoint is not None for checkpoint in resume):
            resume = None
        tracks = self._trace_wave(wave, wave_start, wave_index)
        batch = self.runner.run(
            queries,
            priorities=priorities,
            injector=self._injector,
            deadlines=deadlines,
            checkpoint_interval=self.config.checkpoint_interval,
            preemptible=preempt_flags,
            should_preempt=preempt_check,
            resume=resume,
            trace_base=wave_start,
            trace_tracks=tracks,
        )
        if tracks is not None:
            self.tracer.span(
                "wave", "wave%d" % wave_index, "service",
                wave_start, wave_start + batch.makespan,
                queries=len(wave), super_iterations=batch.super_iterations,
            )
        suspended = batch.extra.get("suspended", {})
        completed = []
        for position, (handle, result, latency) in enumerate(
            zip(wave, batch.results, batch.latencies)
        ):
            if position in suspended:
                # Preempted: back into the queue with its checkpoint;
                # its admission reservation stays held — the query is
                # still in the system.
                handle._checkpoint = suspended[position]
                handle.preemptions += 1
                handle.status = RequestStatus.QUEUED
                self._queue.append(handle)
                continue
            handle._checkpoint = None
            handle.latency_s = wave_start + latency - handle.arrival_s
            handle._result = result
            result.extra["service_latency_s"] = handle.latency_s
            fault_status = result.extra.get("fault_status")
            if fault_status == "failed":
                handle.status = RequestStatus.FAILED
                handle.fault_cause = result.extra.get("fault_cause")
                handle.attempts = int(result.extra.get("fault_attempts", 0))
            elif fault_status == "cancelled":
                handle.status = RequestStatus.CANCELLED
                handle.fault_cause = result.extra.get("fault_cause")
                handle.deadline_met = False
            else:
                handle.status = RequestStatus.DONE
                deadline = self._deadline_of(handle)
                if deadline is not None:
                    handle.deadline_met = handle.latency_s <= deadline
            if tracks is not None and tracks[position] is not None:
                self.tracer.instant(
                    "query", handle.status.name.lower(), track=tracks[position],
                    t=handle.arrival_s + handle.latency_s,
                    latency_s=handle.latency_s,
                    queue_wait_s=handle.queue_wait_s or 0.0,
                    preemptions=handle.preemptions, wave=wave_index,
                )
            completed.append(handle)
        self._clock_s += batch.makespan
        self.admission.release(completed)
        self.breaker.record(batch.faults_injected)
        self._batches.append(batch)
        return batch

    # ------------------------------------------------------------------
    # Tracing (see repro.obs)
    # ------------------------------------------------------------------
    @staticmethod
    def _track_of(handle: QueryHandle) -> str:
        """The query's trace lane (its label, or ``q<request_id>``)."""
        return "query:%s" % (handle.request.label or "q%d" % handle.request_id)

    def _trace_wave(self, wave, wave_start: float, wave_index: int):
        """Open the wave's query lanes; returns the per-query track list.

        For every *sampled* query the lane gets its wait tile — ``queued``
        from arrival (with an ``admitted`` instant) on the first wave,
        ``suspended`` from where the preemption capture ended on resume
        waves — closed exactly at ``wave_start``, so the lane's tiles keep
        summing to the handle's eventual service latency.  Returns
        ``None`` when tracing is off.
        """
        if not self.tracer.enabled:
            return None
        tracer = self.tracer
        tracer.set_clock(wave_start)
        tracks: list[str | None] = []
        for handle in wave:
            if not tracer.trace_query(handle.request_id):
                tracks.append(None)
                continue
            track = self._track_of(handle)
            tracks.append(track)
            if handle.preemptions:
                name = "suspended"
            else:
                name = "queued"
                tracer.instant(
                    "query", "admitted", track=track, t=handle.arrival_s,
                    request_id=handle.request_id,
                    algorithm=handle.request.algorithm,
                    priority=handle.request.priority.name.lower(),
                )
            start = tracer.cursor(track, handle.arrival_s)
            if wave_start > start:
                tracer.span("query", name, track, start, wave_start, wave=wave_index)
        return tracks

    def metrics(self) -> MetricsRegistry:
        """One registry over every live counter source of the service.

        Assembled on demand from :meth:`stats`, the device cache, the
        fault injector, the un-harvested batch records and the tracer —
        the snapshot is deterministic (sorted names, fixed histogram
        bounds), so CI can diff it across runs.
        """
        registry = MetricsRegistry()
        register_service_metrics(registry, self.stats())
        cache = self.system.context.cache
        if cache is not None:
            registry.merge_counters("cache", cache.counters())
            registry.count("cache.invalidated_bytes", cache.invalidated_bytes)
            registry.gauge("cache.resident_bytes", cache.resident_bytes)
            registry.gauge("cache.policy", cache.policy_name)
        if self._injector is not None:
            registry.count("faults.injected", self._injector.faults_injected)
            registry.count("faults.retries", self._injector.retries)
            registry.gauge("faults.retry_time_s", self._injector.retry_time_s)
        for batch in self._batches:
            registry.count("batch.amortized_bytes", batch.amortized_bytes)
            registry.count("batch.super_iterations", batch.super_iterations)
        if self.tracer.enabled:
            registry.count("trace.spans", self.tracer.total_spans)
            registry.count("trace.dropped_spans", self.tracer.dropped_spans)
        return registry

    def observability(self) -> dict:
        """The full machine-readable picture: stats ∪ metrics ∪ health."""
        payload = self.stats().as_dict()
        payload["metrics"] = self.metrics().snapshot()
        payload["device_health"] = self.device_health()
        return payload

    def export_trace(self, path):
        """Write the recorded spans (+ metrics snapshot) as a Chrome trace.

        Requires ``config.tracing``; the file loads in Perfetto and
        feeds ``repro-graph inspect``.
        """
        if not self.tracer.enabled:
            raise ValueError(
                "this service does not trace; build it with ServiceConfig(tracing=True)"
            )
        return write_chrome_trace(
            path,
            self.tracer.spans(),
            metrics=self.metrics().snapshot(),
            dropped=self.tracer.dropped_spans,
        )

    def _preemption_check(self, wave_start: float):
        """Boundary predicate: has INTERACTIVE work arrived by now?

        Consulted by the batch runner at every super-iteration boundary
        with the wave's elapsed makespan; queued INTERACTIVE requests
        whose arrival timestamp has passed make the wave's BULK queries
        yield.  (An INTERACTIVE request already arrived at wave start is
        never still queued while BULK runs — it sorts ahead of every
        BULK request and the admission head always joins — so this only
        fires for genuinely new arrivals.)
        """

        def should_preempt(elapsed: float) -> bool:
            now = wave_start + elapsed
            return any(
                handle.request.priority is Priority.INTERACTIVE
                and handle.arrival_s <= now
                for handle in self._queue
            )

        return should_preempt

    def harvest(self) -> tuple[list[QueryHandle], list[BatchResult]]:
        """Detach finished handles and served batch records.

        Streaming replay over 10^5-10^6 queries cannot keep every handle
        (each DONE result holds per-vertex value arrays): calling this
        after each :meth:`step` hands the finished handles and batches to
        the caller and drops the service's references, keeping memory
        bounded by the in-flight queue.  Queued/running handles stay.
        After a harvest, :meth:`stats` only covers what has not been
        harvested (the clock and wave counter remain cumulative).
        """
        finished = [handle for handle in self._handles if handle.done]
        if finished:
            self._handles = [handle for handle in self._handles if not handle.done]
        batches = self._batches
        self._batches = []
        return finished, batches

    def _deadline_of(self, handle: QueryHandle) -> float | None:
        """The request's deadline, falling back to the config default."""
        if handle.request.deadline_s is not None:
            return handle.request.deadline_s
        return self.config.deadline_s

    def _wave_deadlines(self, wave: Sequence[QueryHandle]) -> list[float | None] | None:
        """Per-query in-wave latency budgets for runtime cancellation.

        A handle's deadline is measured on its service latency (queue
        wait included), so the budget handed to the runner is what
        remains after the clock already spent waiting.  ``None`` unless
        deadline enforcement is on and some handle carries a deadline.
        """
        if not self.config.enforce_deadlines:
            return None
        deadlines = [
            None
            if deadline is None
            else deadline - (self._clock_s - handle.arrival_s)
            for handle, deadline in (
                (handle, self._deadline_of(handle)) for handle in wave
            )
        ]
        if all(deadline is None for deadline in deadlines):
            return None
        return deadlines

    def _shed_bulk(self) -> None:
        """Fail queued BULK requests while the circuit breaker is open.

        Typed failure, never a silent drop: the handles move to FAILED
        with the breaker named as the cause, and their admission
        reservations are returned to the budget.
        """
        shed = [
            handle
            for handle in self._queue
            if handle.request.priority is Priority.BULK
        ]
        if not shed:
            return
        self._queue = [
            handle
            for handle in self._queue
            if handle.request.priority is not Priority.BULK
        ]
        for handle in shed:
            handle.status = RequestStatus.FAILED
            handle.fault_cause = (
                "circuit breaker open after %d consecutive faulty wave(s); "
                "BULK work shed" % self.breaker.threshold
            )
        self.admission.release(shed)

    def device_health(self) -> dict[str, object]:
        """Health view of the serving session's devices.

        Reports how many of the configured devices survive, which were
        lost (indices as numbered at loss time — survivors renumber
        densely after each loss), per-device fault counts from the
        injector, and whether execution degraded to the host.
        """
        context = self.system.context
        return {
            "configured": context.config.num_devices,
            "alive": 0 if context.host_fallback else context.num_devices,
            "lost": list(context.lost_devices),
            "host_fallback": context.host_fallback,
            "faults_by_device": dict(
                self._injector.device_faults if self._injector is not None else {}
            ),
            "breaker_open": self.breaker.open,
            "breaker_trips": self.breaker.trips,
        }

    def run(self, request: QueryRequest) -> RunResult:
        """Submit one request and serve the queue to completion.

        The single-query convenience the ``Workload.run``/CLI adapters
        sit on; raises :class:`~repro.service.request.RequestRejected`
        when admission control refuses the request.
        """
        handle = self.submit(request)
        return handle.result()

    # ------------------------------------------------------------------
    # Baselines and statistics
    # ------------------------------------------------------------------
    def baseline_sequential(
        self, queries: Sequence[tuple[VertexProgram, int | None]]
    ) -> list[RunResult]:
        """The unbatched baseline: each query run cold, back to back.

        What a serving layer without batching would do; used by the CLI
        ``batch`` comparison and the scheduling benchmarks.
        """
        return [self.system.run(program, source=source) for program, source in queries]

    def stats(self) -> ServiceStats:
        """Aggregate admission/latency/SLA statistics so far."""
        stats = ServiceStats(
            submitted=len(self._handles),
            queued=len(self._queue),
            waves=self._waves_served,
            makespan_s=self._clock_s,
            total_transfer_bytes=int(
                sum(batch.total_transfer_bytes for batch in self._batches)
            ),
        )
        for batch in self._batches:
            stats.faults_injected += batch.faults_injected
            stats.retries += batch.retries
            stats.retry_time_s += batch.retry_time_s
            stats.checkpoint_time_s += batch.checkpoint_time_s
            stats.recovery_time_s += batch.recovery_time_s
        stats.breaker_open = self.breaker.open
        stats.breaker_trips = self.breaker.trips
        for handle in self._handles:
            if handle.status is RequestStatus.REJECTED:
                stats.rejected += 1
                continue
            stats.admitted += 1
            if handle.status is RequestStatus.FAILED:
                stats.failed += 1
                continue
            if handle.status is RequestStatus.CANCELLED:
                stats.cancelled += 1
                stats.deadline_missed += 1
                continue
            stats.preemptions += handle.preemptions
            if handle.status is not RequestStatus.DONE:
                continue
            stats.completed += 1
            stats.latencies_by_class.setdefault(handle.request.priority, []).append(
                handle.latency_s
            )
            if handle.deadline_met is True:
                stats.deadline_met += 1
            elif handle.deadline_met is False:
                stats.deadline_missed += 1
        return stats
