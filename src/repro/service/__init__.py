"""Session-oriented serving API: typed requests, priorities/SLAs, admission.

This package is the public entry point for running queries — the API
spine the scaling features (priority scheduling, admission control,
future async pipelining and multi-backend execution) plug into:

* :class:`~repro.service.core.GraphService` — one warmed execution
  session per (graph, config), serving typed requests;
* :class:`~repro.service.request.QueryRequest` /
  :class:`~repro.service.request.QueryHandle` — the submit → poll →
  result lifecycle, with per-request :class:`~repro.service.request.Priority`
  classes and optional latency deadlines;
* :class:`~repro.service.config.ServiceConfig` — device, cache,
  interconnect and serving knobs as one dataclass;
* :class:`~repro.service.admission.AdmissionController` — bounded
  estimated bytes in flight per scheduling wave;
* :class:`~repro.service.stats.ServiceStats` — admission counters,
  per-class latency percentiles, SLA attainment.

The historical entry points (``Workload.run``/``run_batch``/
``run_sequential`` and the CLI subcommands) are thin adapters over this
package.
"""

from repro.obs import TracingConfig
from repro.service.admission import AdmissionController
from repro.service.config import ServiceConfig
from repro.service.core import GraphService
from repro.service.replay import ReplayHarness, ReplayReport
from repro.service.request import (
    Priority,
    QueryFailed,
    QueryHandle,
    QueryRequest,
    RequestRejected,
    RequestStatus,
)
from repro.service.stats import ServiceStats
from repro.service.trace import (
    ARRIVAL_PROCESSES,
    arrival_times,
    iter_arrival_times,
    load_trace_file,
    synthetic_mixed_trace,
    timed_mixed_trace,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "arrival_times",
    "iter_arrival_times",
    "load_trace_file",
    "synthetic_mixed_trace",
    "timed_mixed_trace",
    "AdmissionController",
    "GraphService",
    "Priority",
    "QueryFailed",
    "QueryHandle",
    "QueryRequest",
    "ReplayHarness",
    "ReplayReport",
    "RequestRejected",
    "RequestStatus",
    "ServiceConfig",
    "ServiceStats",
    "TracingConfig",
]
