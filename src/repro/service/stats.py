"""Aggregate serving statistics: admission counts, latency percentiles, SLAs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.percentiles import percentile
from repro.service.request import Priority

__all__ = ["ServiceStats", "register_service_metrics"]

#: The counter-valued fields of one stats snapshot, in emission order.
COUNTER_FIELDS = (
    "submitted", "admitted", "rejected", "completed", "failed",
    "cancelled", "queued", "waves", "preemptions", "deadline_met",
    "deadline_missed", "faults_injected", "retries", "breaker_trips",
    "total_transfer_bytes",
)


def register_service_metrics(registry, stats: "ServiceStats") -> None:
    """Emit one stats snapshot as ``service.*`` rows of ``registry``.

    Shared by :meth:`~repro.service.GraphService.metrics` and the
    cluster tier's aggregate registry, so the single-host and cluster
    ``--stats-json`` payloads carry the same ``service.*`` vocabulary.
    """
    for name in COUNTER_FIELDS:
        registry.count("service.%s" % name, getattr(stats, name))
    registry.gauge("service.makespan_s", stats.makespan_s)
    registry.gauge("service.queries_per_second", stats.queries_per_second)
    registry.gauge("service.deadline_attainment", stats.deadline_attainment)
    registry.gauge("service.breaker_open", stats.breaker_open)
    registry.gauge("service.retry_time_s", stats.retry_time_s)
    registry.gauge("service.checkpoint_time_s", stats.checkpoint_time_s)
    registry.gauge("service.recovery_time_s", stats.recovery_time_s)
    for priority, latencies in sorted(stats.latencies_by_class.items()):
        name = "service.latency_s.%s" % priority.name.lower()
        for value in latencies:
            registry.observe(name, value)


@dataclass
class ServiceStats:
    """One snapshot of a :class:`~repro.service.GraphService`'s counters.

    Latencies are grouped per priority class so the multi-tenant
    questions — "what's the p95 of my point lookups while the analytical
    tenant is hammering the service?" — read straight off the record.
    """

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    #: Admitted requests that ended in a terminal fault (permanent
    #: transfer failure or circuit-breaker shed).
    failed: int = 0
    #: Admitted requests cancelled by deadline enforcement.
    cancelled: int = 0
    #: Admitted requests still waiting for a scheduling wave.
    queued: int = 0
    #: Scheduling waves served so far.
    waves: int = 0
    #: Total super-iteration-boundary preemptions of tracked handles
    #: (zero unless :attr:`ServiceConfig.preemption` is on).
    preemptions: int = 0
    #: Simulated seconds of every served wave, end to end.
    makespan_s: float = 0.0
    total_transfer_bytes: int = 0
    deadline_met: int = 0
    deadline_missed: int = 0
    latencies_by_class: dict[Priority, list[float]] = field(default_factory=dict)
    # --- fault/recovery accounting (all zero on fault-free services) ---
    faults_injected: int = 0
    retries: int = 0
    retry_time_s: float = 0.0
    checkpoint_time_s: float = 0.0
    recovery_time_s: float = 0.0
    #: Whether the circuit breaker is currently shedding BULK work.
    breaker_open: bool = False
    #: How many times the breaker tripped so far.
    breaker_trips: int = 0

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def queries_per_second(self) -> float:
        """Completed queries over the served makespan (0 when idle)."""
        if self.makespan_s <= 0.0:
            return 0.0
        return self.completed / self.makespan_s

    @property
    def deadline_attainment(self) -> float:
        """Fraction of deadline-carrying requests that met their SLA."""
        carrying = self.deadline_met + self.deadline_missed
        if carrying == 0:
            return 1.0
        return self.deadline_met / carrying

    def class_latencies(self, priority: Priority) -> list[float]:
        """Completed-request latencies of one priority class."""
        return self.latencies_by_class.get(Priority.parse(priority), [])

    def latency_percentile(self, priority: Priority, q: float) -> float:
        """A latency percentile (e.g. ``95``) of one class; 0.0 when empty."""
        return percentile(self.class_latencies(priority), q)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def class_rows(self) -> list[dict[str, object]]:
        """Per-class latency table rows (for ``format_table``)."""
        rows = []
        for priority in Priority:
            latencies = self.class_latencies(priority)
            if not latencies:
                continue
            rows.append(
                {
                    "class": priority.name.lower(),
                    "queries": len(latencies),
                    "p50 (s)": round(self.latency_percentile(priority, 50), 6),
                    "p95 (s)": round(self.latency_percentile(priority, 95), 6),
                    "p99 (s)": round(self.latency_percentile(priority, 99), 6),
                    "max (s)": round(max(latencies), 6),
                }
            )
        return rows

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly dump (benchmark artifacts, trace reports)."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "queued": self.queued,
            "waves": self.waves,
            "preemptions": self.preemptions,
            "makespan_s": self.makespan_s,
            "queries_per_second": self.queries_per_second,
            "total_transfer_bytes": self.total_transfer_bytes,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "deadline_attainment": self.deadline_attainment,
            "latencies_by_class": {
                priority.name.lower(): list(latencies)
                for priority, latencies in self.latencies_by_class.items()
            },
            "classes": [
                {
                    "class": priority.name.lower(),
                    "queries": len(latencies),
                    "p50_s": self.latency_percentile(priority, 50),
                    "p95_s": self.latency_percentile(priority, 95),
                    "p99_s": self.latency_percentile(priority, 99),
                    "max_s": max(latencies),
                }
                for priority in Priority
                for latencies in [self.class_latencies(priority)]
                if latencies
            ],
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "retry_time_s": self.retry_time_s,
            "checkpoint_time_s": self.checkpoint_time_s,
            "recovery_time_s": self.recovery_time_s,
            "breaker_open": self.breaker_open,
            "breaker_trips": self.breaker_trips,
        }
