"""Streaming trace replay: 10^5-10^6 queries through one service.

The harness pumps an arrival-ordered request stream through a
:class:`~repro.service.GraphService` without ever materializing the
whole trace or its results:

* requests are submitted from the iterator with a bounded *lookahead*
  (enough in-flight work for waves to batch and for the preemption
  check to see imminent arrivals, never the full trace);
* after every scheduling wave the finished handles are
  :meth:`~repro.service.GraphService.harvest`-ed, their latencies and
  SLA outcomes folded into running per-class accumulators, and their
  per-vertex result arrays dropped — memory stays bounded by the
  lookahead window, not the trace length;
* a seeded reservoir of completed queries is kept aside and re-run solo
  after the replay, asserting the serving path returned bitwise the
  values a standalone ``system.run`` produces.

The :class:`ReplayReport` this emits (per-class p50/p95/p99, SLA
attainment, rejection breakdown, simulated queries/s) is what
``benchmarks/bench_replay.py`` snapshots and what the CI replay gate
compares against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.metrics.percentiles import percentile
from repro.service.core import GraphService
from repro.service.request import Priority, QueryRequest, RequestStatus

__all__ = ["ReplayHarness", "ReplayReport"]


@dataclass
class _ClassAccumulator:
    """Running per-priority-class latency/SLA tallies."""

    latencies: list[float] = field(default_factory=list)
    queue_waits: list[float] = field(default_factory=list)
    sla_met: int = 0
    sla_missed: int = 0

    def row(self) -> dict[str, object]:
        latencies = np.asarray(self.latencies, dtype=np.float64)
        carrying = self.sla_met + self.sla_missed
        return {
            "count": int(latencies.size),
            "p50_s": percentile(latencies, 50),
            "p95_s": percentile(latencies, 95),
            "p99_s": percentile(latencies, 99),
            "mean_s": float(latencies.mean()) if latencies.size else 0.0,
            "max_s": float(latencies.max()) if latencies.size else 0.0,
            "mean_wait_s": float(np.mean(self.queue_waits)) if self.queue_waits else 0.0,
            "sla_met": self.sla_met,
            "sla_missed": self.sla_missed,
            "sla_attainment": (self.sla_met / carrying) if carrying else 1.0,
        }


@dataclass
class ReplayReport:
    """What one trace replay measured."""

    #: Requests drawn from the trace (= submitted to the service).
    queries: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    #: Scheduling waves the replay served.
    waves: int = 0
    #: Super-iteration-boundary preemptions, and queries preempted >= once.
    preemptions: int = 0
    preempted_queries: int = 0
    #: Simulated end-to-end serving time (arrival of the first request
    #: to completion of the last wave).
    makespan_s: float = 0.0
    #: Latest simulated completion time of a BULK query (0 when none).
    bulk_makespan_s: float = 0.0
    #: Wall-clock seconds the replay itself took.
    wall_s: float = 0.0
    #: Per-class latency/SLA rows keyed by class name.
    classes: dict[str, dict[str, object]] = field(default_factory=dict)
    #: Rejection counts keyed by class name.
    rejections_by_class: dict[str, int] = field(default_factory=dict)
    #: Bitwise verification outcome (``None`` when no sample was drawn).
    verified_bitwise: bool | None = None
    verified_queries: int = 0

    @property
    def queries_per_second(self) -> float:
        """Completed queries over the simulated makespan."""
        if self.makespan_s <= 0.0:
            return 0.0
        return self.completed / self.makespan_s

    def sla_attainment(self, priority: Priority | str) -> float:
        row = self.classes.get(Priority.parse(priority).name.lower())
        return float(row["sla_attainment"]) if row else 1.0

    def latency_percentile(self, priority: Priority | str, percentile: int) -> float:
        row = self.classes.get(Priority.parse(priority).name.lower())
        return float(row["p%d_s" % percentile]) if row else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly dump (benchmark artifacts, CI gates)."""
        return {
            "queries": self.queries,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "waves": self.waves,
            "preemptions": self.preemptions,
            "preempted_queries": self.preempted_queries,
            "makespan_s": self.makespan_s,
            "bulk_makespan_s": self.bulk_makespan_s,
            "queries_per_second": self.queries_per_second,
            "wall_s": self.wall_s,
            "classes": self.classes,
            "rejections_by_class": self.rejections_by_class,
            "verified_bitwise": self.verified_bitwise,
            "verified_queries": self.verified_queries,
        }


class ReplayHarness:
    """Pump an arrival-ordered request stream through one service.

    Parameters
    ----------
    service:
        The (warmed) service to replay against.  Its config decides the
        serving semantics — scheduling, admission, preemption.
    lookahead:
        Maximum in-flight (queued or running) requests before the
        harness pauses submission and serves a wave.  Bounds memory and
        is also the horizon the preemption check can see: an arrival
        beyond the lookahead window cannot preempt a running wave.
    verify_sample:
        Size of the seeded reservoir of completed queries re-run solo
        after the replay for the bitwise-equality check (0 disables).
    seed:
        Seed of the reservoir-sampling stream (not of the trace).
    trace_sample:
        When the service traces (``ServiceConfig(tracing=...)``), the
        fraction of queries whose per-query spans are recorded — a
        deterministic hash of the request id, so 10^5-query replays keep
        the span buffer bounded while still tracing a representative
        seeded sample.  ``None`` leaves the tracer's own sampling alone.
    """

    def __init__(
        self,
        service: GraphService,
        *,
        lookahead: int = 512,
        verify_sample: int = 0,
        seed: int = 0,
        trace_sample: float | None = None,
    ):
        if lookahead < 1:
            raise ValueError("lookahead must be at least 1")
        if verify_sample < 0:
            raise ValueError("verify_sample must be non-negative")
        self.service = service
        self.lookahead = lookahead
        self.verify_sample = verify_sample
        self._rng = np.random.default_rng(seed)
        if trace_sample is not None:
            service.tracer.set_sample(trace_sample)

    # ------------------------------------------------------------------
    def replay(self, requests: Iterable[QueryRequest]) -> ReplayReport:
        """Serve the stream to exhaustion; returns the aggregate report.

        The stream must be arrival-ordered (every trace generator in
        :mod:`repro.service.trace` is); the replay interleaves bounded
        submission with :meth:`~repro.service.GraphService.step` /
        :meth:`~repro.service.GraphService.harvest` so neither handles
        nor per-vertex results of 10^5-10^6 queries accumulate.
        """
        service = self.service
        stream: Iterator[QueryRequest] = iter(requests)
        report = ReplayReport()
        accumulators: dict[Priority, _ClassAccumulator] = {}
        reservoir: list[tuple] = []  # (program, source, values) samples
        sampled = 0
        exhausted = False
        started = time.perf_counter()
        while True:
            # Submit up to the lookahead window (REJECTED handles do not
            # occupy a slot — they are terminal the moment they exist).
            while not exhausted and self._in_flight() < self.lookahead:
                try:
                    request = next(stream)
                except StopIteration:
                    exhausted = True
                    break
                service.submit(request)
                report.queries += 1
            batch = service.step()
            finished, _batches = service.harvest()
            if finished:
                sampled = self._fold(report, accumulators, finished, reservoir, sampled)
            if batch is None and exhausted:
                break
        report.waves = service._waves_served
        report.makespan_s = service._clock_s
        report.classes = {
            priority.name.lower(): accumulator.row()
            for priority, accumulator in sorted(accumulators.items())
        }
        if self.verify_sample and reservoir:
            report.verified_queries = len(reservoir)
            report.verified_bitwise = self._verify(reservoir)
        report.wall_s = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _in_flight(self) -> int:
        """Handles submitted but not yet terminal (queue + this wave)."""
        return len(self.service._queue)

    def _fold(
        self,
        report: ReplayReport,
        accumulators: dict[Priority, _ClassAccumulator],
        finished,
        reservoir: list,
        sampled: int,
    ) -> int:
        """Fold one harvest into the running tallies; extends the reservoir."""
        for handle in finished:
            priority = handle.request.priority
            if handle.status is RequestStatus.REJECTED:
                report.rejected += 1
                name = priority.name.lower()
                report.rejections_by_class[name] = (
                    report.rejections_by_class.get(name, 0) + 1
                )
                continue
            if handle.preemptions:
                report.preemptions += handle.preemptions
                report.preempted_queries += 1
            if handle.status is RequestStatus.FAILED:
                report.failed += 1
                continue
            if handle.status is RequestStatus.CANCELLED:
                report.cancelled += 1
                continue
            report.completed += 1
            if priority is Priority.BULK:
                # Completion in simulated time: the latency clock runs
                # from arrival.
                report.bulk_makespan_s = max(
                    report.bulk_makespan_s, handle.arrival_s + handle.latency_s
                )
            accumulator = accumulators.setdefault(priority, _ClassAccumulator())
            accumulator.latencies.append(handle.latency_s)
            if handle.queue_wait_s is not None:
                accumulator.queue_waits.append(handle.queue_wait_s)
            if handle.deadline_met is True:
                accumulator.sla_met += 1
            elif handle.deadline_met is False:
                accumulator.sla_missed += 1
            if self.verify_sample:
                sampled += 1
                sample = (
                    handle._query[0],
                    handle._query[1],
                    handle._result.values,
                )
                if len(reservoir) < self.verify_sample:
                    reservoir.append(sample)
                else:
                    # Classic reservoir sampling: keep each completed
                    # query with probability sample_size / seen_so_far.
                    slot = int(self._rng.integers(sampled))
                    if slot < self.verify_sample:
                        reservoir[slot] = sample
        return sampled

    def _verify(self, reservoir: list) -> bool:
        """Re-run the sampled queries solo; True when all values match bitwise."""
        for program, source, served_values in reservoir:
            solo = self.service.system.run(program, source=source)
            if not np.array_equal(served_values, solo.values):
                return False
        return True
