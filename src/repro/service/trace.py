"""Synthetic request traces shared by the CLI demo and the benchmarks.

One definition of the multi-tenant starvation scenario — heavy BULK
analytics already queued when a burst of INTERACTIVE point lookups
arrives — so the ``serve`` CLI, ``bench_service_scheduling.py`` and the
``bench_perf_hotpaths.py`` regression-gate section all measure the same
trace shape.
"""

from __future__ import annotations

from repro.service.request import Priority, QueryRequest

__all__ = ["synthetic_mixed_trace"]


def synthetic_mixed_trace(graph, point_lookups: int, analytical: int, seed: int) -> list[QueryRequest]:
    """BULK PageRank analytics first, seeded INTERACTIVE BFS lookups after.

    The analytics lead the queue (they were already submitted when the
    lookups arrive), which is exactly the ordering a FIFO co-schedule
    serves worst.  Lookup sources are sampled seed-deterministically
    through :func:`repro.bench.workloads.batch_sources`.
    """
    if point_lookups < 0 or analytical < 0:
        raise ValueError("trace sizes must be non-negative")
    if point_lookups == 0 and analytical == 0:
        raise ValueError("a synthetic trace needs at least one request")
    requests = [
        QueryRequest(algorithm="pagerank", priority=Priority.BULK, label="analytical-%d" % index)
        for index in range(analytical)
    ]
    if point_lookups > 0:
        from repro.bench.workloads import batch_sources

        requests.extend(
            QueryRequest(
                algorithm="bfs",
                source=source,
                priority=Priority.INTERACTIVE,
                label="lookup-%d" % index,
            )
            for index, source in enumerate(batch_sources(graph, point_lookups, seed=seed))
        )
    return requests
