"""Request traces: synthetic mixes, arrival processes, trace-file loading.

Three layers of trace tooling share this module:

* :func:`synthetic_mixed_trace` — the everything-at-t=0 multi-tenant
  starvation scenario (heavy BULK analytics queued ahead of a burst of
  INTERACTIVE point lookups) used by the ``serve`` CLI demo and the
  scheduling benchmarks;
* the **arrival processes** (:func:`iter_arrival_times` /
  :func:`timed_mixed_trace`) — seed-deterministic Poisson, bursty
  (two-state MMPP) and diurnal (sinusoidally modulated Poisson)
  generators that stamp every request with an ``arrival_s`` timestamp,
  turning the service event-driven: waves form only over requests that
  have arrived, queue wait is measured from the stamp, and the replay
  harness streams these generators without materializing the trace;
* :func:`load_trace_file` — validated loading of client trace files
  (a JSON list, or JSON Lines for very large traces) with
  entry/line-numbered errors instead of a mid-replay ``KeyError``.
"""

from __future__ import annotations

import json
import numbers
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.service.request import Priority, QueryRequest

__all__ = [
    "synthetic_mixed_trace",
    "ARRIVAL_PROCESSES",
    "iter_arrival_times",
    "arrival_times",
    "timed_mixed_trace",
    "load_trace_file",
    "requests_from_entries",
]

#: The supported arrival-process names.
ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")


def synthetic_mixed_trace(graph, point_lookups: int, analytical: int, seed: int) -> list[QueryRequest]:
    """BULK PageRank analytics first, seeded INTERACTIVE BFS lookups after.

    The analytics lead the queue (they were already submitted when the
    lookups arrive), which is exactly the ordering a FIFO co-schedule
    serves worst.  Lookup sources are sampled seed-deterministically
    through :func:`repro.bench.workloads.batch_sources`.
    """
    if point_lookups < 0 or analytical < 0:
        raise ValueError("trace sizes must be non-negative")
    if point_lookups == 0 and analytical == 0:
        raise ValueError("a synthetic trace needs at least one request")
    requests = [
        QueryRequest(algorithm="pagerank", priority=Priority.BULK, label="analytical-%d" % index)
        for index in range(analytical)
    ]
    if point_lookups > 0:
        from repro.bench.workloads import batch_sources

        requests.extend(
            QueryRequest(
                algorithm="bfs",
                source=source,
                priority=Priority.INTERACTIVE,
                label="lookup-%d" % index,
            )
            for index, source in enumerate(batch_sources(graph, point_lookups, seed=seed))
        )
    return requests


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------


def iter_arrival_times(
    process: str,
    rate: float,
    count: int,
    seed: int = 0,
    *,
    burstiness: float = 4.0,
    burst_fraction: float = 0.1,
    cycle_s: float | None = None,
    amplitude: float = 0.8,
    period_s: float | None = None,
) -> Iterator[float]:
    """Stream ``count`` arrival timestamps of one arrival process.

    All three processes have long-run mean rate ``rate`` (arrivals per
    simulated second) and are fully determined by ``seed`` — the same
    arguments always yield the identical timestamp sequence, which is
    what makes replay runs reproducible and CI-gateable.

    ``poisson``
        Memoryless: exponential inter-arrival times at ``rate``.
    ``bursty``
        Two-state Markov-modulated Poisson process: a *burst* state
        whose rate is ``burstiness`` times the quiet state's, occupied
        ``burst_fraction`` of the time (exponential dwell times, mean
        cycle ``cycle_s``, default ``50 / rate``).  The quiet rate is
        scaled so the time-averaged rate stays ``rate``.
    ``diurnal``
        Non-homogeneous Poisson with a sinusoidal day curve
        ``rate * (1 + amplitude * sin(2 pi t / period_s))`` sampled by
        thinning (``period_s`` defaults to ``1000 / rate``, i.e. one
        "day" per ~1000 mean arrivals).
    """
    if process not in ARRIVAL_PROCESSES:
        raise ValueError(
            "unknown arrival process %r; pick one of: %s"
            % (process, ", ".join(ARRIVAL_PROCESSES))
        )
    if rate <= 0.0:
        raise ValueError("arrival rate must be positive")
    if count < 0:
        raise ValueError("arrival count must be non-negative")
    rng = np.random.default_rng(seed)
    if process == "poisson":
        return _poisson_arrivals(rng, rate, count)
    if process == "bursty":
        if burstiness <= 1.0:
            raise ValueError("burstiness must exceed 1 (1 is plain Poisson)")
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        return _bursty_arrivals(
            rng, rate, count, burstiness, burst_fraction,
            cycle_s if cycle_s is not None else 50.0 / rate,
        )
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("diurnal amplitude must be in [0, 1]")
    return _diurnal_arrivals(
        rng, rate, count, amplitude,
        period_s if period_s is not None else 1000.0 / rate,
    )


def arrival_times(process: str, rate: float, count: int, seed: int = 0, **kwargs) -> np.ndarray:
    """The materialized (sorted ascending) timestamps of one process."""
    return np.fromiter(
        iter_arrival_times(process, rate, count, seed, **kwargs),
        dtype=np.float64,
        count=count,
    )


def _poisson_arrivals(rng, rate: float, count: int) -> Iterator[float]:
    clock = 0.0
    for _ in range(count):
        clock += rng.exponential(1.0 / rate)
        yield clock


def _bursty_arrivals(
    rng, rate: float, count: int, burstiness: float, burst_fraction: float, cycle_s: float
) -> Iterator[float]:
    # Quiet-state rate chosen so the time average over both states is
    # exactly ``rate``: f*B*q + (1-f)*q = rate.
    quiet_rate = rate / (burst_fraction * burstiness + (1.0 - burst_fraction))
    state_rates = (quiet_rate, burstiness * quiet_rate)
    dwell_means = ((1.0 - burst_fraction) * cycle_s, burst_fraction * cycle_s)
    clock = 0.0
    state = 0  # start quiet; the dwell draw below is still stochastic
    state_end = rng.exponential(dwell_means[state])
    emitted = 0
    while emitted < count:
        candidate = clock + rng.exponential(1.0 / state_rates[state])
        if candidate <= state_end:
            clock = candidate
            emitted += 1
            yield clock
        else:
            # The exponential clock is memoryless, so truncating the
            # draw at the state boundary and redrawing at the new rate
            # samples the MMPP exactly.
            clock = state_end
            state = 1 - state
            state_end = clock + rng.exponential(dwell_means[state])


def _diurnal_arrivals(
    rng, rate: float, count: int, amplitude: float, period_s: float
) -> Iterator[float]:
    # Lewis-Shedler thinning against the envelope rate.
    peak = rate * (1.0 + amplitude)
    omega = 2.0 * np.pi / period_s
    clock = 0.0
    emitted = 0
    while emitted < count:
        clock += rng.exponential(1.0 / peak)
        instantaneous = rate * (1.0 + amplitude * np.sin(omega * clock))
        if rng.uniform() * peak <= instantaneous:
            emitted += 1
            yield clock


# ----------------------------------------------------------------------
# Timed synthetic workload mix
# ----------------------------------------------------------------------


def timed_mixed_trace(
    graph,
    count: int,
    rate: float,
    process: str = "poisson",
    seed: int = 0,
    *,
    interactive_fraction: float = 0.90,
    bulk_fraction: float = 0.02,
    interactive_sla_s: float | None = None,
    **process_kwargs,
) -> Iterator[QueryRequest]:
    """Stream a seeded arrival-stamped request mix (lazily, in time order).

    Each arrival of the chosen process becomes one request: an
    INTERACTIVE BFS point lookup with probability ``interactive_fraction``
    (optionally carrying the ``interactive_sla_s`` deadline), a BULK
    PageRank scan with probability ``bulk_fraction``, and a STANDARD
    SSSP query otherwise.  Lookup sources are sampled uniformly over the
    non-sink vertices from the same seeded stream, so the whole trace —
    timestamps, classes and sources — is one deterministic function of
    ``(graph, count, rate, process, seed)``.  The iterator never holds
    more than one request, which is what lets the replay harness push
    10^5-10^6 queries through without materializing the trace.
    """
    if not 0.0 <= interactive_fraction <= 1.0 or not 0.0 <= bulk_fraction <= 1.0:
        raise ValueError("trace mix fractions must be in [0, 1]")
    if interactive_fraction + bulk_fraction > 1.0:
        raise ValueError("interactive_fraction + bulk_fraction must not exceed 1")
    mix_rng = np.random.default_rng(np.random.SeedSequence([seed, 0x7261]))
    candidates = np.flatnonzero(graph.out_degrees > 0)
    if candidates.size == 0:
        raise ValueError("graph has no vertex with outgoing edges to sample sources from")
    for index, arrival in enumerate(
        iter_arrival_times(process, rate, count, seed, **process_kwargs)
    ):
        draw = mix_rng.uniform()
        source = int(candidates[mix_rng.integers(candidates.size)])
        if draw < interactive_fraction:
            yield QueryRequest(
                algorithm="bfs",
                source=source,
                priority=Priority.INTERACTIVE,
                deadline_s=interactive_sla_s,
                arrival_s=float(arrival),
            )
        elif draw < interactive_fraction + bulk_fraction:
            yield QueryRequest(
                algorithm="pagerank",
                priority=Priority.BULK,
                arrival_s=float(arrival),
            )
        else:
            yield QueryRequest(
                algorithm="sssp",
                source=source,
                priority=Priority.STANDARD,
                arrival_s=float(arrival),
            )


# ----------------------------------------------------------------------
# Trace-file loading and validation
# ----------------------------------------------------------------------

#: The keys a trace entry may carry.
_TRACE_KEYS = ("algorithm", "source", "priority", "deadline_s", "label", "arrival_s")


def _parse_trace_entry(entry, where: str) -> QueryRequest:
    """One validated trace entry -> request; errors name ``where``."""
    from repro.algorithms import ALGORITHMS

    if not isinstance(entry, dict):
        raise ValueError("%s: expected a JSON object, got %s" % (where, type(entry).__name__))
    unknown = sorted(set(entry) - set(_TRACE_KEYS))
    if unknown:
        raise ValueError(
            "%s: unknown key(s) %s; a trace entry takes: %s"
            % (where, ", ".join(map(repr, unknown)), ", ".join(_TRACE_KEYS))
        )
    algorithm = entry.get("algorithm")
    if not isinstance(algorithm, str):
        raise ValueError(
            "%s: missing or non-string 'algorithm' (available: %s)"
            % (where, ", ".join(sorted(ALGORITHMS)))
        )
    if algorithm.lower() not in ALGORITHMS:
        raise ValueError(
            "%s: unknown algorithm %r (available: %s)"
            % (where, algorithm, ", ".join(sorted(ALGORITHMS)))
        )
    source = entry.get("source")
    if source is not None and (isinstance(source, bool) or not isinstance(source, numbers.Integral)):
        raise ValueError("%s: 'source' must be an integer vertex id or null" % where)
    deadline = entry.get("deadline_s")
    if deadline is not None and (
        isinstance(deadline, bool) or not isinstance(deadline, numbers.Real) or deadline < 0
    ):
        raise ValueError("%s: 'deadline_s' must be a non-negative number" % where)
    arrival = entry.get("arrival_s", 0.0)
    if (
        isinstance(arrival, bool)
        or not isinstance(arrival, numbers.Real)
        or not np.isfinite(arrival)
        or arrival < 0
    ):
        raise ValueError(
            "%s: 'arrival_s' must be a finite non-negative number, got %r" % (where, arrival)
        )
    try:
        priority = Priority.parse(entry.get("priority", Priority.STANDARD))
    except ValueError as error:
        raise ValueError("%s: %s" % (where, error)) from None
    return QueryRequest(
        algorithm=algorithm.lower(),
        source=None if source is None else int(source),
        priority=priority,
        deadline_s=None if deadline is None else float(deadline),
        label=entry.get("label"),
        arrival_s=float(arrival),
    )


def requests_from_entries(entries, wheres=None) -> list[QueryRequest]:
    """Validate a sequence of trace entries into requests.

    ``wheres`` names each entry's position in error messages (defaults
    to ``entry #i``).  Beyond per-entry validation, arrival stamping must
    be all-or-nothing: a trace where only some entries carry
    ``arrival_s`` is almost certainly a half-edited file, and silently
    defaulting the rest to t=0 would reorder it.
    """
    entries = list(entries)
    if wheres is None:
        wheres = ["entry #%d" % index for index in range(len(entries))]
    stamped = ["arrival_s" in entry for entry in entries if isinstance(entry, dict)]
    if any(stamped) and not all(stamped):
        missing = next(
            where
            for entry, where in zip(entries, wheres)
            if isinstance(entry, dict) and "arrival_s" not in entry
        )
        raise ValueError(
            "%s: missing 'arrival_s' while other entries carry one; stamp every "
            "entry (or none, for t=0 submission)" % missing
        )
    return [
        _parse_trace_entry(entry, where) for entry, where in zip(entries, wheres)
    ]


def load_trace_file(path: Path | str) -> list[QueryRequest]:
    """Load and validate a trace file (JSON list or JSON Lines).

    A file whose first non-space character is ``[`` is parsed as one
    JSON list (errors name the entry index); anything else is parsed as
    JSON Lines — one entry per line, blank lines skipped — and errors
    carry the 1-based line number, which is the format to use for
    traces too large to hold as one document.
    """
    path = Path(path)
    text = path.read_text()
    if not text.strip():
        raise ValueError("trace %s is empty" % path)
    if text.lstrip()[0] == "[":
        entries = json.loads(text)
        if not isinstance(entries, list) or not entries:
            raise ValueError("trace %s must be a non-empty JSON list" % path)
        return requests_from_entries(entries)
    entries, wheres = [], []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError("%s line %d: invalid JSON (%s)" % (path, lineno, error)) from None
        wheres.append("%s line %d" % (path, lineno))
    if not entries:
        raise ValueError("trace %s is empty" % path)
    return requests_from_entries(entries, wheres)
