"""Admission control: bounded estimated bytes in flight per wave.

The transfer argument of the paper cuts both ways for a serving system:
sharing whole-partition ships across co-scheduled queries is what makes
batching pay, but every admitted query also *adds* partitions that must
cross PCIe while it runs.  The :class:`AdmissionController` keeps the
sum of the admitted requests' estimated bytes in flight under a
configurable budget, so a burst of analytical queries queues (or bounces)
instead of collapsing every tenant's latency.

The per-request estimate reuses the device-memory cache subsystem:

* partitions already **resident** on a device cost nothing — their
  kernels read device memory;
* non-resident partitions cost their edge bytes once — the first ship;
* partitions an adaptive cache **declines to keep**
  (:meth:`~repro.cache.manager.CacheManager.would_admit` is ``False``)
  count double: they will be re-shipped iteration after iteration, which
  is sustained PCIe pressure rather than a one-off copy.

The partitions a request touches are taken from its *initial frontier*:
one partition for a point lookup (the source's), every partition for a
sourceless analytical program whose frontier starts full.  This is a
first-super-iteration working-set proxy — exactly the window in which the
wave's transfers contend — and it is what makes point lookups cheap to
admit and analytical scans expensive, without running anything.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AdmissionController"]

#: Estimate multiplier for partitions the cache policy refuses to keep
#: (they re-ship every iteration instead of being paid for once).
CHURN_FACTOR = 2


class AdmissionController:
    """Budgeted admission over one system's partitioning and cache."""

    def __init__(self, system, budget_bytes: int | None = None, policy: str = "queue"):
        self.system = system
        self.budget_bytes = budget_bytes
        self.policy = policy
        #: Estimated bytes of the requests currently admitted-but-unserved
        #: (drives the ``reject`` policy's hard back-pressure).
        self.pending_bytes = 0

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_request_bytes(self, program, source: int | None) -> int:
        """Estimated PCIe bytes the request puts in flight when admitted."""
        partitioning = self.system.partitioning
        if program.needs_source and source is not None:
            touched = np.unique(
                partitioning.partition_of_vertices(np.asarray([source], dtype=np.int64))
            )
        else:
            # Sourceless programs start with a full frontier: every
            # partition is in the first super-iteration's working set.
            touched = np.arange(partitioning.num_partitions)
        cache = self.system.context.cache
        total = 0
        for index in touched:
            index = int(index)
            if cache is not None and bool(cache.resident[index]):
                continue
            size = partitioning[index].edge_bytes
            if cache is not None and cache.adaptive and not cache.would_admit(index):
                size *= CHURN_FACTOR
            total += size
        return total

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(self, estimated_bytes: int) -> str | None:
        """Admission decision for one request: ``None`` or a reject reason.

        A request whose own estimate exceeds the whole budget can never
        run and is rejected under either policy; under ``reject``,
        requests are additionally refused while the already-admitted
        queue fills the budget (queueing is for transient overload, hard
        back-pressure pushes it onto the client).
        """
        if self.budget_bytes is None:
            self.pending_bytes += estimated_bytes
            return None
        if estimated_bytes > self.budget_bytes:
            return (
                "estimated %d bytes in flight exceed the %d-byte admission budget"
                % (estimated_bytes, self.budget_bytes)
            )
        if self.policy == "reject" and self.pending_bytes + estimated_bytes > self.budget_bytes:
            return (
                "admission budget exhausted (%d of %d bytes pending); retry after the "
                "queue drains" % (self.pending_bytes, self.budget_bytes)
            )
        self.pending_bytes += estimated_bytes
        return None

    def take_wave(self, handles: list) -> list:
        """Split the next scheduling wave off a queue of admitted handles.

        Greedy in queue order: handles join the wave while their summed
        estimates fit the budget; the head handle always joins (its
        estimate fit the whole budget at submit time), so the queue
        always makes progress.
        """
        wave = []
        wave_bytes = 0
        for handle in handles:
            fits = (
                self.budget_bytes is None
                or not wave
                or wave_bytes + handle.estimated_bytes <= self.budget_bytes
            )
            if not fits:
                break
            wave.append(handle)
            wave_bytes += handle.estimated_bytes
        return wave

    def release(self, handles: list) -> None:
        """Return a served wave's estimated bytes to the budget."""
        self.pending_bytes -= sum(handle.estimated_bytes for handle in handles)
        if self.pending_bytes < 0:
            self.pending_bytes = 0
