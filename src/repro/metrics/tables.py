"""Plain-text table and series formatting for the benchmark harness.

The benchmarks regenerate the paper's tables and figures as printed text:
aligned tables for Table II/V/VI-style comparisons and simple labelled
series for the figures.  Keeping the formatting here keeps the benchmark
files focused on the experiments themselves.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "normalize_speedups"]


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Column order follows the keys of the first row; later rows may omit
    keys (rendered as blank) but may not introduce new ones.
    """
    if not rows:
        return (title + "\n") if title else ""
    columns = list(rows[0].keys())
    for row in rows[1:]:
        unknown = set(row.keys()) - set(columns)
        if unknown:
            raise ValueError("rows introduce unknown columns: %s" % ", ".join(sorted(unknown)))

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return "%.4g" % value
        return str(value)

    rendered = [[fmt(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines) + "\n"


def format_series(series: Mapping[str, Iterable[float]], title: str | None = None, precision: int = 4) -> str:
    """Render named numeric series (the figure line plots) as text rows."""
    lines = []
    if title:
        lines.append(title)
    for name, values in series.items():
        formatted = ", ".join(("%." + str(precision) + "g") % float(value) for value in values)
        lines.append("%s: [%s]" % (name, formatted))
    return "\n".join(lines) + "\n"


def normalize_speedups(times: Mapping[str, float], baseline: str) -> dict[str, float]:
    """Speedup of every entry relative to ``baseline`` (Figure 8/10 style).

    ``speedup[s] = time[baseline] / time[s]``; the baseline itself maps
    to 1.0.  Raises ``KeyError`` if the baseline is missing and
    ``ValueError`` if its time is non-positive.
    """
    if baseline not in times:
        raise KeyError("baseline %r not present" % baseline)
    reference = times[baseline]
    if reference <= 0:
        raise ValueError("baseline time must be positive")
    return {name: reference / value if value > 0 else float("inf") for name, value in times.items()}
