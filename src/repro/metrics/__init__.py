"""Run instrumentation and reporting.

Every simulated system produces the same :class:`RunResult` /
:class:`IterationStats` records, which is what makes the paper's
cross-system comparisons (Table V, Table VI, Figures 7-10) directly
computable from this package.
"""

from repro.metrics.percentiles import percentile, percentiles
from repro.metrics.results import BatchResult, IterationStats, RunResult
from repro.metrics.tables import format_table, format_series, normalize_speedups

__all__ = [
    "IterationStats",
    "RunResult",
    "BatchResult",
    "format_table",
    "format_series",
    "normalize_speedups",
    "percentile",
    "percentiles",
]
