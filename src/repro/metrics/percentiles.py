"""The one percentile implementation the whole repo shares.

``ServiceStats``, the replay harness's per-class folding and the bench
scripts each grew their own ``np.percentile`` call; any drift between
them (dtype, interpolation mode) would silently skew cross-layer
comparisons.  This helper pins the exact computation — ``np.percentile``
over a float64 array, default linear interpolation — so every latency
percentile in stats tables, replay reports and benchmark artifacts is
bitwise the same function of its inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["percentile", "percentiles"]


def percentile(values, q: float) -> float:
    """The ``q``-th percentile (``q`` in [0, 100]) of ``values``; 0.0 when empty."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.percentile(array, q))


def percentiles(values, qs) -> list[float]:
    """:func:`percentile` at each of ``qs``, sharing one array conversion."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return [0.0 for _ in qs]
    return [float(np.percentile(array, q)) for q in qs]
