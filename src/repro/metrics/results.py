"""Per-iteration and per-run measurement records.

The paper's evaluation reports three kinds of numbers, and every one can
be derived from these records:

* overall runtimes (Table V, Figures 9/10) — :attr:`RunResult.total_time`;
* transfer volume normalised to edge volume (Table VI) —
  :meth:`RunResult.transfer_ratio`;
* per-iteration breakdowns and engine mixes (Figures 3 and 7) — the
  :class:`IterationStats` list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationStats", "RunResult", "BatchResult"]


@dataclass
class IterationStats:
    """Measurements of one (outer) iteration of a system.

    Attributes
    ----------
    index:
        Iteration number, starting at 0.
    time:
        Simulated wall-clock seconds of the iteration (scheduler makespan
        plus any per-iteration overhead such as cost analysis).
    active_vertices / active_edges:
        Size of the frontier at the start of the iteration.
    transfer_bytes:
        Bytes that crossed PCIe during the iteration.
    compaction_time / transfer_time / kernel_time:
        Busy time of the CPU-compaction, PCIe and GPU resources (these may
        overlap, so they need not sum to ``time``).
    processed_edges:
        Edges actually pushed by the vertex program (exceeds
        ``active_edges`` when a system re-processes loaded subgraphs).
    engine_partitions:
        How many partitions chose each transfer engine this iteration.
    engine_tasks:
        How many scheduled tasks each engine contributed after combining.
    interconnect_bytes:
        Boundary-vertex delta bytes exchanged between devices at the end
        of the iteration (0 on single-device runs).
    sync_time:
        Seconds of the boundary-synchronisation phase (0 on single-device
        runs).
    cache_hit_bytes / cache_miss_bytes / cache_evicted_bytes:
        Device-memory cache traffic of the iteration: whole-partition
        bytes served from resident partitions for free, bytes billed as
        misses, and bytes evicted by the policy (all 0 on cacheless
        sessions).
    """

    index: int
    time: float
    active_vertices: int
    active_edges: int
    transfer_bytes: int = 0
    compaction_time: float = 0.0
    transfer_time: float = 0.0
    kernel_time: float = 0.0
    processed_edges: int = 0
    engine_partitions: dict[str, int] = field(default_factory=dict)
    engine_tasks: dict[str, int] = field(default_factory=dict)
    interconnect_bytes: int = 0
    sync_time: float = 0.0
    cache_hit_bytes: int = 0
    cache_miss_bytes: int = 0
    cache_evicted_bytes: int = 0

    def breakdown(self) -> dict[str, float]:
        """The Figure 3(b)/(c) style {compaction, transfer, computation} split."""
        return {
            "compaction": self.compaction_time,
            "transfer": self.transfer_time,
            "computation": self.kernel_time,
        }


@dataclass
class RunResult:
    """Complete record of one system executing one algorithm on one graph."""

    system: str
    algorithm: str
    graph_name: str
    iterations: list[IterationStats] = field(default_factory=list)
    values: np.ndarray | None = None
    converged: bool = False
    preprocessing_time: float = 0.0
    extra: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        """Number of outer iterations executed."""
        return len(self.iterations)

    @property
    def total_time(self) -> float:
        """Total simulated execution time (excluding preprocessing).

        The paper reports execution time with preprocessing removed
        (Section III-A / VII-B), so this is the headline number.
        """
        return float(sum(stat.time for stat in self.iterations))

    @property
    def total_time_with_preprocessing(self) -> float:
        """Execution time including one-off preprocessing."""
        return self.total_time + self.preprocessing_time

    @property
    def total_transfer_bytes(self) -> int:
        """Total bytes moved across PCIe."""
        return int(sum(stat.transfer_bytes for stat in self.iterations))

    @property
    def total_compaction_time(self) -> float:
        """Total CPU compaction busy time."""
        return float(sum(stat.compaction_time for stat in self.iterations))

    @property
    def total_transfer_time(self) -> float:
        """Total PCIe busy time."""
        return float(sum(stat.transfer_time for stat in self.iterations))

    @property
    def total_kernel_time(self) -> float:
        """Total GPU kernel busy time."""
        return float(sum(stat.kernel_time for stat in self.iterations))

    @property
    def total_processed_edges(self) -> int:
        """Total edges pushed by the vertex program across all iterations."""
        return int(sum(stat.processed_edges for stat in self.iterations))

    @property
    def total_interconnect_bytes(self) -> int:
        """Total inter-GPU boundary-delta bytes (0 on single-device runs)."""
        return int(sum(stat.interconnect_bytes for stat in self.iterations))

    @property
    def total_sync_time(self) -> float:
        """Total boundary-synchronisation seconds (0 on single-device runs)."""
        return float(sum(stat.sync_time for stat in self.iterations))

    @property
    def total_cache_hit_bytes(self) -> int:
        """Whole-partition bytes served from the device cache for free."""
        return int(sum(stat.cache_hit_bytes for stat in self.iterations))

    @property
    def total_cache_miss_bytes(self) -> int:
        """Whole-partition bytes billed as device-cache misses."""
        return int(sum(stat.cache_miss_bytes for stat in self.iterations))

    @property
    def total_cache_evicted_bytes(self) -> int:
        """Bytes evicted from the device cache by its policy."""
        return int(sum(stat.cache_evicted_bytes for stat in self.iterations))

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of whole-partition cache traffic served for free."""
        looked_up = self.total_cache_hit_bytes + self.total_cache_miss_bytes
        if looked_up <= 0:
            return 0.0
        return self.total_cache_hit_bytes / looked_up

    def transfer_ratio(self, edge_data_bytes: int) -> float:
        """Transfer volume divided by one full pass over the edge data.

        This is the Table VI metric ("Transfer volume / Edge volume").
        """
        if edge_data_bytes <= 0:
            return 0.0
        return self.total_transfer_bytes / edge_data_bytes

    def per_iteration_times(self) -> list[float]:
        """Iteration times in order (the Figure 3(g)/(h), 7(c)/(d) series)."""
        return [stat.time for stat in self.iterations]

    def engine_mix(self) -> list[dict[str, float]]:
        """Per-iteration fraction of active partitions per engine (Figure 7a/b)."""
        mix = []
        for stat in self.iterations:
            total = sum(stat.engine_partitions.values())
            if total == 0:
                mix.append({})
            else:
                mix.append({engine: count / total for engine, count in stat.engine_partitions.items()})
        return mix

    def breakdown(self) -> dict[str, float]:
        """Whole-run {compaction, transfer, computation} totals (Figure 3c)."""
        return {
            "compaction": self.total_compaction_time,
            "transfer": self.total_transfer_time,
            "computation": self.total_kernel_time,
        }

    def summary_row(self) -> dict[str, object]:
        """One row of a comparison table."""
        return {
            "system": self.system,
            "algorithm": self.algorithm,
            "graph": self.graph_name,
            "time": round(self.total_time, 6),
            "iterations": self.num_iterations,
            "transfer_MB": round(self.total_transfer_bytes / (1024 * 1024), 3),
            "converged": self.converged,
        }

    def observability(self) -> dict[str, object]:
        """Every run counter behind one discoverable, JSON-safe snapshot.

        The aggregates above plus everything that used to require
        digging through ``extra`` (backend, cache policy, fault record),
        organised as a :class:`~repro.obs.MetricsRegistry` snapshot so
        run- and service-level observability share one shape.
        """
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.count("run.iterations", self.num_iterations)
        registry.count("run.transfer_bytes", self.total_transfer_bytes)
        registry.count("run.interconnect_bytes", self.total_interconnect_bytes)
        registry.count("run.processed_edges", self.total_processed_edges)
        registry.count("run.cache.hit_bytes", self.total_cache_hit_bytes)
        registry.count("run.cache.miss_bytes", self.total_cache_miss_bytes)
        registry.count("run.cache.evicted_bytes", self.total_cache_evicted_bytes)
        registry.gauge("run.total_time_s", self.total_time)
        registry.gauge("run.preprocessing_time_s", self.preprocessing_time)
        registry.gauge("run.compaction_time_s", self.total_compaction_time)
        registry.gauge("run.transfer_time_s", self.total_transfer_time)
        registry.gauge("run.kernel_time_s", self.total_kernel_time)
        registry.gauge("run.sync_time_s", self.total_sync_time)
        registry.gauge("run.cache.hit_rate", self.cache_hit_rate)
        registry.gauge("run.converged", self.converged)
        for stat in self.iterations:
            registry.observe("run.iteration_time_s", stat.time)
        for key, value in sorted(self.extra.items()):
            if isinstance(value, (bool, int, float, str)) or value is None:
                registry.gauge("run.extra.%s" % key, value)
        return {
            "system": self.system,
            "algorithm": self.algorithm,
            "graph": self.graph_name,
            "metrics": registry.snapshot(),
        }


@dataclass
class BatchResult:
    """Record of one concurrent multi-query batch on one system.

    Attributes
    ----------
    results:
        The per-query :class:`RunResult` records, in submission order.
        Query values are bitwise identical to standalone runs; the
        per-query timing/volume fields reflect the shared warm state
        (residency paid once, de-duplicated partition transfers).
    makespan:
        Simulated wall-clock seconds of the whole batch: per
        super-iteration, the live queries' task lists co-scheduled on
        the shared devices, plus their planning overheads.
    super_iterations:
        Number of batch super-iterations (the max over queries' outer
        iteration counts, minus skipped dead queries).
    amortized_bytes:
        Whole-partition transfer bytes that were *not* re-shipped
        because another query in the same super-iteration already moved
        the partition (0 for systems with no shareable transfers).
    cache_hit_bytes / cache_miss_bytes / cache_evicted_bytes:
        Batch-wide device-memory cache traffic, measured at the cache
        manager (unlike the per-query sums, this includes evictions at
        super-iteration boundaries, which no single query owns).
    latencies:
        Per-query service latency in submission order: each query's
        accumulated own-task completion times within the merged
        co-schedules plus its planning overheads (see
        :mod:`repro.runtime.batch`).  Empty for results built outside
        the batch runner.
    faults_injected / retries / retry_time_s:
        Fault-injection accounting (all zero without an injector):
        faults the injector applied, transient-transfer re-sends, and
        the retry + backoff seconds billed into the timeline.
    checkpoint_time_s / recovery_time_s / recovered_super_iterations:
        Recovery accounting: seconds spent writing checkpoints, seconds
        spent restoring from them, and super-iterations of work rolled
        back and re-executed after device losses.
    """

    system: str
    algorithm: str
    graph_name: str
    results: list[RunResult] = field(default_factory=list)
    makespan: float = 0.0
    super_iterations: int = 0
    amortized_bytes: int = 0
    cache_hit_bytes: int = 0
    cache_miss_bytes: int = 0
    cache_evicted_bytes: int = 0
    latencies: list[float] = field(default_factory=list)
    faults_injected: int = 0
    retries: int = 0
    retry_time_s: float = 0.0
    checkpoint_time_s: float = 0.0
    recovery_time_s: float = 0.0
    recovered_super_iterations: int = 0
    extra: dict[str, object] = field(default_factory=dict)

    #: Simulated times at or below this are treated as degenerate when
    #: forming ratios (tiny graphs can converge in ~zero simulated time).
    ZERO_TIME_EPS = 1e-12

    @property
    def num_queries(self) -> int:
        """Number of queries in the batch."""
        return len(self.results)

    @property
    def queries_per_second(self) -> float:
        """Aggregate simulated throughput of the batch.

        0.0 for degenerate (zero/near-zero makespan) batches rather
        than an infinite rate.
        """
        if self.makespan <= self.ZERO_TIME_EPS:
            return 0.0
        return self.num_queries / self.makespan

    @property
    def failed_queries(self) -> int:
        """Queries that ended in a terminal fault (permanent failure)."""
        return sum(
            1 for result in self.results if result.extra.get("fault_status") == "failed"
        )

    @property
    def cancelled_queries(self) -> int:
        """Queries cancelled by deadline enforcement."""
        return sum(
            1 for result in self.results if result.extra.get("fault_status") == "cancelled"
        )

    @property
    def total_transfer_bytes(self) -> int:
        """PCIe bytes actually moved for the whole batch."""
        return int(sum(result.total_transfer_bytes for result in self.results))

    @property
    def total_interconnect_bytes(self) -> int:
        """Inter-GPU boundary-delta bytes across all queries."""
        return int(sum(result.total_interconnect_bytes for result in self.results))

    @property
    def sequential_time_estimate(self) -> float:
        """Sum of the queries' standalone iteration times.

        An *in-batch* proxy (each query's tasks scheduled alone but with
        the shared warm state); the honest sequential baseline re-runs
        the queries independently — see :meth:`amortization_vs`.
        """
        return float(sum(result.total_time for result in self.results))

    def amortization_vs(self, sequential: list[RunResult]) -> dict[str, float]:
        """Amortization statistics against independent sequential runs.

        ``sequential`` holds one :class:`RunResult` per query from
        running them back to back on a cold session each (what a
        serving layer without batching would do).

        Degenerate baselines stay finite: when either side of the
        comparison is zero/near-zero simulated time (tiny graphs that
        converge instantly), the speedup is reported as a neutral 1.0
        and ``degenerate`` is set, instead of dividing through to
        ``inf``/``nan``.
        """
        sequential_time = float(sum(result.total_time for result in sequential))
        sequential_bytes = int(sum(result.total_transfer_bytes for result in sequential))
        degenerate = (
            self.makespan <= self.ZERO_TIME_EPS or sequential_time <= self.ZERO_TIME_EPS
        )
        speedup = 1.0 if degenerate else sequential_time / self.makespan
        return {
            "speedup": speedup,
            "degenerate": degenerate,
            "sequential_time": sequential_time,
            "batched_time": self.makespan,
            "sequential_transfer_bytes": float(sequential_bytes),
            "batched_transfer_bytes": float(self.total_transfer_bytes),
            "transfer_bytes_saved": float(sequential_bytes - self.total_transfer_bytes),
        }

    def summary_row(self) -> dict[str, object]:
        """One row of a batch comparison table."""
        return {
            "system": self.system,
            "algorithm": self.algorithm,
            "graph": self.graph_name,
            "queries": self.num_queries,
            "makespan": round(self.makespan, 6),
            "queries_per_s": round(self.queries_per_second, 3),
            "transfer_MB": round(self.total_transfer_bytes / (1024 * 1024), 3),
            "amortized_MB": round(self.amortized_bytes / (1024 * 1024), 3),
            "cache_hit_MB": round(self.cache_hit_bytes / (1024 * 1024), 3),
        }

    def as_dict(self) -> dict[str, object]:
        """JSON-safe dump of the batch record (``--stats-json``, CI).

        Per-query value arrays are left out (they are results, not
        statistics), as are live checkpoint objects riding in ``extra``
        (``suspended``) — everything else serialises with ``json.dumps``.
        """
        extra = {
            key: value
            for key, value in self.extra.items()
            if isinstance(value, (bool, int, float, str, list, dict)) or value is None
        }
        extra.pop("suspended", None)
        if "suspended" in self.extra:
            extra["suspended_queries"] = sorted(self.extra["suspended"])
        return {
            "system": self.system,
            "algorithm": self.algorithm,
            "graph_name": self.graph_name,
            "queries": self.num_queries,
            "makespan_s": self.makespan,
            "queries_per_second": self.queries_per_second,
            "super_iterations": self.super_iterations,
            "amortized_bytes": self.amortized_bytes,
            "cache_hit_bytes": self.cache_hit_bytes,
            "cache_miss_bytes": self.cache_miss_bytes,
            "cache_evicted_bytes": self.cache_evicted_bytes,
            "total_transfer_bytes": self.total_transfer_bytes,
            "total_interconnect_bytes": self.total_interconnect_bytes,
            "latencies_s": list(self.latencies),
            "failed_queries": self.failed_queries,
            "cancelled_queries": self.cancelled_queries,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "retry_time_s": self.retry_time_s,
            "checkpoint_time_s": self.checkpoint_time_s,
            "recovery_time_s": self.recovery_time_s,
            "recovered_super_iterations": self.recovered_super_iterations,
            "extra": extra,
        }
