"""Vertex-centric graph algorithms.

The paper evaluates four algorithms (Section VII-A): the traversal
algorithms SSSP, BFS and CC (value-replacement, min-combine) and the
iterative algorithm PageRank (value accumulation, sum-combine).  The
Δ-driven priority scheduling section additionally mentions PHP, which is
included as well.

All programs implement the push-based vertex-centric API of
:class:`repro.algorithms.base.VertexProgram`; the same program object runs
unchanged on every simulated system, so cross-system comparisons always
compute identical answers.
"""

from repro.algorithms.base import VertexProgram, ProgramState
from repro.algorithms.sssp import SSSP
from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import DeltaPageRank
from repro.algorithms.php import PHP
from repro.algorithms import reference

__all__ = [
    "VertexProgram",
    "ProgramState",
    "SSSP",
    "BFS",
    "ConnectedComponents",
    "DeltaPageRank",
    "PHP",
    "reference",
    "ALGORITHMS",
    "make_algorithm",
]

ALGORITHMS = {
    "sssp": SSSP,
    "bfs": BFS,
    "cc": ConnectedComponents,
    "pagerank": DeltaPageRank,
    "pr": DeltaPageRank,
    "php": PHP,
}


def make_algorithm(name: str, **kwargs) -> VertexProgram:
    """Instantiate an algorithm by its short name (``"sssp"``, ``"pr"``, ...)."""
    key = name.lower()
    if key not in ALGORITHMS:
        raise KeyError("unknown algorithm %r; available: %s" % (name, ", ".join(sorted(ALGORITHMS))))
    return ALGORITHMS[key](**kwargs)
