"""Penalized hitting probability (PHP), an accumulative proximity measure.

PHP [Zhang et al., TPDS 2014 — the Maiter paper the HyTGraph authors cite
for Δ-driven scheduling] measures the proximity of every vertex to a query
source: the source holds probability 1 and every other vertex accumulates
penalised probability mass flowing along edges,

    php[v] = c * sum_{u -> v, u != source}  w(u, v) / W(u) * php[u],
    php[source] = 1,

where ``W(u)`` is the total out-weight of ``u`` and ``c < 1`` the penalty
factor.  Like Δ-PageRank it is computed accumulatively: residual mass is
pushed along out-edges and folded into the vertex value, so it slots into
the same Δ-driven priority machinery.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram, gather_edge_indices
from repro.core.kernels import push_and_activate
from repro.graph.csr import CSRGraph
from repro.graph.frontier import Frontier

__all__ = ["PHP"]


class PHP(VertexProgram):
    """Penalized hitting probability from a query source."""

    name = "PHP"
    needs_weights = False
    needs_source = True
    accumulative = True

    def __init__(self, penalty: float = 0.8, tolerance: float = 1e-4):
        if not 0.0 < penalty < 1.0:
            raise ValueError("penalty must be in (0, 1)")
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.penalty = penalty
        self.tolerance = tolerance

    def create_state(self, graph: CSRGraph, source: int | None = None) -> ProgramState:
        source = self.validate_source(graph, source)
        values = np.zeros(graph.num_vertices, dtype=np.float64)
        deltas = np.zeros(graph.num_vertices, dtype=np.float64)
        deltas[source] = 1.0
        return ProgramState({"php": values, "delta": deltas, "source": np.array([source], dtype=np.int64)})

    def initial_frontier(self, graph: CSRGraph, state: ProgramState, source: int | None = None) -> Frontier:
        source = self.validate_source(graph, source)
        return Frontier.single(graph.num_vertices, source)

    def process(self, graph: CSRGraph, state: ProgramState, active_vertices: np.ndarray) -> np.ndarray:
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        if active_vertices.size == 0:
            return np.zeros(0, dtype=np.int64)
        values = state["php"]
        deltas = state["delta"]
        source = int(state["source"][0])

        outgoing = deltas[active_vertices].copy()
        values[active_vertices] += outgoing
        deltas[active_vertices] = 0.0

        degrees = graph.out_degrees[active_vertices]
        has_edges = degrees > 0
        senders = active_vertices[has_edges]
        if senders.size == 0:
            return np.zeros(0, dtype=np.int64)
        per_edge_share = self.penalty * outgoing[has_edges] / degrees[has_edges]

        edge_indices, _ = gather_edge_indices(graph, senders)
        destinations = graph.column_index[edge_indices]
        # gather_edge_indices emits each sender's edges contiguously, so the
        # per-sender share can simply be repeated by out-degree.
        shares = np.repeat(per_edge_share, degrees[has_edges])
        # The source absorbs mass without re-emitting it (penalised hitting).
        keep = destinations != source
        destinations = destinations[keep]
        shares = shares[keep]
        if destinations.size == 0:
            return np.zeros(0, dtype=np.int64)
        # Fused add-combine scatter: accumulates the penalised mass and
        # returns the destinations above tolerance (repro.core.kernels).
        return push_and_activate(deltas, destinations, shares, combine="add", threshold=self.tolerance)

    def vertex_result(self, state: ProgramState) -> np.ndarray:
        result = state["php"] + state["delta"]
        result[int(state["source"][0])] = 1.0
        return result

    def partition_delta(self, graph: CSRGraph, state: ProgramState, vertex_start: int, vertex_end: int) -> float:
        return float(state["delta"][vertex_start:vertex_end].sum())
