"""Δ-based (accumulative) PageRank.

The paper runs PageRank as a value-accumulation algorithm (Section VI-A,
"Δ-driven priority scheduling", following Maiter): every vertex keeps a
``rank`` and a pending residual ``delta``.  Processing an active vertex v

1. folds its residual into its rank (``rank[v] += delta[v]``),
2. pushes ``damping * delta[v] / out_degree(v)`` to every out-neighbor's
   residual, and
3. clears ``delta[v]``.

A vertex whose residual exceeds the tolerance becomes active.  The fixed
point satisfies the classic non-normalised PageRank recurrence

    rank[v] = (1 - damping) + damping * sum_{u -> v} rank[u] / Do(u)

which the reference implementation in :mod:`repro.algorithms.reference`
computes by power iteration for validation.  PageRank's monotonically
shrinking active set is the second workload pattern of the motivating
study, and its residual mass is exactly what the Δ-driven priority
scheduler ranks partitions by.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram, gather_edge_indices
from repro.core.kernels import push_and_activate
from repro.graph.csr import CSRGraph
from repro.graph.frontier import Frontier

__all__ = ["DeltaPageRank"]


class DeltaPageRank(VertexProgram):
    """Accumulative PageRank with per-vertex residuals.

    Parameters
    ----------
    damping:
        The damping factor (0.85 by default).
    tolerance:
        A vertex stays inactive while its residual is below this value.
    """

    name = "PR"
    needs_weights = False
    needs_source = False
    accumulative = True

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-3):
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.damping = damping
        self.tolerance = tolerance

    def create_state(self, graph: CSRGraph, source: int | None = None) -> ProgramState:
        ranks = np.zeros(graph.num_vertices, dtype=np.float64)
        deltas = np.full(graph.num_vertices, 1.0 - self.damping, dtype=np.float64)
        return ProgramState({"rank": ranks, "delta": deltas})

    def initial_frontier(self, graph: CSRGraph, state: ProgramState, source: int | None = None) -> Frontier:
        return Frontier.from_mask(state["delta"] > self.tolerance)

    def process(self, graph: CSRGraph, state: ProgramState, active_vertices: np.ndarray) -> np.ndarray:
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        if active_vertices.size == 0:
            return np.zeros(0, dtype=np.int64)
        ranks = state["rank"]
        deltas = state["delta"]

        # Fold residuals into ranks and capture the outgoing contribution.
        outgoing = deltas[active_vertices].copy()
        ranks[active_vertices] += outgoing
        deltas[active_vertices] = 0.0

        degrees = graph.out_degrees[active_vertices]
        has_edges = degrees > 0
        senders = active_vertices[has_edges]
        if senders.size == 0:
            return np.zeros(0, dtype=np.int64)
        per_edge_share = self.damping * outgoing[has_edges] / degrees[has_edges]

        edge_indices, _ = gather_edge_indices(graph, senders)
        destinations = graph.column_index[edge_indices]
        # gather_edge_indices emits each sender's edges contiguously, so the
        # per-sender share can simply be repeated by out-degree.
        shares = np.repeat(per_edge_share, degrees[has_edges])
        # Fused add-combine scatter: accumulates the shares and returns every
        # destination whose residual now exceeds the tolerance — destinations
        # that were already above it stay on the frontier, so no separate
        # "newly crossed" bookkeeping is needed (repro.core.kernels).
        return push_and_activate(deltas, destinations, shares, combine="add", threshold=self.tolerance)

    def vertex_result(self, state: ProgramState) -> np.ndarray:
        # Remaining residual mass is part of the final rank estimate.
        return state["rank"] + state["delta"]

    def partition_delta(self, graph: CSRGraph, state: ProgramState, vertex_start: int, vertex_end: int) -> float:
        return float(state["delta"][vertex_start:vertex_end].sum())
