"""Single-source shortest paths (push-based, value replacement).

Figure 1 of the paper walks through exactly this computation: starting
from the source the current shortest distance is pushed along out-edges,
receivers keep the minimum, and a vertex whose distance improved becomes
active for the next iteration.  SSSP's active-vertex curve (grow, peak,
shrink) is one of the two workload patterns the motivating study is built
around.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram, gather_edge_indices
from repro.core.kernels import push_and_activate
from repro.graph.csr import CSRGraph
from repro.graph.frontier import Frontier

__all__ = ["SSSP"]


class SSSP(VertexProgram):
    """Bellman-Ford style single-source shortest paths."""

    name = "SSSP"
    needs_weights = True
    needs_source = True

    def create_state(self, graph: CSRGraph, source: int | None = None) -> ProgramState:
        source = self.validate_source(graph, source)
        self.check_graph(graph)
        distances = np.full(graph.num_vertices, np.inf, dtype=np.float64)
        distances[source] = 0.0
        return ProgramState({"dist": distances})

    def initial_frontier(self, graph: CSRGraph, state: ProgramState, source: int | None = None) -> Frontier:
        source = self.validate_source(graph, source)
        return Frontier.single(graph.num_vertices, source)

    def process(self, graph: CSRGraph, state: ProgramState, active_vertices: np.ndarray) -> np.ndarray:
        distances = state["dist"]
        edge_indices, sources = gather_edge_indices(graph, active_vertices)
        if edge_indices.size == 0:
            return np.zeros(0, dtype=np.int64)
        destinations = graph.column_index[edge_indices]
        weights = graph.edge_value[edge_indices]
        candidates = distances[sources] + weights
        # Fused min-combine scatter: relaxes all edges and returns the
        # destinations whose distance improved (repro.core.kernels).
        return push_and_activate(distances, destinations, candidates, combine="min")

    def vertex_result(self, state: ProgramState) -> np.ndarray:
        return state["dist"]
