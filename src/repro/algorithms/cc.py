"""Connected components via label propagation (value replacement).

Every vertex starts with its own id as its label and repeatedly adopts the
minimum label among its in-coming messages.  On an undirected
(symmetrized) graph the fixed point labels each connected component with
its smallest vertex id.  On a directed graph the propagation follows
out-edges only, so callers that want weakly connected components should
symmetrize the graph first (the paper's CC runs treat the inputs this
way; :mod:`repro.bench.workloads` does the symmetrization).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram, gather_edge_indices
from repro.core.kernels import push_and_activate
from repro.graph.csr import CSRGraph
from repro.graph.frontier import Frontier

__all__ = ["ConnectedComponents"]


class ConnectedComponents(VertexProgram):
    """Min-label propagation connected components."""

    name = "CC"
    needs_weights = False
    needs_source = False
    needs_symmetric = True

    def create_state(self, graph: CSRGraph, source: int | None = None) -> ProgramState:
        labels = np.arange(graph.num_vertices, dtype=np.float64)
        return ProgramState({"label": labels})

    def initial_frontier(self, graph: CSRGraph, state: ProgramState, source: int | None = None) -> Frontier:
        return Frontier.all_active(graph.num_vertices)

    def process(self, graph: CSRGraph, state: ProgramState, active_vertices: np.ndarray) -> np.ndarray:
        labels = state["label"]
        edge_indices, sources = gather_edge_indices(graph, active_vertices)
        if edge_indices.size == 0:
            return np.zeros(0, dtype=np.int64)
        destinations = graph.column_index[edge_indices]
        candidates = labels[sources]
        # Fused min-combine scatter: propagates the labels and returns the
        # destinations whose label shrank (repro.core.kernels).
        return push_and_activate(labels, destinations, candidates, combine="min")

    def vertex_result(self, state: ProgramState) -> np.ndarray:
        return state["label"]
