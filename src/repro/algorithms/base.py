"""Push-based vertex-centric programming API.

Section II-A describes the model: in every iteration each *active* vertex
sends a message along its out-edges; the receiving vertex combines the
incoming messages with its current value and becomes active for the next
iteration if its value changed.  Two combine styles appear in the paper:

* **value replacement** (min-combine) — SSSP, BFS, CC;
* **value accumulation** (sum-combine over a Δ/residual) — PageRank, PHP.

:class:`VertexProgram` exposes exactly the operations the simulated
systems need:

``create_state``     per-vertex arrays (distances, ranks, residuals, ...)
``initial_frontier`` the initially active vertices
``process``          push updates from a given set of active vertices,
                     mutating the state in place and returning the ids of
                     the vertices activated by those updates
``vertex_result``    the per-vertex answer once converged
``partition_delta``  the contribution mass of a vertex range (used by the
                     Δ-driven priority scheduler)

``process`` is deliberately restrictable to a subset of active vertices:
that is how the systems model partition-at-a-time processing, asynchronous
multi-round re-processing of loaded subgraphs, and priority scheduling,
all while the final answer stays exact.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.frontier import Frontier

__all__ = ["ProgramState", "VertexProgram", "gather_edge_indices"]


@dataclass
class ProgramState:
    """Mutable per-vertex state of one run of a vertex program."""

    arrays: dict[str, np.ndarray] = field(default_factory=dict)

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

    def __setitem__(self, key: str, value: np.ndarray) -> None:
        self.arrays[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.arrays

    def copy(self) -> "ProgramState":
        """Deep copy (used by tests to compare engine execution orders)."""
        return ProgramState({key: np.array(value, copy=True) for key, value in self.arrays.items()})


def gather_edge_indices(graph: CSRGraph, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Edge-array indices and repeated sources for the given vertices.

    Returns ``(edge_indices, sources)`` where ``edge_indices`` selects every
    out-edge of every vertex in ``vertices`` from the CSR edge arrays and
    ``sources`` repeats each vertex once per such edge.  This is the
    vectorised equivalent of the scatter phase of a push-based GPU kernel.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    starts = graph.row_offset[vertices]
    degrees = graph.row_offset[vertices + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    # Standard CSR gather: for each vertex, emit starts[v] + 0..deg-1.  One
    # repeat of the per-vertex shift (starts minus the running output
    # offset) added to a single arange produces all edge indices at once.
    cumulative = np.cumsum(degrees)
    shifts = np.repeat(starts - (cumulative - degrees), degrees)
    edge_indices = np.arange(total, dtype=np.int64) + shifts
    sources = np.repeat(vertices, degrees)
    return edge_indices, sources


class VertexProgram(ABC):
    """Base class of all vertex-centric algorithms."""

    #: Short name used in reports ("SSSP", "PR", ...).
    name: str = "program"
    #: Whether the algorithm reads edge weights (SSSP does, the rest do not).
    needs_weights: bool = False
    #: Whether the algorithm is accumulative (Δ-based) rather than
    #: value-replacement; accumulative programs drive Δ-priority scheduling.
    accumulative: bool = False
    #: Whether the algorithm needs a source vertex (SSSP/BFS/PHP do).
    needs_source: bool = False
    #: Whether the algorithm's semantics assume a symmetric graph (CC
    #: computes *weakly* connected components, so the evaluation grid
    #: symmetrizes its graph; serving entry points refuse a directed one
    #: instead of silently returning different labels).
    needs_symmetric: bool = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def create_state(self, graph: CSRGraph, source: int | None = None) -> ProgramState:
        """Allocate and initialise the per-vertex state arrays."""

    @abstractmethod
    def initial_frontier(self, graph: CSRGraph, state: ProgramState, source: int | None = None) -> Frontier:
        """The initially active vertices."""

    @abstractmethod
    def process(self, graph: CSRGraph, state: ProgramState, active_vertices: np.ndarray) -> np.ndarray:
        """Push updates from ``active_vertices``.

        Mutates ``state`` in place and returns the (unique, sorted) ids of
        vertices whose value changed — i.e. the vertices these pushes
        activated.  A vertex may activate itself only if its own value
        changed as a side effect (accumulative programs never re-activate
        the sender).
        """

    @abstractmethod
    def vertex_result(self, state: ProgramState) -> np.ndarray:
        """The final per-vertex output (distances, labels, ranks, ...)."""

    # ------------------------------------------------------------------
    # Optional hooks
    # ------------------------------------------------------------------
    def partition_delta(self, graph: CSRGraph, state: ProgramState, vertex_start: int, vertex_end: int) -> float:
        """Contribution mass of the vertex range (Δ-driven priority).

        Value-replacement programs return 0 by default; accumulative
        programs return the pending residual mass in the range.
        """
        return 0.0

    def validate_source(self, graph: CSRGraph, source: int | None) -> int | None:
        """Check and normalise the source argument."""
        if self.needs_source:
            if source is None:
                raise ValueError("%s requires a source vertex" % self.name)
            if not 0 <= source < graph.num_vertices:
                raise ValueError("source %d outside [0, %d)" % (source, graph.num_vertices))
        return source

    def check_graph(self, graph: CSRGraph) -> None:
        """Verify the graph satisfies the program's requirements."""
        if self.needs_weights and not graph.is_weighted:
            raise ValueError("%s requires a weighted graph" % self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s()" % type(self).__name__
