"""CPU reference implementations used to validate the vertex programs.

Every simulated system must produce exactly the answers these references
produce — that is the correctness contract of the whole reproduction.  The
references use SciPy / straightforward dense iteration and are independent
of the vertex-centric code paths they check.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import scatter_add
from repro.graph.csr import CSRGraph

__all__ = [
    "sssp_distances",
    "bfs_levels",
    "connected_component_labels",
    "pagerank_values",
    "php_values",
]


def _to_scipy_csr(graph: CSRGraph, weighted: bool):
    from scipy.sparse import csr_matrix

    data = graph.edge_value if (weighted and graph.is_weighted) else np.ones(graph.num_edges)
    return csr_matrix(
        (data, graph.column_index, graph.row_offset),
        shape=(graph.num_vertices, graph.num_vertices),
    )


def sssp_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Exact shortest-path distances from ``source`` (Dijkstra via SciPy)."""
    from scipy.sparse.csgraph import dijkstra

    matrix = _to_scipy_csr(graph, weighted=True)
    return dijkstra(matrix, directed=True, indices=source)


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Exact hop counts from ``source`` (unweighted shortest paths)."""
    from scipy.sparse.csgraph import dijkstra

    matrix = _to_scipy_csr(graph, weighted=False)
    return dijkstra(matrix, directed=True, indices=source, unweighted=True)


def connected_component_labels(graph: CSRGraph) -> np.ndarray:
    """Min-vertex-id label of each vertex's weakly connected component.

    Matches the fixed point of min-label propagation on the symmetrized
    graph: each component is labelled by its smallest member id.
    """
    from scipy.sparse.csgraph import connected_components

    matrix = _to_scipy_csr(graph, weighted=False)
    _, component_of = connected_components(matrix, directed=True, connection="weak")
    labels = np.empty(graph.num_vertices, dtype=np.float64)
    for component in np.unique(component_of):
        members = np.nonzero(component_of == component)[0]
        labels[members] = members.min()
    return labels


def pagerank_values(graph: CSRGraph, damping: float = 0.85, tolerance: float = 1e-12, max_iterations: int = 10_000) -> np.ndarray:
    """Fixed point of the non-normalised PageRank recurrence.

    ``rank[v] = (1 - damping) + damping * sum_{u->v} rank[u] / Do(u)``,
    with dangling vertices simply retaining their mass (the same
    formulation the Δ-based program converges to).
    """
    out_degrees = graph.out_degrees.astype(np.float64)
    safe_degrees = np.where(out_degrees > 0, out_degrees, 1.0)
    ranks = np.full(graph.num_vertices, 1.0 - damping, dtype=np.float64)
    sources = graph.edge_sources()
    destinations = graph.column_index
    for _ in range(max_iterations):
        contributions = np.zeros(graph.num_vertices, dtype=np.float64)
        per_edge = ranks[sources] / safe_degrees[sources]
        scatter_add(contributions, destinations, per_edge)
        new_ranks = (1.0 - damping) + damping * contributions
        if np.max(np.abs(new_ranks - ranks)) < tolerance:
            ranks = new_ranks
            break
        ranks = new_ranks
    return ranks


def php_values(graph: CSRGraph, source: int, penalty: float = 0.8, tolerance: float = 1e-12, max_iterations: int = 10_000) -> np.ndarray:
    """Fixed point of the penalized-hitting-probability recurrence.

    ``php[v] = penalty * sum_{u->v, u != source} php[u] / Do(u)`` with
    ``php[source]`` pinned to 1.
    """
    out_degrees = graph.out_degrees.astype(np.float64)
    safe_degrees = np.where(out_degrees > 0, out_degrees, 1.0)
    values = np.zeros(graph.num_vertices, dtype=np.float64)
    values[source] = 1.0
    sources = graph.edge_sources()
    destinations = graph.column_index
    for _ in range(max_iterations):
        contributions = np.zeros(graph.num_vertices, dtype=np.float64)
        per_edge = values[sources] / safe_degrees[sources]
        scatter_add(contributions, destinations, per_edge)
        new_values = penalty * contributions
        new_values[source] = 1.0
        if np.max(np.abs(new_values - values)) < tolerance:
            values = new_values
            break
        values = new_values
    return values
