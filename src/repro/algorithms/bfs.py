"""Breadth-first search (level computation, value replacement).

BFS is the lightest of the paper's four workloads: every vertex is
activated at most a handful of times and the frontier burns through the
graph in few iterations, which is why the task-combining and
contribution-driven-scheduling optimisations barely help it (Figure 8
discussion).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram, gather_edge_indices
from repro.core.kernels import push_and_activate
from repro.graph.csr import CSRGraph
from repro.graph.frontier import Frontier

__all__ = ["BFS"]


class BFS(VertexProgram):
    """Single-source BFS computing hop distances (levels)."""

    name = "BFS"
    needs_weights = False
    needs_source = True

    def create_state(self, graph: CSRGraph, source: int | None = None) -> ProgramState:
        source = self.validate_source(graph, source)
        levels = np.full(graph.num_vertices, np.inf, dtype=np.float64)
        levels[source] = 0.0
        return ProgramState({"level": levels})

    def initial_frontier(self, graph: CSRGraph, state: ProgramState, source: int | None = None) -> Frontier:
        source = self.validate_source(graph, source)
        return Frontier.single(graph.num_vertices, source)

    def process(self, graph: CSRGraph, state: ProgramState, active_vertices: np.ndarray) -> np.ndarray:
        levels = state["level"]
        edge_indices, sources = gather_edge_indices(graph, active_vertices)
        if edge_indices.size == 0:
            return np.zeros(0, dtype=np.int64)
        destinations = graph.column_index[edge_indices]
        candidates = levels[sources] + 1.0
        # Fused min-combine scatter: applies the level updates and returns
        # the destinations whose level dropped (repro.core.kernels).
        return push_and_activate(levels, destinations, candidates, combine="min")

    def vertex_result(self, state: ProgramState) -> np.ndarray:
        return state["level"]
