"""repro — a reproduction of HyTGraph (ICDE 2023).

HyTGraph is a GPU-accelerated out-of-core graph processing framework built
around *hybrid transfer management*: every iteration, every graph
partition containing active edges is shipped to the GPU with whichever of
three transfer mechanisms (explicit filter copy, CPU-compacted explicit
copy, or zero-copy on-demand access) an analytic cost model predicts to be
cheapest, and the resulting tasks are scheduled asynchronously with
contribution-driven priorities over multiple CUDA streams.

This package reproduces the complete system — the hybrid runtime, the four
transfer engines, the baseline systems it is compared against (Subway,
EMOGI, Grus, a pure filter baseline, a pure unified-memory baseline and a
CPU baseline), the graph substrate, and a simulated GPU/PCIe platform that
stands in for the paper's hardware testbed.

Quickstart
----------
>>> from repro import load_dataset, make_algorithm, make_system
>>> graph = load_dataset("SK", scale=0.2, weighted=True)
>>> system = make_system("hytgraph", graph)
>>> result = system.run(make_algorithm("sssp"), source=0)
>>> result.total_time, result.num_iterations  # doctest: +SKIP
"""

from repro.graph import CSRGraph, Frontier, load_dataset, rmat_graph, power_law_graph
from repro.algorithms import make_algorithm, SSSP, BFS, ConnectedComponents, DeltaPageRank, PHP
from repro.systems import make_system, HyTGraphSystem, SubwaySystem, EmogiSystem, GrusSystem
from repro.core import HyTGraphEngine, HyTGraphOptions
from repro.sim import HardwareConfig, default_config, GPU_PRESETS
from repro.metrics import RunResult, IterationStats, BatchResult
from repro.runtime import ExecutionContext, IterationDriver, QueryBatchRunner

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "Frontier",
    "load_dataset",
    "rmat_graph",
    "power_law_graph",
    "make_algorithm",
    "SSSP",
    "BFS",
    "ConnectedComponents",
    "DeltaPageRank",
    "PHP",
    "make_system",
    "HyTGraphSystem",
    "SubwaySystem",
    "EmogiSystem",
    "GrusSystem",
    "HyTGraphEngine",
    "HyTGraphOptions",
    "HardwareConfig",
    "default_config",
    "GPU_PRESETS",
    "RunResult",
    "IterationStats",
    "BatchResult",
    "ExecutionContext",
    "IterationDriver",
    "QueryBatchRunner",
    "__version__",
]
