"""Structured span tracing over *simulated* time.

The runtime is a deterministic simulation: every interesting instant —
a query entering a scheduling wave, a super-iteration boundary, a PCIe
copy occupying its stream slot, a cache admission — already has an exact
simulated timestamp.  The tracer records those instants as
:class:`Span` records instead of printing or aggregating them, which is
what the Chrome-trace exporter, the JSONL span log and the per-query
flight recorder (:mod:`repro.obs.export`, :mod:`repro.obs.flight`) are
built on.

Two invariants shape the design:

* **Zero overhead when disabled.**  The default tracer everywhere is the
  module-level :data:`NULL_TRACER`, whose methods are no-ops and whose
  ``enabled`` flag lets hot paths skip even argument construction with
  one attribute check.  A run without tracing executes the exact same
  arithmetic as before the tracer existed.
* **Determinism.**  Span ids are a monotone counter, every timestamp is
  a simulated clock value, and query sampling is a pure hash of
  ``(seed, request_id)`` — no wall clock, no global RNG — so equal runs
  emit bitwise-equal span streams (the golden-file test relies on it).

When enabled, spans land in a bounded ring buffer
(:attr:`TracingConfig.capacity`): a 10^5-query replay with sampling can
run arbitrarily long while memory stays fixed — the oldest spans fall
out, ``dropped_spans`` says how many.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["TracingConfig", "Span", "NullTracer", "Tracer", "NULL_TRACER", "make_tracer"]

#: Span categories the runtime emits (the README taxonomy table).
CATEGORIES = (
    "query",       # lifecycle: admitted/queued/suspended/terminal instants
    "wave",        # one scheduling wave of the service
    "super",       # one batch super-iteration
    "iteration",   # one query's planned iteration (its exec tile)
    "device",      # one task stage on a device resource (kernel/pcie/...)
    "cache",       # device-cache admit/hit/evict/invalidate events
    "fault",       # injected faults and transfer retries
    "checkpoint",  # checkpoint/restore/preempt-capture copies
    "network",     # cross-host transfers on a host's net lane
)


@dataclass(frozen=True)
class TracingConfig:
    """How a service traces (``ServiceConfig(tracing=...)``).

    Attributes
    ----------
    capacity:
        Ring-buffer span bound; the oldest spans are dropped beyond it.
    sample:
        Fraction of queries whose per-query spans are recorded (global
        spans — waves, supers, cache/fault events — are always kept).
        Sampling is a deterministic hash of ``(seed, request_id)``, so
        the same trace replayed twice samples the same queries.
    seed:
        Seed of the sampling hash.
    """

    capacity: int = 65536
    sample: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("tracing capacity must be at least 1")
        if not 0.0 <= self.sample <= 1.0:
            raise ValueError("tracing sample must be in [0, 1]")


@dataclass
class Span:
    """One traced interval (or instant, when ``end_s == start_s``).

    ``track`` is the horizontal lane the span renders on: ``"service"``
    for waves and super-iterations, ``"query:<label>"`` for one query's
    latency tiles, ``"dev<d>:<resource>"`` for device timeline segments,
    ``"cache"``/``"faults"`` for event streams.  All times are simulated
    seconds.
    """

    span_id: int
    category: str
    name: str
    track: str
    start_s: float
    end_s: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def is_instant(self) -> bool:
        return self.end_s == self.start_s

    def as_dict(self) -> dict:
        """JSONL-friendly record (one line of the span log)."""
        return {
            "span_id": self.span_id,
            "category": self.category,
            "name": self.name,
            "track": self.track,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": self.attrs,
        }


def _sample_hash(seed: int, value: int) -> float:
    """Deterministic uniform in [0, 1) from (seed, value) — splitmix64-style."""
    mask = 0xFFFFFFFFFFFFFFFF
    x = (seed * 0x9E3779B97F4A7C15 + value * 0xBF58476D1CE4E5B9 + 1) & mask
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & mask
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & mask
    x ^= x >> 31
    return x / 2.0**64


class NullTracer:
    """The default no-op tracer: every hook collapses to nothing.

    ``enabled`` is a class attribute so hot paths can guard with one
    attribute load; the methods exist so instrumentation never needs a
    ``tracer is not None`` dance.
    """

    enabled = False

    def span(self, category, name, track, start_s, end_s, **attrs):
        return None

    def instant(self, category, name, track=None, t=None, **attrs):
        return None

    def set_clock(self, t):
        pass

    def cursor(self, track, default=0.0):
        return default

    def trace_query(self, request_id) -> bool:
        return False

    def set_sample(self, sample) -> None:
        pass

    def spans(self):
        return []


#: Shared no-op instance every instrumented object defaults to.
NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: bounded ring buffer of :class:`Span` records."""

    enabled = True

    def __init__(self, config: TracingConfig | None = None):
        self.config = config or TracingConfig()
        self._buffer: deque[Span] = deque(maxlen=self.config.capacity)
        self._next_id = 0
        #: Simulated-clock cursor instants default to (set by whichever
        #: layer currently owns the clock: the service at wave starts,
        #: the batch runner at super-iteration boundaries).
        self.clock_s = 0.0
        #: Last span end per track — what lets the service close a
        #: query's wait gap exactly where its previous tile ended.
        self._cursors: dict[str, float] = {}
        self._sample = self.config.sample
        self.total_spans = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def span(self, category, name, track, start_s, end_s, **attrs) -> Span:
        """Record one interval; advances the track's cursor to ``end_s``."""
        record = Span(self._next_id, category, name, track, float(start_s), float(end_s), attrs)
        self._next_id += 1
        self.total_spans += 1
        self._buffer.append(record)
        self._cursors[track] = record.end_s
        return record

    def instant(self, category, name, track=None, t=None, **attrs) -> Span:
        """Record one zero-duration event (cursor untouched).

        ``t`` defaults to the current simulated clock (:meth:`set_clock`);
        ``track`` defaults to the category's own event lane.
        """
        at = self.clock_s if t is None else float(t)
        record = Span(self._next_id, category, name, track or category, at, at, attrs)
        self._next_id += 1
        self.total_spans += 1
        self._buffer.append(record)
        return record

    def set_clock(self, t) -> None:
        """Move the simulated-clock cursor instants default to."""
        self.clock_s = float(t)

    def cursor(self, track, default=0.0) -> float:
        """Where the last span on ``track`` ended (``default`` if none)."""
        return self._cursors.get(track, default)

    # ------------------------------------------------------------------
    # Query sampling
    # ------------------------------------------------------------------
    def trace_query(self, request_id: int) -> bool:
        """Whether this query's per-query spans are recorded."""
        if self._sample >= 1.0:
            return True
        if self._sample <= 0.0:
            return False
        return _sample_hash(self.config.seed, int(request_id)) < self._sample

    def set_sample(self, sample: float) -> None:
        """Override the query sampling fraction (the replay-harness hook)."""
        if not 0.0 <= sample <= 1.0:
            raise ValueError("tracing sample must be in [0, 1]")
        self._sample = float(sample)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dropped_spans(self) -> int:
        """Spans pushed out of the ring buffer so far."""
        return self.total_spans - len(self._buffer)

    def spans(self) -> list[Span]:
        """The retained spans, in emission (span-id) order."""
        return list(self._buffer)


def make_tracer(tracing: TracingConfig | bool | None) -> NullTracer | Tracer:
    """The tracer for a ``ServiceConfig.tracing`` value.

    ``None``/``False`` → the shared :data:`NULL_TRACER`; ``True`` → a
    recording tracer with default config; a :class:`TracingConfig` → a
    recording tracer so configured.
    """
    if tracing is None or tracing is False:
        return NULL_TRACER
    if tracing is True:
        return Tracer(TracingConfig())
    return Tracer(tracing)
