"""Trace exporters: Chrome ``trace_event`` JSON and a JSONL span log.

The Chrome format is the JSON object form — ``{"traceEvents": [...]}`` —
loadable in Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
Each tracer track becomes one named thread: device resources
(``dev0:gpu``, ``dev0:pcie``, ``cpu``, ``interconnect``), the service
lane (waves and super-iterations), one lane per traced query, and the
cache/fault event streams.  Simulated seconds map to trace microseconds.

Everything here is a pure function of the span list, so exporting never
perturbs a run; ``validate_chrome_trace`` is the schema check the test
suite and the CI trace-smoke job share.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "spans_to_jsonl",
    "write_jsonl",
    "validate_chrome_trace",
]

#: The one simulated process every track lives under.
_PID = 0

#: Required keys of every emitted trace event.
_EVENT_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")


def _track_order(spans: list[Span]) -> list[str]:
    """Tracks in first-appearance order (deterministic given the spans)."""
    seen: dict[str, None] = {}
    for span in spans:
        if span.track not in seen:
            seen[span.track] = None
    return list(seen)


def chrome_trace(spans: list[Span], metrics: dict | None = None, dropped: int = 0) -> dict:
    """The Chrome ``trace_event`` payload for a span list.

    ``metrics`` (a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`)
    rides along under ``otherData`` so one file carries the whole
    observability picture; ``dropped`` records ring-buffer overflow.
    """
    tracks = _track_order(spans)
    tids = {track: index for index, track in enumerate(tracks)}
    events: list[dict] = [
        {
            "name": "process_name",
            "cat": "__metadata",
            "ph": "M",
            "ts": 0,
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro-graph (simulated)"},
        }
    ]
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": _PID,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    for span in spans:
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "i" if span.is_instant else "X",
            "ts": span.start_s * 1e6,
            "pid": _PID,
            "tid": tids[span.track],
            "args": {"span_id": span.span_id, **span.attrs},
        }
        if span.is_instant:
            event["s"] = "t"  # thread-scoped instant
        else:
            event["dur"] = span.duration_s * 1e6
        events.append(event)
    payload: dict = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated",
            "spans": len(spans),
            "dropped_spans": dropped,
            "tracks": tracks,
        },
    }
    if metrics is not None:
        payload["otherData"]["metrics"] = metrics
    return payload


def write_chrome_trace(path, spans: list[Span], metrics: dict | None = None, dropped: int = 0) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans, metrics=metrics, dropped=dropped)))
    return path


def spans_to_jsonl(spans: list[Span]) -> str:
    """The span log: one JSON object per line, in span-id order."""
    return "".join(json.dumps(span.as_dict()) + "\n" for span in spans)


def write_jsonl(path, spans: list[Span]) -> Path:
    """Write the JSONL span log; returns the path written."""
    path = Path(path)
    path.write_text(spans_to_jsonl(spans))
    return path


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema-check one Chrome trace payload; returns problem strings.

    An empty list means the payload is structurally valid: every event
    carries the required keys, complete events have non-negative
    timestamps and durations, and every tid used by an event has a
    ``thread_name`` metadata record (the per-track naming Perfetto
    renders lanes from).
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    named_tids: set[int] = set()
    used_tids: set[int] = set()
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append("event %d is not an object" % position)
            continue
        missing = [key for key in _EVENT_KEYS if key not in event]
        if missing:
            problems.append("event %d missing keys: %s" % (position, ", ".join(missing)))
            continue
        phase = event["ph"]
        if phase == "M":
            if event["name"] == "thread_name":
                named_tids.add(event["tid"])
            continue
        used_tids.add(event["tid"])
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            problems.append("event %d has bad ts %r" % (position, event["ts"]))
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append("event %d has bad dur %r" % (position, duration))
        elif phase != "i":
            problems.append("event %d has unexpected phase %r" % (position, phase))
    unnamed = used_tids - named_tids
    if unnamed:
        problems.append("tids without thread_name metadata: %s" % sorted(unnamed))
    return problems
