"""The per-query flight recorder: where did one query's latency go?

``repro-graph inspect trace.json --query q3`` loads a Chrome trace
written by ``--trace-out`` and reconstructs one query's latency budget
from its track's spans.  The instrumentation tiles a traced query's
track with non-overlapping intervals that sum *exactly* to its measured
service latency:

    queued → [resume-restore] → iter tiles (+ checkpoints) →
    [preempt-capture → suspended → ...] → terminal instant

so the recorder can account every simulated second: queue wait,
preemption suspensions, checkpoint/restore copies, and execution —
which it further splits into kernel, PCIe-transfer and CPU busy time
from the merged timeline (those overlap across streams, so the split
is occupancy, not another tiling).

Everything works off the exported JSON payload, never a live tracer:
the flight recorder is a post-mortem tool.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_trace", "query_tracks", "query_summary", "flight_report"]

#: Span names that tile a query's latency, with their report labels.
_WAIT_NAMES = {"queued": "queue wait", "suspended": "suspended (preempted)"}
_COPY_NAMES = {
    "preempt-capture": "preemption capture",
    "resume-restore": "resume restore",
    "checkpoint": "checkpoints",
    "recovery-restore": "fault recovery restore",
    "checkpoint-ship": "checkpoint shipping",
}
_TERMINAL_NAMES = ("done", "failed", "cancelled", "rejected")


def load_trace(path) -> dict:
    """Read one exported Chrome trace payload."""
    return json.loads(Path(path).read_text())


def _events_by_track(payload: dict) -> tuple[dict[int, str], list[dict]]:
    """(tid -> track name, non-metadata events) of one payload."""
    names: dict[int, str] = {}
    events: list[dict] = []
    for event in payload.get("traceEvents", []):
        if event.get("ph") == "M":
            if event.get("name") == "thread_name":
                names[event["tid"]] = event["args"]["name"]
        else:
            events.append(event)
    return names, events


def query_tracks(payload: dict) -> list[str]:
    """The query labels present in a trace, in track order."""
    names, _ = _events_by_track(payload)
    return [
        track.split(":", 1)[1]
        for _, track in sorted(names.items())
        if track.startswith("query:")
    ]


def _query_events(payload: dict, query: str) -> list[dict]:
    names, events = _events_by_track(payload)
    track = query if query.startswith("query:") else "query:%s" % query
    tids = {tid for tid, name in names.items() if name == track}
    if not tids:
        known = ", ".join(query_tracks(payload)) or "none"
        raise KeyError("no trace track for query %r; traced queries: %s" % (query, known))
    selected = [event for event in events if event["tid"] in tids]
    selected.sort(key=lambda event: (event["ts"], event["args"].get("span_id", 0)))
    return selected


def query_summary(payload: dict, query: str) -> dict:
    """The reconstructed latency budget of one traced query.

    All durations in simulated seconds.  ``components_total_s`` is the
    sum of the track's tiles and equals ``latency_s`` up to float
    accumulation — the invariant the flight-recorder test asserts.
    """
    events = _query_events(payload, query)
    summary: dict = {
        "query": query,
        "status": None,
        "arrival_s": None,
        "completed_s": None,
        "latency_s": None,
        "waits": dict.fromkeys(_WAIT_NAMES.values(), 0.0),
        "copies": dict.fromkeys(_COPY_NAMES.values(), 0.0),
        "copy_bytes": 0,
        "exec_s": 0.0,
        "kernel_s": 0.0,
        "transfer_s": 0.0,
        "cpu_s": 0.0,
        "iterations": 0,
        "retries": 0,
        "preemptions": 0,
        "cache_hit_bytes": 0,
        "cache_miss_bytes": 0,
        "components_total_s": 0.0,
    }
    for event in events:
        name, args = event["name"], event.get("args", {})
        seconds = event.get("dur", 0.0) / 1e6
        if event["ph"] == "X":
            summary["components_total_s"] += seconds
        if name == "admitted":
            summary["arrival_s"] = event["ts"] / 1e6
        elif name in _TERMINAL_NAMES:
            summary["status"] = name
            summary["completed_s"] = event["ts"] / 1e6
            if "latency_s" in args:
                summary["latency_s"] = args["latency_s"]
        elif name in _WAIT_NAMES:
            summary["waits"][_WAIT_NAMES[name]] += seconds
        elif name in _COPY_NAMES:
            summary["copies"][_COPY_NAMES[name]] += seconds
            summary["copy_bytes"] += args.get("checkpoint_bytes", 0)
        elif event["cat"] == "iteration":
            summary["exec_s"] += seconds
            summary["iterations"] += 1
            summary["kernel_s"] += args.get("kernel_s", 0.0)
            summary["transfer_s"] += args.get("transfer_s", 0.0)
            summary["cpu_s"] += args.get("cpu_s", 0.0)
            summary["cache_hit_bytes"] += args.get("cache_hit_bytes", 0)
            summary["cache_miss_bytes"] += args.get("cache_miss_bytes", 0)
        elif name == "retry":
            summary["retries"] += 1
        elif name == "preempted":
            summary["preemptions"] += 1
    if summary["arrival_s"] is None and events:
        summary["arrival_s"] = events[0]["ts"] / 1e6
    return summary


def _pct(part: float, whole: float) -> str:
    return "%5.1f%%" % (100.0 * part / whole) if whole > 0 else "    -"


def flight_report(payload: dict, query: str) -> str:
    """The plain-text flight-recorder report for one traced query."""
    summary = query_summary(payload, query)
    latency = summary["latency_s"]
    total = summary["components_total_s"]
    reference = latency if latency is not None else total
    lines = [
        "flight recorder: %s" % summary["query"],
        "  status      %s" % (summary["status"] or "in flight"),
        "  arrival     %.6f s (simulated)" % (summary["arrival_s"] or 0.0),
    ]
    if summary["completed_s"] is not None:
        lines.append("  completed   %.6f s" % summary["completed_s"])
    if latency is not None:
        lines.append("  latency     %.6f s (queue wait included)" % latency)
    lines.append("  breakdown:")
    for label, seconds in summary["waits"].items():
        if seconds or label == "queue wait":
            lines.append("    %-24s %.6f s  %s" % (label, seconds, _pct(seconds, reference)))
    lines.append(
        "    %-24s %.6f s  %s" % ("execution", summary["exec_s"], _pct(summary["exec_s"], reference))
    )
    busy = summary["kernel_s"] + summary["transfer_s"] + summary["cpu_s"]
    lines.append(
        "      kernel %.6f s / transfer %.6f s / compaction %.6f s"
        " / scheduling+overhead %.6f s"
        % (
            summary["kernel_s"],
            summary["transfer_s"],
            summary["cpu_s"],
            max(0.0, summary["exec_s"] - busy),
        )
    )
    for label, seconds in summary["copies"].items():
        if seconds:
            lines.append("    %-24s %.6f s  %s" % (label, seconds, _pct(seconds, reference)))
    if latency is not None:
        lines.append(
            "  components sum to %.6f s (delta %.3e s vs measured latency)"
            % (total, total - latency)
        )
    detail = [
        "%d iteration(s)" % summary["iterations"],
        "%d preemption(s)" % summary["preemptions"],
        "%d transfer retrie(s)" % summary["retries"],
    ]
    if summary["copy_bytes"]:
        detail.append("%d checkpoint bytes moved" % summary["copy_bytes"])
    lines.append("  " + ", ".join(detail))
    if summary["cache_hit_bytes"] or summary["cache_miss_bytes"]:
        lines.append(
            "  device cache: %.3f MB hits, %.3f MB misses"
            % (summary["cache_hit_bytes"] / 1e6, summary["cache_miss_bytes"] / 1e6)
        )
    return "\n".join(lines) + "\n"
