"""One registry for every runtime counter.

Ad-hoc counters grew wherever they were first needed — the cache
manager's hit/miss/eviction dict, the fault injector's retry tallies,
the batch runner's amortization bytes, the service's admission counts.
:class:`MetricsRegistry` puts them behind one snapshot/export API:
counters (monotone), gauges (point-in-time values) and histograms with
*fixed* bucket bounds, so a snapshot of the same run is always the same
JSON — deterministic output is what lets CI diff it.

The registry is assembled on demand (``GraphService.metrics()``,
``RunResult.observability()``) from the underlying sources rather than
updated on the hot paths: the sources already count, the registry only
names and organizes.
"""

from __future__ import annotations

import bisect

__all__ = ["MetricsRegistry", "Histogram", "LATENCY_BUCKETS_S"]

#: Fixed latency bucket upper bounds (simulated seconds).  Fixed — not
#: data-derived — so two runs' histograms are always comparable and a
#: snapshot is deterministic.
LATENCY_BUCKETS_S = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Histogram:
    """Fixed-bound bucket counts plus exact count/sum.

    ``bounds`` are upper bucket edges; values above the last bound land
    in an implicit overflow bucket, so ``len(counts) == len(bounds)+1``.
    """

    def __init__(self, bounds=LATENCY_BUCKETS_S):
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty ascending sequence")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += float(value)

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms with one deterministic snapshot."""

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, object] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, amount=1) -> None:
        """Add ``amount`` to a monotone counter (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float, bounds=LATENCY_BUCKETS_S) -> None:
        """Fold one observation into the named histogram."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        histogram.observe(value)

    def merge_counters(self, prefix: str, counters: dict) -> None:
        """Adopt a source's counter dict under ``prefix.`` names."""
        for key, value in counters.items():
            self.count("%s.%s" % (prefix, key), value)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-friendly dump, keys sorted for deterministic output."""
        return {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }
