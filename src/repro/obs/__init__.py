"""Observability: structured tracing, one metrics registry, exporters.

The simulation already knows every timestamp exactly; this package
records them.  :mod:`repro.obs.tracer` emits spans over simulated time,
:mod:`repro.obs.metrics` unifies the runtime's scattered counters,
:mod:`repro.obs.export` writes Chrome ``trace_event`` JSON and JSONL
span logs, and :mod:`repro.obs.flight` reconstructs a single query's
latency budget from an exported trace.

This package imports nothing from the rest of :mod:`repro` (the
instrumented layers import *it*), so it can never create a cycle.
"""

from repro.obs.export import (
    chrome_trace,
    spans_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flight import flight_report, load_trace, query_summary, query_tracks
from repro.obs.metrics import LATENCY_BUCKETS_S, Histogram, MetricsRegistry
from repro.obs.tracer import (
    CATEGORIES,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracingConfig,
    make_tracer,
)

__all__ = [
    "CATEGORIES",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "TracingConfig",
    "chrome_trace",
    "flight_report",
    "load_trace",
    "make_tracer",
    "query_summary",
    "query_tracks",
    "spans_to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
