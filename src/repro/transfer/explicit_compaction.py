"""ExpTM-compaction: CPU-compacted active-edge transfers.

The compaction-based explicit approach (Subway, Scaph, Ascetic — Section
II-B) removes the inactive edges on the CPU, packs the survivors into a
contiguous buffer together with a fresh index array, and ships that with
``cudaMemcpy``.  It minimises transferred bytes but pays CPU time and
main-memory traffic proportional to the active edge volume (Figure 3b/3c).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.partition import EdgePartition
from repro.sim.compaction import CompactionEngine
from repro.transfer.base import EngineKind, TransferEngine, TransferOutcome

__all__ = ["ExplicitCompactionEngine"]


class ExplicitCompactionEngine(TransferEngine):
    """CPU compaction followed by explicit copy."""

    kind = EngineKind.EXP_COMPACTION

    def __init__(self, graph, config, materialize: bool = False):
        super().__init__(graph, config)
        self._compactor = CompactionEngine(config)
        # The simulated systems only need byte/time accounting; tests and
        # examples can ask for the actual compacted sub-CSR.
        self.materialize = materialize
        self.last_subgraph = None

    def transfer(self, partition: EdgePartition, active_vertices: np.ndarray) -> TransferOutcome:
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        if active_vertices.size == 0:
            return TransferOutcome(self.kind, 0, 0.0)
        if self.materialize:
            result = self._compactor.compact(self.graph, active_vertices)
            self.last_subgraph = result.subgraph
            output_bytes = result.output_bytes
            cpu_time = result.cpu_time
            active_edges = result.subgraph.num_edges
        else:
            degrees = self._active_degrees(active_vertices)
            active_edges = int(degrees.sum())
            output_bytes = self._compactor.output_bytes(
                active_edges, active_vertices.size, self.graph.is_weighted
            )
            cpu_time = self._compactor.cpu_time(output_bytes)
        transfer_time = self.pcie.explicit_copy_time(output_bytes)
        return TransferOutcome(
            engine=self.kind,
            bytes_transferred=output_bytes,
            transfer_time=transfer_time,
            cpu_time=cpu_time,
            overlapped=False,
            detail={
                "tlps": float(self.pcie.explicit_copy_tlps(output_bytes)),
                "active_edges": float(active_edges),
                "active_vertices": float(active_vertices.size),
            },
        )

    def transfer_task(
        self,
        partitions: Sequence[EdgePartition],
        active_vertices: np.ndarray,
        cuts: np.ndarray,
    ) -> TransferOutcome:
        """Per-partition compaction pricing from exact integer prefix sums.

        Output bytes and CPU time are linear in each partition's active
        edge/vertex counts and the transfer time keeps its per-partition
        TLP rounding, so the result matches the :meth:`transfer` loop bit
        for bit.  Materialising engines fall back to the loop so
        ``last_subgraph`` still reflects the final partition.
        """
        if self.materialize:
            return super().transfer_task(partitions, active_vertices, cuts)
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        if active_vertices.size == 0:
            return TransferOutcome(self.kind, 0, 0.0)
        degrees = self._active_degrees(active_vertices)
        degree_prefix = np.concatenate([[0], np.cumsum(degrees)])
        edges_per_partition = degree_prefix[cuts[1:]] - degree_prefix[cuts[:-1]]
        counts_per_partition = np.diff(cuts)
        weighted = self.graph.is_weighted
        bytes_total = 0
        transfer_time = 0.0
        cpu_time = 0.0
        for active_edges, count in zip(edges_per_partition.tolist(), counts_per_partition.tolist()):
            if count == 0:
                continue
            output_bytes = self._compactor.output_bytes(active_edges, count, weighted)
            bytes_total += output_bytes
            cpu_time += self._compactor.cpu_time(output_bytes)
            transfer_time += self.pcie.explicit_copy_time(output_bytes)
        return TransferOutcome(
            engine=self.kind,
            bytes_transferred=bytes_total,
            transfer_time=transfer_time,
            cpu_time=cpu_time,
            overlapped=False,
        )
