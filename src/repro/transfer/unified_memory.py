"""ImpTM-unified-memory: page-granular automatic migration with a device cache.

The unified-memory approach (HALO, Grus — Section II-C) keeps the edge
arrays in managed memory: touching an absent 4-KB page triggers a fault,
TLB invalidation and a page migration over PCIe.  Migrated pages stay
cached in device memory until evicted (LRU here), so a graph small enough
to fit is transferred only once — which is exactly why the UM-based
systems win on the SK graph in Table V — while larger graphs thrash.
Because the paper enables ``cudaMemAdviseSetReadMostly``, evictions are
free (pages are discarded, not written back).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import EdgePartition
from repro.sim.config import HardwareConfig
from repro.sim.memory import PageCache
from repro.transfer.base import EngineKind, TransferEngine, TransferOutcome

__all__ = ["UnifiedMemoryEngine"]


class UnifiedMemoryEngine(TransferEngine):
    """Unified-memory on-demand paging with an LRU device-side cache."""

    kind = EngineKind.IMP_UNIFIED_MEMORY

    def __init__(self, graph: CSRGraph, config: HardwareConfig, cache_bytes: int | None = None):
        super().__init__(graph, config)
        capacity_bytes = config.gpu_memory_bytes if cache_bytes is None else cache_bytes
        self.cache = PageCache(max(0, capacity_bytes // config.um_page_bytes))

    def reset(self) -> None:
        # A new run starts with a cold cache AND fresh statistics — the
        # per-run page_cache_stats extras must not accumulate across runs
        # now that systems keep one engine instance for their lifetime.
        self.cache = PageCache(self.cache.capacity_pages)

    def transfer(self, partition: EdgePartition, active_vertices: np.ndarray) -> TransferOutcome:
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        if active_vertices.size == 0:
            return TransferOutcome(self.kind, 0, 0.0, overlapped=True)
        degrees = self._active_degrees(active_vertices)
        start_bytes = self._edge_start_bytes(active_vertices)
        lengths = degrees * self.graph.edge_bytes_per_edge
        pages = self.pcie.pages_for_byte_ranges(start_bytes, lengths)
        access = self.cache.access(pages)
        transfer_time = self.pcie.page_migration_time(access.faults)
        bytes_migrated = access.faults * self.config.um_page_bytes
        return TransferOutcome(
            engine=self.kind,
            bytes_transferred=bytes_migrated,
            transfer_time=transfer_time,
            cpu_time=0.0,
            overlapped=True,
            detail={
                "pages_touched": float(access.total),
                "page_faults": float(access.faults),
                "page_hits": float(access.hits),
                "evictions": float(access.evictions),
                "active_edges": float(degrees.sum()),
            },
        )
