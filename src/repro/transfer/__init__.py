"""Host-to-GPU transfer management engines.

The four ways existing frameworks move the active subgraph to the GPU
(Section II-B/II-C, Figure 2), each implemented against the simulated
hardware in :mod:`repro.sim`:

* :class:`~repro.transfer.explicit_filter.ExplicitFilterEngine` —
  ExpTM-filter: ship every partition containing an active edge in full.
* :class:`~repro.transfer.explicit_compaction.ExplicitCompactionEngine` —
  ExpTM-compaction: CPU packs the active edges, then explicit copy.
* :class:`~repro.transfer.zero_copy.ZeroCopyEngine` — ImpTM-zero-copy:
  per-vertex on-demand reads over pinned host memory.
* :class:`~repro.transfer.unified_memory.UnifiedMemoryEngine` —
  ImpTM-unified-memory: page-granular migration with an LRU device cache.

HyTGraph's hybrid runtime mixes the first three per partition each
iteration (Section IV); the baseline systems each use one of them for
everything.
"""

from repro.transfer.base import EngineKind, TransferEngine, TransferOutcome
from repro.transfer.explicit_filter import ExplicitFilterEngine
from repro.transfer.explicit_compaction import ExplicitCompactionEngine
from repro.transfer.residency import ShardResidency
from repro.transfer.zero_copy import ZeroCopyEngine
from repro.transfer.unified_memory import UnifiedMemoryEngine

__all__ = [
    "EngineKind",
    "TransferEngine",
    "TransferOutcome",
    "ExplicitFilterEngine",
    "ExplicitCompactionEngine",
    "ShardResidency",
    "ZeroCopyEngine",
    "UnifiedMemoryEngine",
]
