"""Per-device shard residency for the multi-GPU execution layer.

The point of scaling HyTGraph out to N devices is aggregate device
memory: each GPU owns one contiguous shard of the partitioning and can
keep the leading partitions of that shard resident in its own memory.
A resident partition is shipped once (an explicit whole-partition copy
the first time it carries active edges) and is free afterwards — its
kernel reads local device memory instead of crossing PCIe again.

The single-device engines deliberately have **no** residency under the
default policy, exactly as in the paper: its testbed graphs
oversubscribe one GPU's memory, so the partitions churn and static
caching buys nothing.  Sharding changes that — the aggregate capacity
grows with the device count while each shard shrinks, which is
precisely the regime where residency pays.

Historically this module implemented the static policy directly; it is
now the ``static-prefix`` policy of the device-memory cache subsystem
(:mod:`repro.cache`), and :class:`ShardResidency` remains as the
stable facade over a :class:`~repro.cache.manager.CacheManager` pinned
to that policy: each device marks partitions resident in ascending
index order until its edge-cache budget (the configured per-device
memory) is spent, bitwise-identical to the pre-cache behaviour.  Hub
sorting makes this the right prefix to pin — after reordering, the
leading partitions hold the hub vertices that stay active across
iterations.  The adaptive policies (``lru``, ``frontier-aware``) live
in :mod:`repro.cache.policy` and are selected through the execution
context's ``cache_policy``.
"""

from __future__ import annotations

from repro.cache.manager import CacheManager
from repro.graph.partition import Partitioning, ShardedPartitioning
from repro.sim.config import HardwareConfig

__all__ = ["ShardResidency"]


class ShardResidency(CacheManager):
    """Static resident-partition sets, one per device.

    A :class:`~repro.cache.manager.CacheManager` fixed to the
    ``static-prefix`` eviction policy; see the module docstring for the
    semantics and :mod:`repro.cache` for the adaptive alternatives.
    """

    def __init__(
        self,
        partitioning: Partitioning,
        sharding: ShardedPartitioning,
        config: HardwareConfig,
        budget_bytes: int | None = None,
    ):
        super().__init__(
            partitioning, sharding, config, policy="static-prefix", budget_bytes=budget_bytes
        )
