"""Per-device shard residency for the multi-GPU execution layer.

The point of scaling HyTGraph out to N devices is aggregate device
memory: each GPU owns one contiguous shard of the partitioning and can
keep the leading partitions of that shard resident in its own memory.
A resident partition is shipped once (an explicit whole-partition copy
the first time it carries active edges) and is free afterwards — its
kernel reads local device memory instead of crossing PCIe again.

The single-device engines deliberately have **no** residency, exactly as
in the paper: its testbed graphs oversubscribe one GPU's memory, so the
partitions churn and caching buys nothing.  Sharding changes that — the
aggregate capacity grows with the device count while each shard shrinks,
which is precisely the regime where residency pays.

The policy is static and deterministic: each device marks partitions
resident in ascending index order until its edge-cache budget (the
configured per-device memory) is spent.  Hub sorting makes this the
right prefix to pin — after reordering, the leading partitions hold the
hub vertices that stay active across iterations.
"""

from __future__ import annotations

import numpy as np

from repro.graph.partition import Partitioning, ShardedPartitioning
from repro.sim.config import HardwareConfig

__all__ = ["ShardResidency"]


class ShardResidency:
    """Static resident-partition sets, one per device."""

    def __init__(
        self,
        partitioning: Partitioning,
        sharding: ShardedPartitioning,
        config: HardwareConfig,
    ):
        self.partitioning = partitioning
        self.sharding = sharding
        num_partitions = partitioning.num_partitions
        #: resident[p] — partition ``p`` fits in its owning device's memory.
        self.resident = np.zeros(num_partitions, dtype=bool)
        #: loaded[p] — the one-off residency copy has been charged already.
        self.loaded = np.zeros(num_partitions, dtype=bool)
        for shard in sharding:
            budget = config.gpu_memory_bytes
            for index in shard.partition_indices():
                edge_bytes = partitioning[index].edge_bytes
                if edge_bytes > budget:
                    break
                self.resident[index] = True
                budget -= edge_bytes

    @property
    def num_resident(self) -> int:
        """Total partitions resident across all devices."""
        return int(self.resident.sum())

    def reset(self) -> None:
        """Forget what has been loaded (between runs)."""
        self.loaded[:] = False

    def split_billable(self, partition_indices: list[int]) -> tuple[list[int], list[int]]:
        """Split a task's partitions into (billable, already-resident).

        Billable partitions must be priced by the transfer engine this
        iteration: every non-resident partition, plus resident partitions
        on their first touch (which are marked loaded as a side effect).
        """
        billable: list[int] = []
        free: list[int] = []
        for index in partition_indices:
            if self.resident[index] and self.loaded[index]:
                free.append(index)
            else:
                if self.resident[index]:
                    self.loaded[index] = True
                billable.append(index)
        return billable, free
