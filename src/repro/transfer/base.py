"""Common interface of the transfer engines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import EdgePartition
from repro.sim.config import HardwareConfig
from repro.sim.pcie import PCIeModel

__all__ = ["EngineKind", "TransferOutcome", "TransferEngine"]


class EngineKind(str, Enum):
    """The transfer management approaches of Table III."""

    EXP_FILTER = "ExpTM-F"
    EXP_COMPACTION = "ExpTM-C"
    IMP_ZERO_COPY = "ImpTM-ZC"
    IMP_UNIFIED_MEMORY = "ImpTM-UM"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TransferOutcome:
    """What one engine invocation moved and what it cost.

    Attributes
    ----------
    engine:
        Which engine produced the outcome.
    bytes_transferred:
        Useful edge-data bytes that crossed PCIe (the Table VI volume).
    transfer_time:
        Seconds of PCIe occupancy.
    cpu_time:
        Seconds of host-CPU work (compaction only).
    overlapped:
        Whether the transfer overlaps the kernel on the GPU (implicit
        engines) or precedes it (explicit engines).
    detail:
        Engine-specific extras (TLP counts, page faults, ...), used by the
        analysis figures and tests.
    """

    engine: EngineKind
    bytes_transferred: int
    transfer_time: float
    cpu_time: float = 0.0
    overlapped: bool = False
    detail: dict[str, float] = field(default_factory=dict)


class TransferEngine(ABC):
    """Base class: one engine bound to one graph and one hardware config."""

    kind: EngineKind

    def __init__(self, graph: CSRGraph, config: HardwareConfig):
        self.graph = graph
        self.config = config
        self.pcie = PCIeModel(config)

    @abstractmethod
    def transfer(self, partition: EdgePartition, active_vertices: np.ndarray) -> TransferOutcome:
        """Move the active subgraph of ``partition`` to the GPU.

        ``active_vertices`` are the active vertex ids whose adjacency
        lists live in ``partition`` (callers guarantee containment).
        """

    def transfer_task(
        self,
        partitions: Sequence[EdgePartition],
        active_vertices: np.ndarray,
        cuts: np.ndarray,
    ) -> TransferOutcome:
        """Aggregate outcome of transferring one multi-partition task.

        ``active_vertices`` is the task's sorted active-vertex array and
        ``cuts`` (length ``len(partitions) + 1``) slices it per partition:
        partition ``i`` owns ``active_vertices[cuts[i]:cuts[i + 1]]``.

        The default implementation loops over :meth:`transfer`; the hot
        engines override it with a vectorised pass that produces the same
        per-partition accounting (including per-partition TLP rounding)
        without one Python call per partition.
        """
        bytes_total = 0
        transfer_time = 0.0
        cpu_time = 0.0
        overlapped = False
        for position, partition in enumerate(partitions):
            outcome = self.transfer(partition, active_vertices[cuts[position] : cuts[position + 1]])
            bytes_total += outcome.bytes_transferred
            transfer_time += outcome.transfer_time
            cpu_time += outcome.cpu_time
            overlapped = overlapped or outcome.overlapped
        return TransferOutcome(
            engine=self.kind,
            bytes_transferred=bytes_total,
            transfer_time=transfer_time,
            cpu_time=cpu_time,
            overlapped=overlapped,
        )

    def reset(self) -> None:
        """Clear any cross-iteration state (page caches); default no-op."""

    def _active_degrees(self, active_vertices: np.ndarray) -> np.ndarray:
        return self.graph.out_degrees[np.asarray(active_vertices, dtype=np.int64)]

    def _edge_start_bytes(self, active_vertices: np.ndarray) -> np.ndarray:
        starts = self.graph.row_offset[np.asarray(active_vertices, dtype=np.int64)]
        return starts * self.graph.edge_bytes_per_edge
