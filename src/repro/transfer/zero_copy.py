"""ImpTM-zero-copy: on-demand per-vertex access over pinned host memory.

The zero-copy approach (EMOGI — Section II-C) maps pinned host memory into
the GPU address space; GPU warps read the neighbors of each active vertex
directly with merged, 128-byte-aligned memory requests.  No CPU work and
no page migration, but PCIe efficiency depends on how well the requests
saturate: low-degree vertices issue mostly-empty requests (Figure 3e/3f),
and there is no data reuse across iterations.
"""

from __future__ import annotations

import numpy as np

from repro.graph.partition import EdgePartition
from repro.transfer.base import EngineKind, TransferEngine, TransferOutcome

__all__ = ["ZeroCopyEngine"]


class ZeroCopyEngine(TransferEngine):
    """Fine-grained zero-copy transfers of active adjacency lists."""

    kind = EngineKind.IMP_ZERO_COPY

    def transfer(self, partition: EdgePartition, active_vertices: np.ndarray) -> TransferOutcome:
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        if active_vertices.size == 0:
            return TransferOutcome(self.kind, 0, 0.0, overlapped=True)
        degrees = self._active_degrees(active_vertices)
        start_bytes = self._edge_start_bytes(active_vertices)
        access = self.pcie.zero_copy_access(
            degrees,
            start_bytes=start_bytes,
            value_bytes=self.graph.edge_bytes_per_edge,
        )
        return TransferOutcome(
            engine=self.kind,
            bytes_transferred=access.payload_bytes,
            transfer_time=access.time,
            cpu_time=0.0,
            overlapped=True,
            detail={
                "requests": float(access.num_requests),
                "tlps": float(access.num_tlps),
                "active_vertices": float(active_vertices.size),
                "active_edges": float(degrees.sum()),
            },
        )
