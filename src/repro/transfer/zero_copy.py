"""ImpTM-zero-copy: on-demand per-vertex access over pinned host memory.

The zero-copy approach (EMOGI — Section II-C) maps pinned host memory into
the GPU address space; GPU warps read the neighbors of each active vertex
directly with merged, 128-byte-aligned memory requests.  No CPU work and
no page migration, but PCIe efficiency depends on how well the requests
saturate: low-degree vertices issue mostly-empty requests (Figure 3e/3f),
and there is no data reuse across iterations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.partition import EdgePartition
from repro.transfer.base import EngineKind, TransferEngine, TransferOutcome

__all__ = ["ZeroCopyEngine"]


class ZeroCopyEngine(TransferEngine):
    """Fine-grained zero-copy transfers of active adjacency lists."""

    kind = EngineKind.IMP_ZERO_COPY

    def transfer(self, partition: EdgePartition, active_vertices: np.ndarray) -> TransferOutcome:
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        if active_vertices.size == 0:
            return TransferOutcome(self.kind, 0, 0.0, overlapped=True)
        degrees = self._active_degrees(active_vertices)
        start_bytes = self._edge_start_bytes(active_vertices)
        access = self.pcie.zero_copy_access(
            degrees,
            start_bytes=start_bytes,
            value_bytes=self.graph.edge_bytes_per_edge,
        )
        return TransferOutcome(
            engine=self.kind,
            bytes_transferred=access.payload_bytes,
            transfer_time=access.time,
            cpu_time=0.0,
            overlapped=True,
            detail={
                "requests": float(access.num_requests),
                "tlps": float(access.num_tlps),
                "active_vertices": float(active_vertices.size),
                "active_edges": float(degrees.sum()),
            },
        )

    def transfer_task(
        self,
        partitions: Sequence[EdgePartition],
        active_vertices: np.ndarray,
        cuts: np.ndarray,
    ) -> TransferOutcome:
        """One vectorised pass over the task's vertices.

        The zero-copy cost model is per-vertex and, within a partition,
        linear in the request and payload totals, so per-vertex requests
        are computed once and reduced per partition with exact integer
        prefix sums; the per-partition times then follow the same formula
        (and the same accumulation order) as the :meth:`transfer` loop.
        """
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        if active_vertices.size == 0:
            return TransferOutcome(self.kind, 0, 0.0, overlapped=True)
        d1 = self.graph.edge_bytes_per_edge
        degrees = self._active_degrees(active_vertices)
        requests = self.pcie.requests_for_vertices(
            degrees, start_bytes=self._edge_start_bytes(active_vertices), value_bytes=d1
        )
        request_prefix = np.concatenate([[0], np.cumsum(requests)])
        degree_prefix = np.concatenate([[0], np.cumsum(degrees)])
        requests_per_partition = request_prefix[cuts[1:]] - request_prefix[cuts[:-1]]
        payload_per_partition = (degree_prefix[cuts[1:]] - degree_prefix[cuts[:-1]]) * d1
        transfer_time = 0.0
        for partition_requests, partition_payload in zip(
            requests_per_partition.tolist(), payload_per_partition.tolist()
        ):
            transfer_time += self.pcie.zero_copy_time(partition_requests, partition_payload)
        return TransferOutcome(
            engine=self.kind,
            bytes_transferred=int(payload_per_partition.sum()),
            transfer_time=transfer_time,
            cpu_time=0.0,
            overlapped=True,
        )
