"""ExpTM-filter: transfer whole active partitions with explicit copy.

The filter-based explicit approach (GraphReduce, GTS, Graphie — Section
II-B) only checks *whether* a partition contains an active edge; if it
does, the entire partition is shipped with ``cudaMemcpy``.  The upside is
maximal PCIe utilisation (fully saturated TLPs, no CPU work); the downside
is redundant bytes whenever the partition's active-edge proportion is low
(Figure 3a).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.partition import EdgePartition
from repro.transfer.base import EngineKind, TransferEngine, TransferOutcome

__all__ = ["ExplicitFilterEngine"]


class ExplicitFilterEngine(TransferEngine):
    """Whole-partition explicit transfers."""

    kind = EngineKind.EXP_FILTER

    def transfer(self, partition: EdgePartition, active_vertices: np.ndarray) -> TransferOutcome:
        active_vertices = np.asarray(active_vertices, dtype=np.int64)
        if active_vertices.size == 0:
            # A partition with no active edges is filtered out entirely.
            return TransferOutcome(self.kind, 0, 0.0)
        num_bytes = partition.edge_bytes
        time = self.pcie.explicit_copy_time(num_bytes)
        active_edges = int(self._active_degrees(active_vertices).sum())
        return TransferOutcome(
            engine=self.kind,
            bytes_transferred=num_bytes,
            transfer_time=time,
            cpu_time=0.0,
            overlapped=False,
            detail={
                "tlps": float(self.pcie.explicit_copy_tlps(num_bytes)),
                "active_edges": float(active_edges),
                "partition_edges": float(partition.num_edges),
                "redundant_bytes": float(num_bytes - active_edges * self.graph.edge_bytes_per_edge),
            },
        )

    def transfer_task(
        self,
        partitions: Sequence[EdgePartition],
        active_vertices: np.ndarray,
        cuts: np.ndarray,
    ) -> TransferOutcome:
        """Whole-partition pricing without the per-partition degree gathers.

        Filter cost only depends on each partition's byte size and whether
        it holds any active vertex, so the cuts array answers everything.
        """
        bytes_total = 0
        transfer_time = 0.0
        for position, partition in enumerate(partitions):
            if cuts[position + 1] > cuts[position]:
                bytes_total += partition.edge_bytes
                transfer_time += self.pcie.explicit_copy_time(partition.edge_bytes)
        return TransferOutcome(
            engine=self.kind,
            bytes_transferred=bytes_total,
            transfer_time=transfer_time,
            cpu_time=0.0,
            overlapped=False,
        )
