"""Adaptive device-memory cache over partition-granularity edge data.

The paper's thesis is that CPU–GPU transfer is *the* cost to manage, and
that the decision of what to move must adapt per iteration.  The
:class:`CacheManager` applies the same argument to what *stays*: it owns
a per-device byte budget over the edge partitions each device's shard
contains, and a pluggable :mod:`~repro.cache.policy` decides which
partitions occupy it.  A resident partition's whole-partition (filter
style) transfer is free — its kernel reads device memory — while every
miss is billed as an explicit copy and then offered to the policy for
admission.

The manager is one object per execution session, shared by every code
path that moves whole partitions:

* the HyTGraph engine consults it during engine selection (resident
  partitions price the filter engine at zero) and bills misses through
  it;
* the pure filter system (ExpTM-F) skips the copy for resident
  partitions under adaptive policies;
* the batch runner's cross-query dedup composes with it — a partition
  admitted after query A's ship is a *hit* for queries B..K in every
  later super-iteration, which is the cross-super-iteration transfer
  cache the static design lacked (``SharedTransferState`` still dedups
  transient, non-admitted ships inside one super-iteration).

Frontier observations aggregate over a *window* (one iteration of a solo
run, one super-iteration of a batch — every live query's frontier
counts) and fold into the policy's scores when the next window opens, so
eviction decisions are made once per iteration boundary, exactly the
"between iterations" cadence the frontier-aware policy needs.
"""

from __future__ import annotations

import numpy as np

from repro.cache.policy import EvictionPolicy, make_policy
from repro.graph.partition import Partitioning, ShardedPartitioning
from repro.obs.tracer import NULL_TRACER
from repro.sim.config import HardwareConfig

__all__ = ["CacheManager"]

#: Counter names exposed in :meth:`CacheManager.counters` /
#: :meth:`CacheManager.delta`, matching the ``cache_*`` fields of
#: :class:`~repro.metrics.results.IterationStats`.
COUNTER_FIELDS = ("hit_bytes", "miss_bytes", "evicted_bytes", "hits", "misses", "evictions")


class CacheManager:
    """Per-device partition residency under one eviction policy."""

    def __init__(
        self,
        partitioning: Partitioning,
        sharding: ShardedPartitioning,
        config: HardwareConfig,
        policy: str | EvictionPolicy = "static-prefix",
        budget_bytes: int | None = None,
    ):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("cache budget must be non-negative")
        self.partitioning = partitioning
        self.sharding = sharding
        self.config = config
        self.num_partitions = partitioning.num_partitions
        self.num_devices = sharding.num_devices
        #: Per-device cache budget in bytes (``--cache-budget`` or the
        #: device's edge-cache memory).
        per_device = config.gpu_memory_bytes if budget_bytes is None else budget_bytes
        self.per_device_budget = per_device
        self.budget_bytes = [per_device] * self.num_devices
        self.partition_bytes = np.array(
            [partitioning[p].edge_bytes for p in range(self.num_partitions)], dtype=np.int64
        )
        self.partition_edges = partitioning.edges_per_partition().astype(np.int64)
        self.device_of = np.array(
            [sharding.device_of_partition(p) for p in range(self.num_partitions)], dtype=np.int64
        )
        self.policy = make_policy(policy)
        self.policy.bind(self)
        #: Per-device byte caps per scheduling class (rank -> bytes);
        #: empty = classless admission (the historical behaviour).
        self.class_budgets: dict[float, int] = {}
        #: Class rank of the query currently filling the cache (set by
        #: the batch runner around each query's planning; ``None`` when
        #: no class context applies).
        self.fill_class: float | None = None
        #: resident[p] — partition ``p``'s edge data sits in its owning
        #: device's memory right now.
        self.resident = np.zeros(self.num_partitions, dtype=bool)
        #: class_of[p] — best (lowest) class rank that admitted or hit
        #: partition ``p`` while resident (``inf`` = unclassified).
        self.class_of = np.full(self.num_partitions, np.inf)
        #: loaded[p] — static-prefix first-touch flag (the one-off
        #: residency copy has been charged already).
        self.loaded = np.zeros(self.num_partitions, dtype=bool)
        self.used_bytes = [0] * self.num_devices
        self._window_active = np.zeros(self.num_partitions, dtype=np.int64)
        self._window_dirty = False
        self._counters = dict.fromkeys(COUNTER_FIELDS, 0)
        #: Bytes dropped by fault-driven :meth:`invalidate` calls (kept
        #: out of the eviction counters: residency lost to a fault is
        #: not a policy decision).
        self.invalidated_bytes = 0
        #: Span sink for cache events (no-op unless a service installs a
        #: recording tracer; see :mod:`repro.obs`).
        self.tracer = NULL_TRACER
        self._install_initial_residency()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _install_initial_residency(self) -> None:
        self.resident = self.policy.initial_resident()
        self.used_bytes = [
            int(self.partition_bytes[self.resident & (self.device_of == device)].sum())
            for device in range(self.num_devices)
        ]

    def reset(self) -> None:
        """Back to a cold cache (between runs; once per batch).

        The static policy keeps its pinned set and only forgets the
        first-touch flags — exactly :class:`ShardResidency.reset` —
        while adaptive policies drop every resident partition and all
        recency/score state.
        """
        self.loaded[:] = False
        self.class_of[:] = np.inf
        self._window_active[:] = 0
        self._window_dirty = False
        self._counters = dict.fromkeys(COUNTER_FIELDS, 0)
        self.invalidated_bytes = 0
        self.policy.reset()
        if self.adaptive:
            self.resident[:] = False
            self.used_bytes = [0] * self.num_devices
        else:
            self._install_initial_residency()

    # ------------------------------------------------------------------
    # Fault recovery (in-place mutation: callers keep their reference)
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every resident partition without billing evictions.

        Fault-driven: the bytes were lost (device died, shards moved),
        not chosen for replacement, so the loss lands in
        :attr:`invalidated_bytes` rather than the eviction counters and
        the policy's recency/score state restarts cold.
        """
        if self.tracer.enabled:
            self.tracer.instant(
                "cache", "invalidate", track="cache",
                bytes=self.resident_bytes, partitions=self.num_resident,
            )
        self.invalidated_bytes += self.resident_bytes
        self.resident[:] = False
        self.class_of[:] = np.inf
        self.loaded[:] = False
        self.used_bytes = [0] * self.num_devices
        self.policy.reset()

    def set_budget(self, budget_bytes: int) -> None:
        """Change the per-device budget mid-run, evicting down to it."""
        if budget_bytes < 0:
            raise ValueError("cache budget must be non-negative")
        self.per_device_budget = budget_bytes
        self.budget_bytes = [budget_bytes] * self.num_devices
        self._evict_over_budget()

    def shrink_budget(self, factor: float) -> None:
        """Memory pressure: scale the per-device budget by ``factor``."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("memory-pressure factor must be in [0, 1]")
        self.set_budget(int(self.per_device_budget * factor))

    def _evict_over_budget(self) -> None:
        """Evict trailing resident partitions until every device fits.

        Trailing-first keeps the static policy's pinned *prefix* shape
        intact, and for adaptive policies it is simply a deterministic
        order; these are real (billed) evictions — the partitions are
        pushed out to make the budget, not lost to a fault.
        """
        for device in range(self.num_devices):
            budget = self.budget_bytes[device]
            if self.used_bytes[device] <= budget:
                continue
            for index in self.resident_on_device(device)[::-1]:
                self._evict(int(index))
                if self.used_bytes[device] <= budget:
                    break

    def reshard(self, sharding: ShardedPartitioning) -> None:
        """Rebind to a new sharding after device loss, in place.

        All residency is invalidated first — survivors' contents no
        longer match their new shards — then the device maps and budgets
        are rebuilt for the new device count.  The static policy re-pins
        its prefix on the survivors with cleared first-touch flags, so
        the re-warm transfers are billed naturally on next use.
        """
        self.invalidate()
        self.sharding = sharding
        self.num_devices = sharding.num_devices
        self.budget_bytes = [self.per_device_budget] * self.num_devices
        self.used_bytes = [0] * self.num_devices
        self.device_of = np.array(
            [sharding.device_of_partition(p) for p in range(self.num_partitions)],
            dtype=np.int64,
        )
        if not self.adaptive:
            self._install_initial_residency()

    # ------------------------------------------------------------------
    # Per-class budgets (multi-tenant serving)
    # ------------------------------------------------------------------
    def set_class_budgets(self, budgets: dict | None) -> None:
        """Cap each scheduling class's per-device resident bytes.

        ``budgets`` maps a class rank (the batch runner's priority rank;
        lower = more urgent) to the per-device bytes that class's fills
        may keep resident.  A class without an entry is uncapped.  While
        any budget is set, an eviction chosen to admit a worse class's
        partition never displaces a better class's — that is what keeps
        interactive working sets resident while BULK scans churn the
        rest of the device memory.  ``None``/empty restores classless
        admission (bitwise the historical behaviour).
        """
        if not budgets:
            self.class_budgets = {}
            return
        normalized: dict[float, int] = {}
        for rank, cap in budgets.items():
            cap = int(cap)
            if cap < 0:
                raise ValueError("class cache budget must be non-negative")
            normalized[float(rank)] = cap
        self.class_budgets = normalized

    def set_fill_class(self, rank: float | None) -> None:
        """Declare which class's query is about to fill the cache."""
        self.fill_class = None if rank is None else float(rank)

    def class_resident_bytes(self, rank: float, device: int | None = None) -> int:
        """Resident bytes currently attributed to one class."""
        mask = self.resident & (self.class_of == float(rank))
        if device is not None:
            mask &= self.device_of == device
        return int(self.partition_bytes[mask].sum())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def adaptive(self) -> bool:
        """Whether residency changes at runtime (non-static policy)."""
        return self.policy.adaptive

    @property
    def policy_name(self) -> str:
        """Registry name of the active policy."""
        return self.policy.name

    @property
    def num_resident(self) -> int:
        """Partitions resident across all devices right now."""
        return int(self.resident.sum())

    @property
    def resident_bytes(self) -> int:
        """Bytes of edge data resident across all devices right now."""
        return int(sum(self.used_bytes))

    def resident_on_device(self, device: int) -> np.ndarray:
        """Indices of the partitions resident on ``device`` (ascending)."""
        return np.flatnonzero(self.resident & (self.device_of == device))

    def reuse_scores(self) -> np.ndarray | None:
        """The policy's per-partition expected-reuse scores (or ``None``)."""
        return self.policy.reuse_scores()

    def would_admit(self, index: int) -> bool:
        """Dry-run admission check: would :meth:`fill` keep this partition?

        Lets cost models avoid *investing* in a whole-partition ship
        whose bytes the policy would refuse to keep anyway (nothing is
        evicted by this call).
        """
        if not self.adaptive:
            return False
        if self.resident[index]:
            return True
        device = int(self.device_of[index])
        size = int(self.partition_bytes[index])
        budget = self.budget_bytes[device]
        if size > budget:
            return False
        needed = self.used_bytes[device] + size - budget
        return needed <= 0 or self.policy.victims(device, index, needed) is not None

    def counters(self) -> dict[str, int]:
        """Cumulative hit/miss/eviction counters since the last reset."""
        return dict(self._counters)

    def snapshot_counters(self) -> tuple[int, ...]:
        """Cheap counter snapshot for windowed deltas."""
        return tuple(self._counters[field] for field in COUNTER_FIELDS)

    def delta(self, snapshot: tuple[int, ...]) -> dict[str, int]:
        """Counter movement since ``snapshot``."""
        return {
            field: self._counters[field] - before
            for field, before in zip(COUNTER_FIELDS, snapshot)
        }

    # ------------------------------------------------------------------
    # Frontier window (iteration-boundary eviction cadence)
    # ------------------------------------------------------------------
    def begin_iteration(self) -> None:
        """Open a new observation window; commit and evict for the last one.

        Called once per iteration by solo drivers and once per
        super-iteration by the batch runner (*before* any query plans),
        so the frontier-aware policy rescores and evicts collapsed
        partitions exactly once per boundary no matter how many queries
        observed frontiers inside the window.
        """
        if not self._window_dirty:
            return
        window = self._window_active
        self._window_active = np.zeros(self.num_partitions, dtype=np.int64)
        self._window_dirty = False
        if not self.adaptive:
            return
        for victim in self.policy.commit_window(window):
            if self.resident[victim]:
                self._evict(victim)

    def observe_frontier(self, active_edges_per_partition: np.ndarray) -> None:
        """Record one query's per-partition active-edge counts.

        Multiple queries of a batch super-iteration each observe their
        own frontier; the window keeps the per-partition maximum so a
        partition hot for *any* live query counts as hot.
        """
        np.maximum(
            self._window_active, active_edges_per_partition, out=self._window_active
        )
        self._window_dirty = True
        self.policy.observe_window(self._window_active)

    # ------------------------------------------------------------------
    # Lookup and billing
    # ------------------------------------------------------------------
    def split_billable(self, partition_indices: list[int]) -> tuple[list[int], list[int]]:
        """Split a task's partitions into (billable, cache-hit).

        Static mode reproduces :class:`ShardResidency.split_billable`
        bitwise: resident partitions are billable on first touch and
        free afterwards.  Adaptive mode: resident partitions hit (their
        recency refreshes), everything else must be billed — and then
        offered back through :meth:`fill` once it is on the device.
        """
        billable: list[int] = []
        free: list[int] = []
        if self.adaptive:
            for index in partition_indices:
                if self.resident[index]:
                    free.append(index)
                    self._record_hit(index)
                else:
                    billable.append(index)
            return billable, free
        for index in partition_indices:
            if self.resident[index] and self.loaded[index]:
                free.append(index)
                self._record_hit(index)
            else:
                if self.resident[index]:
                    self.loaded[index] = True
                billable.append(index)
        return billable, free

    def claim_billable(self, partition_indices: list[int], shared=None) -> list[int]:
        """The full billing protocol for one whole-partition (filter) ship.

        Encodes the ordering invariants every filter-transfer path must
        follow, in one place:

        1. :meth:`split_billable` — resident partitions hit for free;
        2. the batch runner's ``shared`` dedup claims the remainder
           (partitions a peer query already shipped this
           super-iteration cost this query nothing);
        3. misses are tallied only for what survives both — the copies
           that actually cross PCIe now;
        4. *every* cache-missing partition (billed here or riding a
           peer's copy) is offered for admission — the bytes are on the
           device either way.

        Returns the partitions the caller must price as explicit copies.
        """
        billable, _ = self.split_billable(list(partition_indices))
        missed = list(billable)
        if shared is not None:
            billable = shared.claim_partitions(
                billable, lambda index: int(self.partition_bytes[index])
            )
        self.record_miss(billable)
        self.fill(missed)
        return billable

    def record_miss(self, partition_indices: list[int]) -> None:
        """Tally billed whole-partition copies as cache misses."""
        for index in partition_indices:
            self._counters["misses"] += 1
            self._counters["miss_bytes"] += int(self.partition_bytes[index])

    def fill(self, partition_indices: list[int]) -> None:
        """Offer freshly shipped partitions to the policy for admission.

        Call with every partition that just crossed PCIe as a whole
        (billed by this query or deduplicated onto a peer's copy): the
        bytes are on the device either way, so keeping them costs
        nothing now and saves the next ship.  Static mode ignores this —
        its resident set never changes.
        """
        if not self.adaptive:
            return
        for index in partition_indices:
            self._admit(index)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record_hit(self, index: int) -> None:
        self._counters["hits"] += 1
        self._counters["hit_bytes"] += int(self.partition_bytes[index])
        if self.tracer.enabled:
            self.tracer.instant(
                "cache", "hit", track="cache", partition=index,
                device=int(self.device_of[index]),
                bytes=int(self.partition_bytes[index]),
            )
        if self.class_budgets and self.fill_class is not None:
            # A hit by a better class adopts the partition: it is now
            # part of that class's working set and protected as such.
            if self.fill_class < self.class_of[index]:
                self.class_of[index] = self.fill_class
        self.policy.on_hit(index)

    def _admit(self, index: int) -> None:
        if self.resident[index]:
            return
        device = int(self.device_of[index])
        size = int(self.partition_bytes[index])
        budget = self.budget_bytes[device]
        if size > budget:
            return  # can never fit; stay transient
        rank = self.fill_class if self.class_budgets else None
        if rank is not None:
            cap = self.class_budgets.get(rank)
            if cap is not None and self.class_resident_bytes(rank, device) + size > cap:
                return  # class budget exhausted; stay transient
        needed = self.used_bytes[device] + size - budget
        if needed > 0:
            victims = self.policy.victims(device, index, needed)
            if victims is None:
                return  # policy declined the admission
            if rank is not None and any(self.class_of[victim] < rank for victim in victims):
                return  # never displace a better class's working set
            for victim in victims:
                self._evict(victim)
            if self.used_bytes[device] + size > budget:
                return  # victims did not free enough after all
        self.resident[index] = True
        self.class_of[index] = np.inf if rank is None else rank
        self.used_bytes[device] += size
        self.policy.on_admit(index)
        if self.tracer.enabled:
            self.tracer.instant(
                "cache", "admit", track="cache", partition=index,
                device=device, bytes=size,
            )

    def _evict(self, index: int) -> None:
        if not self.resident[index]:
            return
        device = int(self.device_of[index])
        self.resident[index] = False
        self.class_of[index] = np.inf
        self.used_bytes[device] -= int(self.partition_bytes[index])
        self._counters["evictions"] += 1
        self._counters["evicted_bytes"] += int(self.partition_bytes[index])
        if self.tracer.enabled:
            self.tracer.instant(
                "cache", "evict", track="cache", partition=index,
                device=device, bytes=int(self.partition_bytes[index]),
            )
