"""Pluggable eviction policies for the device-memory partition cache.

A policy decides *which* partitions occupy each device's cache budget;
the :class:`~repro.cache.manager.CacheManager` owns the mechanics (byte
accounting, resident sets, hit/miss/eviction counters) and calls into
the policy at three points:

* :meth:`EvictionPolicy.on_hit` — a resident partition was read again;
* :meth:`EvictionPolicy.victims` — a shipped partition wants residency
  and the device is over budget: pick what to sacrifice (or decline);
* :meth:`EvictionPolicy.commit_window` — one iteration's aggregated
  frontier observation closed: rescore partitions and name the resident
  ones whose activity collapsed.

Three policies ship:

``static-prefix``
    Reproduces the historical :class:`~repro.transfer.residency.ShardResidency`
    behaviour bitwise: each device pins the leading partitions of its
    shard until the budget is spent, pays one first-touch copy per pinned
    partition, and never evicts or admits anything afterwards.
``lru``
    Classic recency cache: every whole-partition ship is admitted,
    evicting the least-recently-touched residents to make room.
``frontier-aware``
    Scores partitions by active-edge density (an exponential moving
    average over iterations) and evicts residents whose frontier
    collapsed — ``idle_evict_after`` consecutive iterations without an
    active edge — so hot partitions of the *current* wavefront can take
    their place.  Admission never displaces a partition scoring higher
    than the newcomer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.manager import CacheManager

__all__ = [
    "EvictionPolicy",
    "StaticPrefixPolicy",
    "LruPolicy",
    "FrontierAwarePolicy",
    "CACHE_POLICIES",
    "make_policy",
]


class EvictionPolicy(ABC):
    """Strategy object deciding cache residency, one instance per manager."""

    #: Registry / CLI name.
    name: str = "policy"

    #: Adaptive policies start empty and (re)populate at runtime; the
    #: static policy pins its resident set once at construction.
    adaptive: bool = True

    def bind(self, manager: "CacheManager") -> None:
        """Attach to the owning manager and size the per-partition state."""
        self.manager = manager
        self.reset()

    def reset(self) -> None:
        """Forget all recency/score state (between cold runs)."""

    def initial_resident(self) -> np.ndarray:
        """Partitions resident before the first iteration (static only)."""
        return np.zeros(self.manager.num_partitions, dtype=bool)

    def on_hit(self, partition: int) -> None:
        """A resident partition's cached bytes were read again."""

    def on_admit(self, partition: int) -> None:
        """A shipped partition was admitted into the resident set."""

    def observe_window(self, window_active_edges: np.ndarray) -> None:
        """Mid-iteration view of the accumulating frontier window."""

    def reuse_scores(self) -> np.ndarray | None:
        """Per-partition expected-reuse scores (``None``: policy has none).

        Cost models may use these to *invest*: a partition that keeps
        carrying active edges is worth one whole-partition ship now,
        because every later iteration reads it from the cache for free.
        """
        return None

    @abstractmethod
    def victims(self, device: int, incoming: int, needed_bytes: int) -> list[int] | None:
        """Residents of ``device`` to evict so ``incoming`` fits.

        Returns ``None`` to decline admission (the ship stays transient);
        otherwise the returned partitions are evicted and ``incoming``
        is admitted.  ``needed_bytes`` is how many bytes must be freed.
        """

    def commit_window(self, window_active_edges: np.ndarray) -> list[int]:
        """Fold one iteration's frontier observation; return partitions to evict.

        ``window_active_edges[p]`` is the largest active-edge count any
        query observed in partition ``p`` since the previous commit.
        """
        return []


class StaticPrefixPolicy(EvictionPolicy):
    """Pin each shard's leading partitions; never evict, never admit.

    Bitwise-identical to the pre-cache :class:`ShardResidency` behaviour:
    the resident prefix is computed once from the per-device budget, each
    resident partition is billed exactly once on first touch, and
    everything else is re-billed every iteration.
    """

    name = "static-prefix"
    adaptive = False

    def initial_resident(self) -> np.ndarray:
        manager = self.manager
        resident = np.zeros(manager.num_partitions, dtype=bool)
        for device in range(manager.num_devices):
            budget = manager.budget_bytes[device]
            for index in manager.sharding[device].partition_indices():
                edge_bytes = manager.partition_bytes[index]
                if edge_bytes > budget:
                    break
                resident[index] = True
                budget -= edge_bytes
        return resident

    def victims(self, device: int, incoming: int, needed_bytes: int) -> list[int] | None:
        return None  # the static set never changes


class LruPolicy(EvictionPolicy):
    """Evict the least-recently-touched resident to admit every ship."""

    name = "lru"

    def reset(self) -> None:
        self._tick = 0
        self._last_touch = np.zeros(self.manager.num_partitions, dtype=np.int64)

    def _touch(self, partition: int) -> None:
        self._tick += 1
        self._last_touch[partition] = self._tick

    def on_hit(self, partition: int) -> None:
        self._touch(partition)

    def on_admit(self, partition: int) -> None:
        self._touch(partition)

    def victims(self, device: int, incoming: int, needed_bytes: int) -> list[int] | None:
        # Pure selection: recency is stamped on admission (on_admit), so
        # dry runs through CacheManager.would_admit leave no trace.
        manager = self.manager
        chosen: list[int] = []
        freed = 0
        candidates = manager.resident_on_device(device)
        order = candidates[np.argsort(self._last_touch[candidates], kind="stable")]
        for victim in order:
            if freed >= needed_bytes:
                break
            chosen.append(int(victim))
            freed += manager.partition_bytes[victim]
        return chosen if freed >= needed_bytes else None


class FrontierAwarePolicy(EvictionPolicy):
    """Score partitions by active-edge density; evict the collapsed ones.

    The score is an exponential moving average of per-iteration
    active-edge density (active edges / partition edges), so partitions
    that were recently hot keep priority for a few iterations after
    their frontier moves on.  A resident partition that saw no active
    edge for ``idle_evict_after`` consecutive iterations is considered
    collapsed and evicted at the iteration boundary, freeing budget for
    the partitions the wavefront is entering.
    """

    name = "frontier-aware"

    def __init__(self, decay: float = 0.5, idle_evict_after: int = 2):
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        if idle_evict_after < 1:
            raise ValueError("idle_evict_after must be at least 1")
        self.decay = decay
        self.idle_evict_after = idle_evict_after

    def reset(self) -> None:
        num_partitions = self.manager.num_partitions
        self._score = np.zeros(num_partitions, dtype=np.float64)
        self._idle = np.zeros(num_partitions, dtype=np.int64)
        self._window_density = np.zeros(num_partitions, dtype=np.float64)
        self._edges_safe = np.maximum(self.manager.partition_edges, 1).astype(np.float64)

    def _effective_score(self, partition: int) -> float:
        # The EMA lags one iteration; blend in the current window so a
        # partition the wavefront just entered can displace cold ones.
        return max(self._score[partition], self._window_density[partition])

    def reuse_scores(self) -> np.ndarray:
        return np.maximum(self._score, self._window_density)

    def observe_window(self, window_active_edges: np.ndarray) -> None:
        self._window_density = window_active_edges / self._edges_safe

    def commit_window(self, window_active_edges: np.ndarray) -> list[int]:
        density = window_active_edges / self._edges_safe
        self._score = self.decay * self._score + (1.0 - self.decay) * density
        active = window_active_edges > 0
        self._idle[active] = 0
        self._idle[~active] += 1
        self._window_density = density
        collapsed = self.manager.resident & (self._idle >= self.idle_evict_after)
        return [int(p) for p in np.flatnonzero(collapsed)]

    def victims(self, device: int, incoming: int, needed_bytes: int) -> list[int] | None:
        manager = self.manager
        incoming_score = self._effective_score(incoming)
        candidates = manager.resident_on_device(device)
        scores = np.array([self._effective_score(int(p)) for p in candidates])
        order = candidates[np.argsort(scores, kind="stable")]
        chosen: list[int] = []
        freed = 0
        for victim in order:
            if freed >= needed_bytes:
                break
            if self._effective_score(int(victim)) >= incoming_score:
                # Never displace a partition at least as hot as the
                # newcomer; the ship stays transient instead.
                return None
            chosen.append(int(victim))
            freed += manager.partition_bytes[victim]
        return chosen if freed >= needed_bytes else None


CACHE_POLICIES: dict[str, type[EvictionPolicy]] = {
    StaticPrefixPolicy.name: StaticPrefixPolicy,
    LruPolicy.name: LruPolicy,
    FrontierAwarePolicy.name: FrontierAwarePolicy,
}


def make_policy(name: str | EvictionPolicy) -> EvictionPolicy:
    """Instantiate a policy by registry name (or pass an instance through)."""
    if isinstance(name, EvictionPolicy):
        return name
    try:
        policy_cls = CACHE_POLICIES[name.lower()]
    except KeyError:
        raise KeyError(
            "unknown cache policy %r; available: %s" % (name, ", ".join(sorted(CACHE_POLICIES)))
        ) from None
    return policy_cls()
