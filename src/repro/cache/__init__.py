"""Adaptive device-memory cache subsystem.

:class:`~repro.cache.manager.CacheManager` owns per-device byte budgets
and partition-granularity residency sets; :mod:`repro.cache.policy`
provides the pluggable eviction policies (``static-prefix``, ``lru``,
``frontier-aware``).  The execution runtime builds one manager per
session (:class:`~repro.runtime.context.ExecutionContext`) and every
whole-partition transfer path bills through it.
"""

from repro.cache.manager import CacheManager
from repro.cache.policy import (
    CACHE_POLICIES,
    EvictionPolicy,
    FrontierAwarePolicy,
    LruPolicy,
    StaticPrefixPolicy,
    make_policy,
)

__all__ = [
    "CacheManager",
    "CACHE_POLICIES",
    "EvictionPolicy",
    "FrontierAwarePolicy",
    "LruPolicy",
    "StaticPrefixPolicy",
    "make_policy",
]
