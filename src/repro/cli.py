"""Command-line interface.

Six subcommands cover the workflows a user of the original HyTGraph
binaries would expect, plus the serving layer on top:

``repro-graph info``      — describe a dataset stand-in (Table IV style row);
``repro-graph run``       — run one algorithm on one dataset with one system;
``repro-graph compare``   — run one workload on several systems side by side;
``repro-graph batch``     — serve a batch of concurrent queries on one system;
``repro-graph serve``     — serve a mixed-priority request trace through
                            :class:`repro.service.GraphService` and report
                            per-class latency percentiles, SLA attainment
                            and admission decisions;
``repro-graph inspect``   — the query flight recorder: reconstruct one
                            query's latency breakdown from a Chrome trace
                            captured with ``--trace-out``.

``run``, ``compare`` and ``batch`` are thin adapters over the same
:class:`~repro.service.GraphService` the ``serve`` command exposes in
full — one warmed execution session per (graph, config), typed query
requests underneath.

Examples
--------
::

    repro-graph info --dataset FK
    repro-graph run --dataset SK --algorithm sssp --system hytgraph --scale 0.5
    repro-graph compare --dataset UK --algorithm pagerank --systems subway emogi hytgraph
    repro-graph batch --dataset UK --algorithm sssp --num-queries 16 --devices 2
    repro-graph serve --dataset UK --system hytgraph --point-lookups 8 --analytical 2
    repro-graph serve --dataset SK --trace trace.json --budget 64M --admission queue
    repro-graph serve --dataset SK --trace-out spans.json --stats-json stats.json
    repro-graph inspect spans.json --query q3
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

from repro.algorithms import ALGORITHMS
from repro.bench.workloads import batch_sources, build_workload
from repro.cache import CACHE_POLICIES
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.properties import summarize
from repro.metrics.tables import format_table
from repro.service import (
    ARRIVAL_PROCESSES,
    GraphService,
    QueryRequest,
    RequestStatus,
    ServiceConfig,
    load_trace_file,
    synthetic_mixed_trace,
    timed_mixed_trace,
)
from repro.cluster import ClusterConfig, ClusterService
from repro.service.config import ADMISSION_POLICIES, SCHEDULING_POLICIES
from repro.sim.config import INTERCONNECT_PRESETS, NETWORK_PRESETS
from repro.systems import SYSTEMS

__all__ = ["main", "build_parser", "parse_byte_size"]

DEFAULT_COMPARE_SYSTEMS = ["exptm-f", "imptm-um", "grus", "subway", "emogi", "hytgraph"]

_BYTE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_byte_size(text: str) -> int:
    """Parse a byte count like ``1048576``, ``64M`` or ``2g``.

    Suffixes are case-insensitive: ``K``/``k`` = 1024, ``M``/``m`` =
    1024**2, ``G``/``g`` = 1024**3.
    """
    raw = text.strip().lower()
    multiplier = 1
    if raw and raw[-1] in _BYTE_SUFFIXES:
        multiplier = _BYTE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "invalid byte size %r: accepted forms are a plain integer (1048576) "
            "or an integer with a K/M/G suffix in either case (64M, 2g, 512k)" % text
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("byte size must be non-negative")
    return value * multiplier


def _add_cache_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--cache-policy", default="static-prefix", choices=sorted(CACHE_POLICIES),
        help="device-memory cache eviction policy (static-prefix reproduces "
             "the historical shard residency; lru/frontier-aware adapt per iteration)",
    )
    subparser.add_argument(
        "--cache-budget", type=parse_byte_size, default=None, metavar="BYTES",
        help="per-device cache budget in bytes, K/M/G suffixes allowed "
             "(default: the device's edge-cache memory)",
    )


def _add_backend_argument(subparser: argparse.ArgumentParser) -> None:
    # No argparse choices on purpose: unknown names reach the backend
    # registry, whose error names the *installed* backends (numba is an
    # optional dependency, so the valid set is environment-specific).
    subparser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="kernel compute backend: numpy (reference), numba (JIT, needs "
             "the optional numba dependency), array-api, or auto to pick "
             "the fastest installed (default: REPRO_BACKEND env var, else numpy)",
    )


def _add_trace_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace-out", type=Path, default=None, metavar="TRACE.json",
        help="record structured spans over simulated time and write a "
             "Chrome trace_event file (loads in Perfetto, feeds "
             "`repro-graph inspect`); tracing never changes any served "
             "number",
    )


def _add_stats_json_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--stats-json", type=Path, default=None, metavar="STATS.json",
        help="also write the machine-readable statistics as JSON",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro-graph`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-graph",
        description="HyTGraph reproduction: simulated GPU-accelerated graph processing",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="describe a dataset stand-in")
    info.add_argument("--dataset", default="SK", help="dataset name (SK, TW, FK, UK, FS)")
    info.add_argument("--scale", type=float, default=1.0, help="stand-in scale factor")

    run = subparsers.add_parser("run", help="run one algorithm on one system")
    run.add_argument("--dataset", default="SK")
    run.add_argument("--algorithm", default="sssp", choices=sorted(ALGORITHMS))
    run.add_argument("--system", default="hytgraph", choices=sorted(SYSTEMS))
    run.add_argument("--scale", type=float, default=0.5)
    run.add_argument("--gpu", default=None, help="GPU preset name (e.g. GTX-1080, P100)")
    run.add_argument("--devices", type=int, default=1,
                     help="number of GPUs (>1 enables the sharded multi-GPU layer)")
    run.add_argument("--interconnect", default=None, choices=sorted(INTERCONNECT_PRESETS),
                     help="inter-GPU link preset (default: nvlink)")
    _add_cache_arguments(run)
    _add_backend_argument(run)
    _add_trace_argument(run)
    run.add_argument("--iterations", action="store_true", help="print the per-iteration table")
    run.add_argument("--verbose", action="store_true",
                     help="print execution detail (active compute backend, "
                          "partitioning, cache residency)")

    compare = subparsers.add_parser("compare", help="run one workload on several systems")
    compare.add_argument("--dataset", default="SK")
    compare.add_argument("--algorithm", default="pagerank", choices=sorted(ALGORITHMS))
    compare.add_argument("--systems", nargs="+", default=DEFAULT_COMPARE_SYSTEMS,
                         choices=sorted(SYSTEMS))
    compare.add_argument("--scale", type=float, default=0.5)
    compare.add_argument("--gpu", default=None, help="GPU preset name")
    compare.add_argument("--devices", type=int, default=1,
                         help="number of GPUs (>1 enables the sharded multi-GPU layer)")
    compare.add_argument("--interconnect", default=None, choices=sorted(INTERCONNECT_PRESETS),
                         help="inter-GPU link preset (default: nvlink)")
    _add_cache_arguments(compare)
    _add_backend_argument(compare)

    batch = subparsers.add_parser(
        "batch", help="serve a batch of concurrent queries on one system"
    )
    batch.add_argument("--dataset", default="SK")
    batch.add_argument("--algorithm", default="sssp", choices=sorted(ALGORITHMS))
    batch.add_argument("--system", default="hytgraph", choices=sorted(SYSTEMS))
    batch.add_argument("--scale", type=float, default=0.5)
    batch.add_argument("--gpu", default=None, help="GPU preset name")
    batch.add_argument("--devices", type=int, default=1,
                       help="number of GPUs (>1 enables the sharded multi-GPU layer)")
    batch.add_argument("--interconnect", default=None, choices=sorted(INTERCONNECT_PRESETS),
                       help="inter-GPU link preset (default: nvlink)")
    batch.add_argument("--sources", type=int, nargs="+", default=None,
                       help="explicit traversal sources, one query each")
    batch.add_argument("--num-queries", type=int, default=8,
                       help="query count when --sources is not given "
                            "(top-out-degree sources for source-based algorithms)")
    batch.add_argument("--seed", type=int, default=None,
                       help="sample --num-queries sources seed-deterministically "
                            "instead of taking the top-out-degree ones")
    batch.add_argument("--no-baseline", action="store_true",
                       help="skip the sequential (unbatched) baseline runs")
    _add_cache_arguments(batch)
    _add_backend_argument(batch)
    _add_trace_argument(batch)
    _add_stats_json_argument(batch)

    serve = subparsers.add_parser(
        "serve", help="serve a mixed-priority request trace through GraphService"
    )
    serve.add_argument("--dataset", default="SK")
    serve.add_argument("--system", default="hytgraph", choices=sorted(SYSTEMS))
    serve.add_argument("--scale", type=float, default=0.5)
    serve.add_argument("--gpu", default=None, help="GPU preset name")
    serve.add_argument("--devices", type=int, default=1,
                       help="number of GPUs (>1 enables the sharded multi-GPU layer)")
    serve.add_argument("--interconnect", default=None, choices=sorted(INTERCONNECT_PRESETS),
                       help="inter-GPU link preset (default: nvlink)")
    serve.add_argument("--hosts", type=int, default=1,
                       help="simulated hosts; >1 serves through the replicated "
                            "cluster tier (--devices GPUs per host, consistent-"
                            "hash routing, cross-host failover)")
    serve.add_argument("--network", default=None, choices=sorted(NETWORK_PRESETS),
                       help="host interconnect preset for the cluster tier "
                            "(default: tcp); also enables the cluster path "
                            "at --hosts 1")
    serve.add_argument("--trace", type=Path, default=None, metavar="TRACE.json",
                       help="request trace file (JSON list, or JSON Lines for "
                            "large traces): objects with keys algorithm, source "
                            "(optional), priority (optional), deadline_s "
                            "(optional), label (optional), arrival_s (optional "
                            "simulated arrival timestamp; all-or-none across "
                            "the trace)")
    serve.add_argument("--point-lookups", type=int, default=8,
                       help="synthetic trace: interactive BFS point lookups "
                            "(used when --trace is not given)")
    serve.add_argument("--analytical", type=int, default=2,
                       help="synthetic trace: bulk PageRank analytical queries")
    serve.add_argument("--seed", type=int, default=17,
                       help="seed for the synthetic trace's lookup sources")
    serve.add_argument("--arrivals", default=None, choices=ARRIVAL_PROCESSES,
                       help="generate an arrival-stamped synthetic trace from "
                            "this process instead of the t=0 mix (event-driven "
                            "serving; --requests/--rate size it)")
    serve.add_argument("--requests", type=int, default=64,
                       help="arrival-stamped synthetic trace: request count")
    serve.add_argument("--rate", type=float, default=None, metavar="PER_S",
                       help="arrival-stamped synthetic trace: mean arrivals "
                            "per simulated second (required with --arrivals)")
    serve.add_argument("--preempt", action="store_true",
                       help="let running BULK queries yield to newly arrived "
                            "INTERACTIVE work at super-iteration boundaries "
                            "(resumed from their checkpoints)")
    serve.add_argument("--scheduling", default="priority", choices=SCHEDULING_POLICIES,
                       help="wave scheduling discipline (fifo = historical co-schedule)")
    serve.add_argument("--budget", type=parse_byte_size, default=None, metavar="BYTES",
                       help="admission budget: estimated bytes in flight per wave, "
                            "K/M/G suffixes allowed (default: unlimited)")
    serve.add_argument("--admission", default="queue", choices=ADMISSION_POLICIES,
                       help="what happens to requests that do not fit the budget")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="inject faults while serving: semicolon-separated "
                            "kind[@super][:key=value,...] entries, e.g. "
                            "'device-loss@3:device=1;transfer-flaky:p=0.05' "
                            "(kinds: device-loss, transfer-flaky, "
                            "memory-pressure, interconnect-degrade; plus "
                            "host-loss with --hosts > 1)")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the fault injector's random stream")
    serve.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="default latency SLA applied to requests without one")
    serve.add_argument("--enforce-deadlines", action="store_true",
                       help="cancel queries that exceed their deadline mid-run "
                            "instead of only recording the SLA miss")
    _add_cache_arguments(serve)
    _add_backend_argument(serve)
    _add_trace_argument(serve)
    _add_stats_json_argument(serve)

    inspect = subparsers.add_parser(
        "inspect", help="flight-record one query from a captured Chrome trace"
    )
    inspect.add_argument("trace", type=Path, metavar="TRACE.json",
                         help="Chrome trace written by --trace-out")
    inspect.add_argument("--query", default=None, metavar="NAME",
                         help="query lane to reconstruct (label or q<id>, "
                              "with or without the query: prefix); omitted, "
                              "the traced queries are listed")
    return parser


def _cmd_info(args: argparse.Namespace) -> str:
    rows = []
    names = [args.dataset] if args.dataset != "all" else dataset_names()
    for name in names:
        graph = load_dataset(name, scale=args.scale)
        rows.append(summarize(graph).as_row())
    return format_table(rows, title="Dataset stand-ins (scale=%g)" % args.scale)


def _multi_device_capable(system_name: str) -> bool:
    return getattr(SYSTEMS[system_name], "supports_multi_device", False)


def _require_multi_device_capable(system_name: str, devices: int) -> None:
    """User-input guard: one clean error for --devices on incapable systems."""
    if devices > 1 and not _multi_device_capable(system_name):
        raise SystemExit(
            "system %r has no multi-device execution path; drop --devices or pick one of: %s"
            % (system_name, ", ".join(sorted(name for name in SYSTEMS if _multi_device_capable(name))))
        )


def _cache_kwargs(args: argparse.Namespace) -> dict:
    """System kwargs for the device-memory cache CLI options.

    Rejects a ``--cache-budget`` that could not take effect: under the
    default ``static-prefix`` policy a cache exists only on multi-device
    sessions, so a single-device run would silently ignore the budget.
    """
    if (
        args.cache_budget is not None
        and args.cache_policy == "static-prefix"
        and args.devices <= 1
    ):
        raise SystemExit(
            "--cache-budget has no effect here: the default static-prefix policy "
            "builds a device cache only with --devices > 1; pick an adaptive "
            "--cache-policy (lru, frontier-aware) or add devices"
        )
    kwargs: dict = {}
    if args.cache_policy != "static-prefix":
        kwargs["cache_policy"] = args.cache_policy
    if args.cache_budget is not None:
        kwargs["cache_budget"] = args.cache_budget
    return kwargs


def _service_config(args: argparse.Namespace, system_name: str) -> ServiceConfig:
    """The ServiceConfig the CLI flags describe (adapter plumbing)."""
    try:
        return ServiceConfig(
            system=system_name,
            dataset=args.dataset,
            scale=args.scale,
            gpu=args.gpu,
            devices=args.devices,
            interconnect=getattr(args, "interconnect", None),
            scheduling=getattr(args, "scheduling", "priority"),
            admission_budget_bytes=getattr(args, "budget", None),
            admission_policy=getattr(args, "admission", "queue"),
            faults=getattr(args, "faults", None),
            chaos_seed=getattr(args, "chaos_seed", 0),
            deadline_s=getattr(args, "deadline", None),
            enforce_deadlines=getattr(args, "enforce_deadlines", False),
            preemption=getattr(args, "preempt", False),
            backend=getattr(args, "backend", None),
            tracing=getattr(args, "trace_out", None) is not None,
        )
    except ValueError as error:
        # Bad --faults specs / --deadline values are user input: one
        # clean error instead of a dataclass traceback.
        raise SystemExit(str(error))


def _service_for(args: argparse.Namespace, system_name: str, workload) -> GraphService:
    """One GraphService over the workload's graph/config."""
    config = _service_config(args, system_name)
    kwargs = _cache_kwargs(args)
    kwargs.update(config.system_kwargs())
    return GraphService.for_workload(workload, system_name, config=config, **kwargs)


def _cluster_for(args: argparse.Namespace, system_name: str, workload) -> ClusterService:
    """One ClusterService (--hosts/--network) over the workload."""
    service_config = _service_config(args, system_name)
    try:
        config = ClusterConfig(
            hosts=args.hosts,
            gpus_per_host=args.devices,
            network=args.network or "tcp",
            service=service_config,
        )
    except (KeyError, ValueError) as error:
        raise SystemExit(str(error))
    kwargs = _cache_kwargs(args)
    kwargs.update(service_config.system_kwargs())
    return ClusterService.for_workload(workload, system_name, config=config, **kwargs)


def _export_trace(service: GraphService, path: Path) -> str:
    """Write the service's recorded spans; returns the report line."""
    service.export_trace(path)
    return "trace: wrote %d span(s) to %s%s" % (
        service.tracer.total_spans,
        path,
        " (%d dropped)" % service.tracer.dropped_spans
        if service.tracer.dropped_spans
        else "",
    )


def _write_stats_json(path: Path, payload: dict) -> str:
    """Dump one machine-readable stats payload; returns the report line."""
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return "stats: wrote %s" % path


def _cmd_run(args: argparse.Namespace) -> str:
    _require_multi_device_capable(args.system, args.devices)
    workload = build_workload(
        args.dataset, args.algorithm, scale=args.scale, preset=args.gpu,
        num_devices=args.devices, interconnect=args.interconnect,
    )
    service = _service_for(args, args.system, workload)
    result = service.run(QueryRequest(algorithm=args.algorithm, source=workload.source))
    lines = [
        "%s / %s on %s (%d vertices, %d edges)" % (
            result.system, result.algorithm, args.dataset,
            workload.graph.num_vertices, workload.graph.num_edges,
        ),
        "simulated time: %.6f s over %d iterations (converged=%s)" % (
            result.total_time, result.num_iterations, result.converged,
        ),
        "transfer volume: %.3f MB (%.2fx the edge data)" % (
            result.total_transfer_bytes / 1e6,
            result.transfer_ratio(workload.graph.edge_data_bytes),
        ),
        "busy time: compaction %.6f s, PCIe %.6f s, GPU %.6f s" % (
            result.total_compaction_time, result.total_transfer_time, result.total_kernel_time,
        ),
    ]
    if args.verbose:
        lines.append("compute backend: %s" % result.extra.get("backend", "numpy"))
        lines.append(
            "partitions: %d, resident in device memory: %d" % (
                service.system.partitioning.num_partitions,
                service.system.context.num_resident_partitions,
            )
        )
    if args.devices > 1:
        lines.append(
            "multi-GPU: %d devices over %s, boundary sync %.3f KB in %.6f s" % (
                args.devices, workload.config.interconnect_kind,
                result.total_interconnect_bytes / 1024, result.total_sync_time,
            )
        )
    if args.cache_policy != "static-prefix" or result.total_cache_hit_bytes:
        lines.append(
            "device cache (%s): %.3f MB hits, %.3f MB misses, %.3f MB evicted "
            "(%.1f%% hit rate)" % (
                args.cache_policy,
                result.total_cache_hit_bytes / 1e6,
                result.total_cache_miss_bytes / 1e6,
                result.total_cache_evicted_bytes / 1e6,
                100.0 * result.cache_hit_rate,
            )
        )
    if args.trace_out is not None:
        lines.append(_export_trace(service, args.trace_out))
    text = "\n".join(lines) + "\n"
    if args.iterations:
        rows = [
            {
                "iter": stats.index,
                "active_vertices": stats.active_vertices,
                "active_edges": stats.active_edges,
                "time": stats.time,
                "transfer_KB": round(stats.transfer_bytes / 1024, 2),
                "engines": ",".join(sorted(stats.engine_partitions)),
            }
            for stats in result.iterations
        ]
        text += format_table(rows, title="Per-iteration detail")
    return text


def _cmd_compare(args: argparse.Namespace) -> str:
    workload = build_workload(
        args.dataset, args.algorithm, scale=args.scale, preset=args.gpu,
        num_devices=args.devices, interconnect=args.interconnect,
    )
    systems = list(args.systems)
    notes = ""
    if args.devices > 1:
        skipped = [name for name in systems if not _multi_device_capable(name)]
        systems = [name for name in systems if _multi_device_capable(name)]
        if skipped:
            notes = "skipped (no multi-device path): %s\n" % ", ".join(skipped)
        if not systems:
            raise SystemExit(
                "none of the requested systems has a multi-device execution path; drop --devices"
            )
    rows = []
    for system_name in systems:
        service = _service_for(args, system_name, workload)
        result = service.run(QueryRequest(algorithm=args.algorithm, source=workload.source))
        rows.append(
            {
                "system": result.system,
                "time (s)": result.total_time,
                "iterations": result.num_iterations,
                "transfer (xE)": round(result.transfer_ratio(workload.graph.edge_data_bytes), 2),
            }
        )
    rows.sort(key=lambda row: row["time (s)"])
    fastest = rows[0]["time (s)"]
    for row in rows:
        row["slowdown"] = round(row["time (s)"] / fastest, 2)
    title = "%s on %s (scale=%g, %s)" % (
        args.algorithm.upper(), args.dataset, args.scale, workload.config.name,
    )
    if args.devices > 1:
        title += " x%d GPUs over %s" % (args.devices, workload.config.interconnect_kind)
    return notes + format_table(rows, title=title)


def _cmd_batch(args: argparse.Namespace) -> str:
    _require_multi_device_capable(args.system, args.devices)
    if args.num_queries <= 0:
        raise SystemExit("--num-queries must be positive")
    workload = build_workload(
        args.dataset, args.algorithm, scale=args.scale, preset=args.gpu,
        num_devices=args.devices, interconnect=args.interconnect,
    )
    if workload.program.needs_source:
        sources = (
            args.sources
            if args.sources
            else batch_sources(workload.graph, args.num_queries, seed=args.seed)
        )
    else:
        if args.sources:
            raise SystemExit("algorithm %r takes no traversal source" % args.algorithm)
        sources = [None] * args.num_queries
    service = _service_for(args, args.system, workload)
    queries = workload.make_queries(sources)
    for program, source in queries:
        service.submit_program(program, source)
    (batch,) = service.drain()
    # Export before the sequential baseline: its solo runs share the
    # service tracer and would append their own lanes to the batch trace.
    trace_line = (
        _export_trace(service, args.trace_out) if args.trace_out is not None else None
    )

    rows = [
        {
            "query": index,
            "source": "-" if source is None else source,
            "iterations": result.num_iterations,
            "time (s)": round(result.total_time, 6),
            "transfer_KB": round(result.total_transfer_bytes / 1024, 2),
            "converged": result.converged,
        }
        for index, (source, result) in enumerate(zip(sources, batch.results))
    ]
    title = "%s batch of %d queries on %s (%s, scale=%g)" % (
        args.algorithm.upper(), batch.num_queries, args.dataset, batch.system, args.scale,
    )
    if args.devices > 1:
        title += " x%d GPUs over %s" % (args.devices, workload.config.interconnect_kind)
    lines = [
        format_table(rows, title=title).rstrip("\n"),
        "batch makespan: %.6f s over %d super-iterations (%.1f queries/s)" % (
            batch.makespan, batch.super_iterations, batch.queries_per_second,
        ),
        "batch transfer volume: %.3f MB (%.3f MB amortized across queries)" % (
            batch.total_transfer_bytes / 1e6, batch.amortized_bytes / 1e6,
        ),
        "device cache (%s): %.3f MB hits, %.3f MB misses, %.3f MB evicted" % (
            batch.extra.get("cache_policy", args.cache_policy),
            batch.cache_hit_bytes / 1e6,
            batch.cache_miss_bytes / 1e6,
            batch.cache_evicted_bytes / 1e6,
        ),
    ]
    if not args.no_baseline:
        sequential = service.baseline_sequential(queries)
        stats = batch.amortization_vs(sequential)
        lines.append(
            "vs sequential serving: %.2fx speedup (%.6f s -> %.6f s), "
            "%.3f MB transfer saved" % (
                stats["speedup"], stats["sequential_time"], stats["batched_time"],
                stats["transfer_bytes_saved"] / 1e6,
            )
        )
    if trace_line is not None:
        lines.append(trace_line)
    if args.stats_json is not None:
        lines.append(_write_stats_json(args.stats_json, batch.as_dict()))
    return "\n".join(lines) + "\n"


def _load_trace(args: argparse.Namespace, workload) -> list[QueryRequest]:
    """The request trace to serve: a file, an arrival process, or the t=0 mix."""
    if args.trace is not None:
        try:
            return load_trace_file(args.trace)
        except OSError as error:
            raise SystemExit("cannot read trace %s: %s" % (args.trace, error))
        except ValueError as error:
            # Validation names the offending entry/line; keep it verbatim.
            raise SystemExit("bad trace: %s" % error)
    if args.arrivals is not None:
        # Arrival-stamped synthetic mix: event-driven serving in
        # simulated time rather than the everything-at-t=0 queue.
        if args.rate is None or args.rate <= 0:
            raise SystemExit("--arrivals needs a positive --rate (arrivals per second)")
        if args.requests < 1:
            raise SystemExit("--requests must be at least 1")
        return list(
            timed_mixed_trace(
                workload.graph, args.requests, args.rate,
                process=args.arrivals, seed=args.seed,
                interactive_sla_s=args.deadline,
            )
        )
    # Synthetic mixed trace: cheap interactive point lookups arriving
    # *after* the heavy bulk analytics — the starvation scenario the
    # priority scheduler exists for.
    try:
        return synthetic_mixed_trace(
            workload.graph, args.point_lookups, args.analytical, args.seed
        )
    except ValueError as error:
        raise SystemExit("the synthetic trace needs --point-lookups or --analytical > 0 (%s)" % error)


def _cmd_serve(args: argparse.Namespace) -> str:
    _require_multi_device_capable(args.system, args.devices)
    if args.hosts < 1:
        raise SystemExit("--hosts must be at least 1")
    clustered = args.hosts > 1 or args.network is not None
    # The SSSP cell loads the dataset weighted, so one service graph can
    # serve every algorithm a trace may carry.
    workload = build_workload(
        args.dataset, "sssp", scale=args.scale, preset=args.gpu,
        num_devices=args.devices, interconnect=args.interconnect,
    )
    if clustered:
        service = _cluster_for(args, args.system, workload)
    else:
        service = _service_for(args, args.system, workload)
    requests = _load_trace(args, workload)
    try:
        handles = service.submit_many(requests)
    except (KeyError, ValueError) as error:
        # Malformed requests (unknown algorithm, source on a sourceless
        # program, CC on the serve command's directed graph) are the
        # caller's fault: one clean error instead of a traceback.
        raise SystemExit("cannot serve trace: %s" % error)
    service.drain()
    stats = service.stats()

    lines = [
        "served %d of %d requests on %s / %s (%s scheduling, %d wave(s))" % (
            stats.completed, stats.submitted, service.system.name, args.dataset,
            args.scheduling, stats.waves,
        ),
        "makespan %.6f s (%.1f queries/s), transfer %.3f MB" % (
            stats.makespan_s, stats.queries_per_second, stats.total_transfer_bytes / 1e6,
        ),
        "compute backend: %s" % service.system.context.backend_name,
    ]
    if clustered:
        network = service.network
        lines.insert(1, (
            "cluster: %d host(s) x %d GPU(s) over %s (%.2f GB/s, %.0f us); "
            "router: %d affinity, %d spill(s), %d rejection(s)" % (
                service.config.hosts, service.config.gpus_per_host, network.kind,
                network.bandwidth / 1e9, network.latency * 1e6,
                service.router.affinity_hits, service.router.spills,
                service.router.rejections,
            )
        ))
    if stats.preemptions:
        lines.append(
            "preemption: %d BULK yield(s) to newly arrived interactive work"
            % stats.preemptions
        )
    if args.budget is not None:
        lines.append(
            "admission: budget %d bytes (%s policy), %d admitted, %d rejected" % (
                args.budget, args.admission, stats.admitted, stats.rejected,
            )
        )
        for handle in handles:
            if handle.status is RequestStatus.REJECTED:
                label = handle.request.label or "request-%d" % handle.request_id
                lines.append("  rejected %s: %s" % (label, handle.reject_reason))
    if stats.deadline_met + stats.deadline_missed:
        lines.append(
            "deadlines: %d met, %d missed (%.1f%% attainment)" % (
                stats.deadline_met, stats.deadline_missed, 100.0 * stats.deadline_attainment,
            )
        )
    if args.faults is not None:
        health = service.device_health()
        lines.append(
            "faults: %d injected, %d transfer retries (%.6f s retry time); "
            "%d failed, %d cancelled" % (
                stats.faults_injected, stats.retries, stats.retry_time_s,
                stats.failed, stats.cancelled,
            )
        )
        lines.append(
            "recovery: %.6f s checkpointing, %.6f s restoring; circuit breaker %s "
            "(%d trip(s))" % (
                stats.checkpoint_time_s, stats.recovery_time_s,
                "OPEN" if stats.breaker_open else "closed", stats.breaker_trips,
            )
        )
        if clustered:
            lines.append(
                "hosts: %d of %d alive%s; %d failover(s), %.3f MB checkpoint "
                "shipping (%.6f s on the network)" % (
                    health["hosts_alive"], health["hosts"],
                    ", lost: %s" % health["hosts_lost"] if health["hosts_lost"] else "",
                    service.router.failovers, service.shipped_bytes / 1e6,
                    service.ship_time_s,
                )
            )
        else:
            lines.append(
                "devices: %d of %d alive%s%s" % (
                    health["alive"], health["configured"],
                    ", lost: %s" % health["lost"] if health["lost"] else "",
                    " (host fallback)" if health["host_fallback"] else "",
                )
            )
        for handle in handles:
            if handle.status in (RequestStatus.FAILED, RequestStatus.CANCELLED):
                label = handle.request.label or "request-%d" % handle.request_id
                lines.append(
                    "  %s %s: %s" % (handle.status.value, label, handle.fault_cause)
                )
    if args.trace_out is not None:
        lines.append(_export_trace(service, args.trace_out))
    if args.stats_json is not None:
        lines.append(_write_stats_json(args.stats_json, service.observability()))
    rows = stats.class_rows()
    table = format_table(rows, title="Per-class service latency") if rows else ""
    return "\n".join(lines) + "\n" + table


def _cmd_inspect(args: argparse.Namespace) -> str:
    from repro.obs import flight_report, load_trace, query_tracks

    try:
        payload = load_trace(args.trace)
    except OSError as error:
        raise SystemExit("cannot read trace %s: %s" % (args.trace, error))
    except ValueError as error:
        raise SystemExit("not a Chrome trace: %s" % error)
    if args.query is None:
        queries = query_tracks(payload)
        if not queries:
            return "no traced queries in %s\n" % args.trace
        lines = ["traced queries in %s (pick one with --query):" % args.trace]
        lines.extend("  %s" % name for name in queries)
        return "\n".join(lines) + "\n"
    try:
        return flight_report(payload, args.query)
    except KeyError as error:
        # The error message already lists the traced queries.
        raise SystemExit(str(error.args[0]) if error.args else str(error))


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "info":
        output = _cmd_info(args)
    elif args.command == "run":
        output = _cmd_run(args)
    elif args.command == "batch":
        output = _cmd_batch(args)
    elif args.command == "serve":
        output = _cmd_serve(args)
    elif args.command == "inspect":
        output = _cmd_inspect(args)
    else:
        output = _cmd_compare(args)
    print(output, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
