"""Named stand-ins for the paper's evaluation datasets (Table IV).

The paper evaluates on five real-world graphs:

========  ======  ======  ========  =====================================
name      |V|     |E|     |E|/|V|   kind
========  ======  ======  ========  =====================================
sk-2005   50.6M   1.93B   38        directed web graph (high locality)
twitter   52.5M   1.96B   37        directed social network
fk        68.3M   2.59B   37        undirected social network (konect)
uk-2007   105.1M  3.31B   31        directed web graph (high locality)
fs        65.6M   3.61B   55        undirected social network (snap)
========  ======  ======  ========  =====================================

These graphs are 28-58 GB and cannot be downloaded in this offline
environment, so :func:`load_dataset` synthesises *scaled-down stand-ins*
whose |E|/|V| ratio, directedness, and degree skew match the originals.
Web graphs use RMAT with a strongly diagonal parameterisation (which gives
the locality that makes ExpTM-filter and unified memory competitive on
SK/UK in the paper); social networks use Chung-Lu power-law graphs (heavier
hubs, lower locality, the regime where zero-copy wins).

The relative sizes between the five stand-ins preserve the paper's ordering
(SK and TW smallest, FS largest), which matters for Table V where SK fits
entirely in simulated GPU memory and the UM-based systems win on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_graph, random_weights, rmat_graph

__all__ = ["DatasetSpec", "DATASETS", "DATASET_ALIASES", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one stand-in dataset.

    Attributes
    ----------
    name:
        Canonical short name (``"SK"``, ``"TW"``, ...).
    full_name:
        The paper's dataset name the stand-in mimics.
    kind:
        ``"web"`` (RMAT, high locality) or ``"social"`` (power-law).
    num_vertices:
        Vertex count at ``scale=1.0``.
    average_degree:
        Target |E|/|V|, matching Table IV.
    directed:
        Whether the original graph is directed.
    seed:
        Generator seed so every run sees the same graph.
    """

    name: str
    full_name: str
    kind: str
    num_vertices: int
    average_degree: float
    directed: bool
    seed: int

    @property
    def approx_edges(self) -> int:
        """Approximate edge count at ``scale=1.0``."""
        return int(self.num_vertices * self.average_degree)


# Vertex counts are chosen so the five graphs keep the paper's relative
# ordering by total edge volume: SK < TW < FK < UK < FS, with SK small
# enough to fit in the default simulated GPU memory (Section VII-B2).
DATASETS: dict[str, DatasetSpec] = {
    "SK": DatasetSpec("SK", "sk-2005", "web", 12_000, 38.0, True, 11),
    "TW": DatasetSpec("TW", "twitter", "social", 13_000, 37.0, True, 13),
    "FK": DatasetSpec("FK", "friendster-konect", "social", 17_000, 37.0, False, 17),
    "UK": DatasetSpec("UK", "uk-2007", "web", 26_000, 31.0, True, 19),
    "FS": DatasetSpec("FS", "friendster-snap", "social", 16_500, 55.0, False, 23),
}

DATASET_ALIASES: dict[str, str] = {
    "sk": "SK",
    "sk-2005": "SK",
    "sk2005": "SK",
    "tw": "TW",
    "twitter": "TW",
    "fk": "FK",
    "friendster-konect": "FK",
    "uk": "UK",
    "uk-2007": "UK",
    "uk2007": "UK",
    "fs": "FS",
    "friendster-snap": "FS",
}


def dataset_names() -> list[str]:
    """Canonical dataset names in the order the paper reports them."""
    return ["SK", "TW", "FK", "UK", "FS"]


def _resolve(name: str) -> DatasetSpec:
    canonical = DATASET_ALIASES.get(name.lower(), name.upper())
    if canonical not in DATASETS:
        raise KeyError(
            "unknown dataset %r; available: %s" % (name, ", ".join(sorted(DATASETS)))
        )
    return DATASETS[canonical]


def load_dataset(name: str, scale: float = 1.0, weighted: bool = False) -> CSRGraph:
    """Synthesise the named stand-in dataset.

    Parameters
    ----------
    name:
        One of ``SK``, ``TW``, ``FK``, ``UK``, ``FS`` (case-insensitive;
        the paper's full names are accepted as aliases).
    scale:
        Multiplier on the vertex count, used by tests to shrink graphs and
        by the benchmark harness to enlarge them.
    weighted:
        Attach uniform random integer weights (for SSSP workloads).
    """
    spec = _resolve(name)
    num_vertices = max(16, int(spec.num_vertices * scale))
    if spec.kind == "web":
        # A strongly diagonal RMAT keeps edges near the diagonal, which is
        # the locality property that makes whole-partition transfers and
        # page-granular unified memory efficient on web graphs.  The edge
        # budget is inflated to compensate for duplicate-edge removal so
        # the final |E|/|V| lands near the Table IV ratio.
        graph = rmat_graph(
            num_vertices,
            int(num_vertices * spec.average_degree * 1.6),
            a=0.65,
            b=0.15,
            c=0.15,
            seed=spec.seed,
            name=spec.name,
        )
    else:
        graph = power_law_graph(
            num_vertices,
            spec.average_degree,
            exponent=2.0,
            seed=spec.seed,
            directed=spec.directed,
            name=spec.name,
        )
    graph = CSRGraph(graph.row_offset, graph.column_index, None, name=spec.name)
    if weighted:
        graph = graph.with_weights(random_weights(graph.num_edges, seed=spec.seed + 100))
    return graph
