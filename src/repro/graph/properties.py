"""Graph property statistics used by the analysis figures.

Figure 3(f) of the paper plots the out-degree distribution of the five
evaluation graphs in buckets ``[0,8), [8,16), [16,24), [24,32), [32,inf)``
to show that most real-world vertices cannot saturate a 128-byte zero-copy
memory request.  This module computes those statistics plus a few generic
summaries used in reports and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "PAPER_DEGREE_BUCKETS",
    "degree_bucket_fractions",
    "degree_histogram",
    "GraphSummary",
    "summarize",
]

# The bucket edges of Figure 3(f).
PAPER_DEGREE_BUCKETS: tuple[int, ...] = (0, 8, 16, 24, 32)


def degree_bucket_fractions(
    graph: CSRGraph, bucket_edges: tuple[int, ...] = PAPER_DEGREE_BUCKETS
) -> dict[str, float]:
    """Fraction of vertices falling in each degree bucket.

    Returns a mapping from a human-readable bucket label (``"[0,8)"``,
    ..., ``"[32,inf)"``) to the fraction of vertices in that bucket.
    Fractions sum to 1 for non-empty graphs.
    """
    degrees = graph.out_degrees
    if degrees.size == 0:
        return {}
    edges = list(bucket_edges) + [np.inf]
    fractions: dict[str, float] = {}
    for low, high in zip(edges[:-1], edges[1:]):
        label = "[%d,%s)" % (low, "inf" if np.isinf(high) else str(int(high)))
        in_bucket = np.count_nonzero((degrees >= low) & (degrees < high))
        fractions[label] = in_bucket / degrees.size
    return fractions


def degree_histogram(graph: CSRGraph) -> dict[int, int]:
    """Exact out-degree histogram ``{degree: vertex count}``."""
    degrees = graph.out_degrees
    unique, counts = np.unique(degrees, return_counts=True)
    return {int(degree): int(count) for degree, count in zip(unique, counts)}


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of a graph (the Table IV columns)."""

    name: str
    num_vertices: int
    num_edges: int
    average_degree: float
    max_out_degree: int
    max_in_degree: int
    edge_data_bytes: int
    fraction_below_32: float

    def as_row(self) -> dict[str, object]:
        """Dictionary form used by the benchmark table formatter."""
        return {
            "dataset": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "|E|/|V|": round(self.average_degree, 1),
            "max Do": self.max_out_degree,
            "max Di": self.max_in_degree,
            "edge MB": round(self.edge_data_bytes / (1024 * 1024), 2),
            "deg<32": round(self.fraction_below_32, 3),
        }


def summarize(graph: CSRGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    degrees = graph.out_degrees
    fraction_below_32 = float(np.count_nonzero(degrees < 32) / degrees.size) if degrees.size else 0.0
    return GraphSummary(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        max_out_degree=int(degrees.max()) if degrees.size else 0,
        max_in_degree=int(graph.in_degrees.max()) if graph.num_vertices else 0,
        edge_data_bytes=graph.edge_data_bytes,
        fraction_below_32=fraction_below_32,
    )
