"""Chunk-based edge-balanced partitioning of the edge-associated data.

HyTGraph logically partitions the host-resident edge arrays into N
edge-balanced partitions ``{P0, ..., P_{N-1}}``, each holding the out-edges
of a *consecutive* range of vertices (Section IV).  The default partition
size is 32 MB of edge data (Section V-B), chosen small so that the
cost-aware engine selection (Section V-A) can be fine grained; the task
combiner later merges partitions that picked the same engine.

A partition never splits a vertex's adjacency list: the vertex boundary is
placed at the first vertex whose edges would overflow the byte budget.  A
single vertex whose adjacency list alone exceeds the budget gets a
partition of its own (real web graphs have such vertices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "EdgePartition",
    "Partitioning",
    "DeviceShard",
    "ShardedPartitioning",
    "partition_by_bytes",
    "partition_by_count",
]

DEFAULT_PARTITION_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class EdgePartition:
    """One contiguous vertex-range partition of the edge-associated data.

    Attributes
    ----------
    index:
        Position of this partition in the partitioning (0-based).
    vertex_start, vertex_end:
        Half-open vertex-id range ``[vertex_start, vertex_end)`` whose
        out-edges belong to this partition.
    edge_start, edge_end:
        Half-open slice of the CSR edge arrays covered by the partition.
    edge_bytes:
        Bytes of edge-associated data (neighbors + weights) in the slice.
    """

    index: int
    vertex_start: int
    vertex_end: int
    edge_start: int
    edge_end: int
    edge_bytes: int

    @property
    def num_vertices(self) -> int:
        """Number of vertices whose adjacency lists live in this partition."""
        return self.vertex_end - self.vertex_start

    @property
    def num_edges(self) -> int:
        """Number of edges stored in this partition."""
        return self.edge_end - self.edge_start

    def vertices(self) -> np.ndarray:
        """The vertex ids covered by this partition."""
        return np.arange(self.vertex_start, self.vertex_end, dtype=np.int64)

    def contains_vertex(self, vertex: int) -> bool:
        """Whether ``vertex``'s adjacency list lives in this partition."""
        return self.vertex_start <= vertex < self.vertex_end


class Partitioning:
    """An ordered list of :class:`EdgePartition` covering a graph.

    Provides vectorised helpers the runtime needs every iteration: mapping
    vertices to partitions and summing active vertices / edges per
    partition given a frontier.
    """

    def __init__(self, graph: CSRGraph, partitions: Sequence[EdgePartition]):
        self.graph = graph
        self.partitions = list(partitions)
        self._validate()
        # vertex -> partition index lookup, used for per-partition reductions.
        boundaries = np.array([p.vertex_start for p in self.partitions] + [graph.num_vertices])
        self._vertex_starts = boundaries[:-1]
        self._partition_of_vertex = np.zeros(graph.num_vertices, dtype=np.int64)
        for partition in self.partitions:
            self._partition_of_vertex[partition.vertex_start : partition.vertex_end] = partition.index

    def _validate(self) -> None:
        if not self.partitions:
            if self.graph.num_vertices != 0:
                raise ValueError("non-empty graph requires at least one partition")
            return
        expected_vertex = 0
        expected_edge = 0
        for index, partition in enumerate(self.partitions):
            if partition.index != index:
                raise ValueError("partition indices must be consecutive from 0")
            if partition.vertex_start != expected_vertex:
                raise ValueError("partitions must tile the vertex range without gaps")
            if partition.edge_start != expected_edge:
                raise ValueError("partitions must tile the edge range without gaps")
            expected_vertex = partition.vertex_end
            expected_edge = partition.edge_end
        if expected_vertex != self.graph.num_vertices:
            raise ValueError("partitions must cover all vertices")
        if expected_edge != self.graph.num_edges:
            raise ValueError("partitions must cover all edges")

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self) -> Iterator[EdgePartition]:
        return iter(self.partitions)

    def __getitem__(self, index: int) -> EdgePartition:
        return self.partitions[index]

    @property
    def num_partitions(self) -> int:
        """Number of partitions."""
        return len(self.partitions)

    @property
    def vertex_starts(self) -> np.ndarray:
        """``vertex_start`` of every partition (ascending ``int64`` array)."""
        return self._vertex_starts

    def partition_of_vertex(self, vertex: int) -> int:
        """Index of the partition holding ``vertex``'s adjacency list."""
        return int(self._partition_of_vertex[vertex])

    def partition_of_vertices(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`partition_of_vertex`."""
        return self._partition_of_vertex[np.asarray(vertices, dtype=np.int64)]

    def active_counts(self, active_mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-partition counts of active vertices and active edges.

        Parameters
        ----------
        active_mask:
            Boolean array of length ``num_vertices`` marking active vertices.

        Returns
        -------
        (active_vertices, active_edges):
            Two ``int64`` arrays of length ``num_partitions``.
        """
        active_mask = np.asarray(active_mask, dtype=bool)
        active_vertex_ids = np.nonzero(active_mask)[0]
        partition_ids = self._partition_of_vertex[active_vertex_ids]
        active_vertices = np.bincount(partition_ids, minlength=self.num_partitions)
        degrees = self.graph.out_degrees[active_vertex_ids]
        active_edges = np.bincount(partition_ids, weights=degrees, minlength=self.num_partitions)
        return active_vertices.astype(np.int64), active_edges.astype(np.int64)

    def edges_per_partition(self) -> np.ndarray:
        """Total edge count of every partition."""
        return np.array([p.num_edges for p in self.partitions], dtype=np.int64)

    def bytes_per_partition(self) -> np.ndarray:
        """Total edge-data bytes of every partition."""
        return np.array([p.edge_bytes for p in self.partitions], dtype=np.int64)


@dataclass(frozen=True)
class DeviceShard:
    """The contiguous run of partitions owned by one device.

    Sharding keeps the single-device layout intact: a shard is a
    half-open partition range ``[partition_start, partition_end)``,
    which — because partitions tile the vertex range — is also a
    contiguous vertex-id range.  Vertex ownership therefore resolves
    with one bisection, and the per-device task generation reuses the
    existing per-partition machinery unchanged.
    """

    device: int
    partition_start: int
    partition_end: int
    vertex_start: int
    vertex_end: int
    edge_bytes: int

    @property
    def num_partitions(self) -> int:
        """Number of partitions in this shard."""
        return self.partition_end - self.partition_start

    @property
    def num_vertices(self) -> int:
        """Number of vertices owned by this shard's device."""
        return self.vertex_end - self.vertex_start

    def partition_indices(self) -> range:
        """The partition indices belonging to this shard."""
        return range(self.partition_start, self.partition_end)

    def owns_vertex(self, vertex: int) -> bool:
        """Whether ``vertex``'s adjacency list is owned by this device."""
        return self.vertex_start <= vertex < self.vertex_end

    def count_remote(self, vertices: np.ndarray) -> int:
        """How many of ``vertices`` are owned by a different shard.

        Each remote vertex is one activation message of the boundary-delta
        exchange; the execution runtime charges
        ``config.boundary_update_bytes`` per message.
        """
        return int(((vertices < self.vertex_start) | (vertices >= self.vertex_end)).sum())


class ShardedPartitioning:
    """A :class:`Partitioning` split across ``num_devices`` GPUs.

    Shards are byte-balanced contiguous partition ranges, placed with the
    same bisection-over-prefix-sums approach as :func:`partition_by_bytes`
    (one ``searchsorted`` per device boundary over the cumulative
    partition bytes).  When the graph has fewer partitions than devices
    the trailing devices simply receive empty shards.
    """

    def __init__(self, partitioning: Partitioning, num_devices: int):
        if num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        self.partitioning = partitioning
        self.num_devices = num_devices
        self.shards = self._build_shards()
        self._vertex_starts = np.array([shard.vertex_start for shard in self.shards], dtype=np.int64)
        self._device_of_partition = np.zeros(partitioning.num_partitions, dtype=np.int64)
        for shard in self.shards:
            self._device_of_partition[shard.partition_start : shard.partition_end] = shard.device

    def _build_shards(self) -> list[DeviceShard]:
        partitioning = self.partitioning
        num_partitions = partitioning.num_partitions
        bytes_per_partition = partitioning.bytes_per_partition()
        cumulative = np.cumsum(bytes_per_partition) if num_partitions else np.zeros(0, dtype=np.int64)
        total = int(cumulative[-1]) if num_partitions else 0

        boundaries = [0]
        for device in range(1, self.num_devices):
            threshold = device * total / self.num_devices
            boundary = int(np.searchsorted(cumulative, threshold, side="left"))
            boundary = min(max(boundary, boundaries[-1]), num_partitions)
            boundaries.append(boundary)
        boundaries.append(num_partitions)

        shards = []
        num_vertices = partitioning.graph.num_vertices
        for device in range(self.num_devices):
            start, end = boundaries[device], boundaries[device + 1]
            if start < end:
                vertex_start = partitioning[start].vertex_start
                vertex_end = partitioning[end - 1].vertex_end
                edge_bytes = int(bytes_per_partition[start:end].sum())
            else:
                # Empty shard: pin it to the vertex position of the
                # boundary so the shard vertex ranges still tile.
                vertex_start = partitioning[start].vertex_start if start < num_partitions else num_vertices
                vertex_end = vertex_start
                edge_bytes = 0
            shards.append(
                DeviceShard(
                    device=device,
                    partition_start=start,
                    partition_end=end,
                    vertex_start=vertex_start,
                    vertex_end=vertex_end,
                    edge_bytes=edge_bytes,
                )
            )
        return shards

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[DeviceShard]:
        return iter(self.shards)

    def __getitem__(self, device: int) -> DeviceShard:
        return self.shards[device]

    def device_of_partition(self, index: int) -> int:
        """Owning device of partition ``index``."""
        return int(self._device_of_partition[index])

    def device_of_vertices(self, vertices: np.ndarray) -> np.ndarray:
        """Owning device of every vertex id in ``vertices``."""
        vertices = np.asarray(vertices, dtype=np.int64)
        # Empty shards share their vertex_start with the next shard;
        # side="right" - 1 resolves the tie to the last shard whose range
        # actually starts there, which is the non-empty one.
        return np.clip(
            np.searchsorted(self._vertex_starts, vertices, side="right") - 1,
            0,
            self.num_devices - 1,
        )

    def split_sorted_vertices(self, vertices: np.ndarray) -> list[np.ndarray]:
        """Slice a sorted vertex-id array into one view per device."""
        vertices = np.asarray(vertices, dtype=np.int64)
        boundary_ids = [shard.vertex_start for shard in self.shards]
        boundary_ids.append(self.shards[-1].vertex_end if self.shards else 0)
        cuts = np.searchsorted(vertices, boundary_ids)
        return [vertices[cuts[d] : cuts[d + 1]] for d in range(self.num_devices)]


def _build_partitions(graph: CSRGraph, boundaries: list[int]) -> Partitioning:
    """Build a :class:`Partitioning` from vertex boundaries (including 0 and |V|)."""
    per_edge = graph.edge_bytes_per_edge
    partitions = []
    for index in range(len(boundaries) - 1):
        vertex_start, vertex_end = boundaries[index], boundaries[index + 1]
        edge_start = int(graph.row_offset[vertex_start])
        edge_end = int(graph.row_offset[vertex_end])
        partitions.append(
            EdgePartition(
                index=index,
                vertex_start=vertex_start,
                vertex_end=vertex_end,
                edge_start=edge_start,
                edge_end=edge_end,
                edge_bytes=(edge_end - edge_start) * per_edge,
            )
        )
    return Partitioning(graph, partitions)


def partition_by_bytes(graph: CSRGraph, partition_bytes: int = DEFAULT_PARTITION_BYTES) -> Partitioning:
    """Partition the edge data into chunks of at most ``partition_bytes`` bytes.

    This mirrors HyTGraph's default 32 MB partitions (Section V-B).  Vertex
    adjacency lists are never split; an adjacency list larger than the
    budget gets its own partition.
    """
    if partition_bytes <= 0:
        raise ValueError("partition_bytes must be positive")
    if graph.num_vertices == 0:
        return Partitioning(graph, [])
    per_edge = graph.edge_bytes_per_edge
    budget_edges = max(1, partition_bytes // per_edge)

    # Greedy boundary placement, one bisection per partition instead of a
    # Python loop over every vertex.  A partition extends to the last
    # vertex whose cumulative edge count still fits the budget, but always
    # covers at least one vertex AND at least one edge (when edges remain):
    # an oversized adjacency list — optionally preceded by zero-degree
    # vertices — gets a partition of its own, and trailing zero-degree
    # vertices attach to the partition in front of them, exactly as the
    # sequential scan did.
    row_offset = graph.row_offset
    num_vertices = graph.num_vertices
    boundaries = [0]
    while boundaries[-1] < num_vertices:
        start = boundaries[-1]
        fits = int(np.searchsorted(row_offset, row_offset[start] + budget_edges, side="right")) - 1
        nonempty = int(np.searchsorted(row_offset, row_offset[start], side="right"))
        boundaries.append(min(max(fits, nonempty, start + 1), num_vertices))
    return _build_partitions(graph, boundaries)


def partition_by_count(graph: CSRGraph, num_partitions: int) -> Partitioning:
    """Partition into (approximately) ``num_partitions`` edge-balanced chunks.

    Used where the paper fixes the partition count instead of the byte
    budget (e.g. the 256-partition analysis of Figure 3a).
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    if graph.num_vertices == 0:
        return Partitioning(graph, [])
    num_partitions = min(num_partitions, graph.num_vertices)
    target = graph.num_edges / num_partitions if num_partitions else 0

    boundaries = [0]
    for index in range(1, num_partitions):
        threshold = index * target
        # First vertex whose cumulative edge count reaches the threshold.
        boundary = int(np.searchsorted(graph.row_offset[1:], threshold, side="left")) + 1
        boundary = min(max(boundary, boundaries[-1] + 1), graph.num_vertices)
        if boundary > boundaries[-1] and boundary < graph.num_vertices:
            boundaries.append(boundary)
    boundaries.append(graph.num_vertices)
    deduped = [boundaries[0]]
    for boundary in boundaries[1:]:
        if boundary != deduped[-1]:
            deduped.append(boundary)
    return _build_partitions(graph, deduped)
