"""Compressed sparse row (CSR) graph storage.

The paper organises the input graph into CSR (Figure 1): a ``row_offset``
array of length ``|V| + 1`` giving each vertex's slice into the
``column_index`` (neighbor) array, plus an optional ``edge_value`` array of
edge weights.  The neighbor-index array is small and lives in GPU memory;
the neighbor and weight arrays are the large *edge-associated data* that
live in host memory and must be moved across PCIe on demand.

:class:`CSRGraph` is an immutable value object shared by the simulator, the
transfer engines and the algorithms.  All arrays are NumPy arrays so that
vertex-centric kernels can be evaluated with vectorised operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph"]

# Byte sizes used throughout the cost model (Section V-A): a neighbor id and
# an edge weight each occupy four bytes, matching the paper's d1 = 4.
VERTEX_ID_BYTES = 4
EDGE_WEIGHT_BYTES = 4


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in compressed sparse row form.

    Parameters
    ----------
    row_offset:
        ``int64`` array of length ``num_vertices + 1``.  The out-neighbors
        of vertex ``v`` are ``column_index[row_offset[v]:row_offset[v + 1]]``.
    column_index:
        ``int64`` array of destination vertex ids, length ``num_edges``.
    edge_value:
        Optional ``float64`` array of edge weights, length ``num_edges``.
        ``None`` means the graph is unweighted (BFS/CC/PageRank workloads).
    name:
        Optional human-readable name used in benchmark reports.
    """

    row_offset: np.ndarray
    column_index: np.ndarray
    edge_value: np.ndarray | None = None
    name: str = "graph"
    _out_degrees: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _in_degrees: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _edge_sources: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        row_offset = np.asarray(self.row_offset, dtype=np.int64)
        column_index = np.asarray(self.column_index, dtype=np.int64)
        object.__setattr__(self, "row_offset", row_offset)
        object.__setattr__(self, "column_index", column_index)
        if self.edge_value is not None:
            edge_value = np.asarray(self.edge_value, dtype=np.float64)
            object.__setattr__(self, "edge_value", edge_value)
        self._validate()
        object.__setattr__(self, "_out_degrees", np.diff(row_offset))
        object.__setattr__(self, "_in_degrees", None)
        object.__setattr__(self, "_edge_sources", None)

    def _validate(self) -> None:
        if self.row_offset.ndim != 1 or self.row_offset.size < 1:
            raise ValueError("row_offset must be a 1-D array with at least one entry")
        if self.row_offset[0] != 0:
            raise ValueError("row_offset must start at 0")
        if np.any(np.diff(self.row_offset) < 0):
            raise ValueError("row_offset must be non-decreasing")
        if self.row_offset[-1] != self.column_index.size:
            raise ValueError(
                "row_offset[-1] (%d) must equal the number of edges (%d)"
                % (self.row_offset[-1], self.column_index.size)
            )
        if self.column_index.size and (
            self.column_index.min() < 0 or self.column_index.max() >= self.num_vertices
        ):
            raise ValueError("column_index contains vertex ids outside [0, num_vertices)")
        if self.edge_value is not None and self.edge_value.size != self.column_index.size:
            raise ValueError("edge_value must have one entry per edge")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return int(self.row_offset.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|``."""
        return int(self.column_index.size)

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries per-edge weights."""
        return self.edge_value is not None

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (``int64`` array of length ``|V|``)."""
        return self._out_degrees

    @property
    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex, computed lazily and cached."""
        if self._in_degrees is None:
            counts = np.bincount(self.column_index, minlength=self.num_vertices)
            object.__setattr__(self, "_in_degrees", counts.astype(np.int64))
        return self._in_degrees

    @property
    def average_degree(self) -> float:
        """Average out-degree ``|E| / |V|``."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    @property
    def edge_bytes_per_edge(self) -> int:
        """Bytes of edge-associated data per edge (neighbor id + weight)."""
        per_edge = VERTEX_ID_BYTES
        if self.is_weighted:
            per_edge += EDGE_WEIGHT_BYTES
        return per_edge

    @property
    def edge_data_bytes(self) -> int:
        """Total bytes of host-resident edge-associated data."""
        return self.num_edges * self.edge_bytes_per_edge

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def out_degree(self, vertex: int) -> int:
        """Out-degree of a single vertex."""
        return int(self.row_offset[vertex + 1] - self.row_offset[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        """Out-neighbors of ``vertex`` as a view into ``column_index``."""
        start, end = self.row_offset[vertex], self.row_offset[vertex + 1]
        return self.column_index[start:end]

    def edge_weights(self, vertex: int) -> np.ndarray:
        """Weights of the out-edges of ``vertex`` (all 1.0 if unweighted)."""
        start, end = self.row_offset[vertex], self.row_offset[vertex + 1]
        if self.edge_value is None:
            return np.ones(int(end - start), dtype=np.float64)
        return self.edge_value[start:end]

    def edge_slice(self, vertex: int) -> tuple[int, int]:
        """Half-open ``[start, end)`` slice of ``vertex`` in the edge arrays."""
        return int(self.row_offset[vertex]), int(self.row_offset[vertex + 1])

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(src, dst, weight)`` triples.  Weight is 1.0 if unweighted."""
        for src in range(self.num_vertices):
            start, end = self.edge_slice(src)
            for idx in range(start, end):
                weight = 1.0 if self.edge_value is None else float(self.edge_value[idx])
                yield src, int(self.column_index[idx]), weight

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge, aligned with ``column_index``.

        Computed lazily with one ``np.repeat`` and cached: ``reverse()``,
        ``symmetrize()``, ``permute()`` (and through it hub sorting) and the
        reference PageRank/PHP fixed-point solvers all consume it, so the
        per-vertex Python loop it replaces was a preprocessing hot spot.
        Treat the returned array as read-only.
        """
        if self._edge_sources is None:
            sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self._out_degrees)
            # The cache is shared across callers; writes must fail loudly.
            sources.setflags(write=False)
            object.__setattr__(self, "_edge_sources", sources)
        return self._edge_sources

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Sequence[tuple[int, int]] | np.ndarray,
        num_vertices: int | None = None,
        weights: Sequence[float] | np.ndarray | None = None,
        name: str = "graph",
        sort_neighbors: bool = True,
        deduplicate: bool = False,
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        Parameters
        ----------
        edges:
            Sequence of ``(src, dst)`` pairs or an ``(m, 2)`` array.
        num_vertices:
            Total vertex count.  Defaults to ``max id + 1``.
        weights:
            Optional per-edge weights aligned with ``edges``.
        sort_neighbors:
            Sort each adjacency list by destination id (CSR convention).
        deduplicate:
            Drop duplicate ``(src, dst)`` pairs, keeping the first weight.
        """
        edge_array = np.asarray(edges, dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array of (src, dst) pairs")
        weight_array = None
        if weights is not None:
            weight_array = np.asarray(weights, dtype=np.float64)
            if weight_array.size != edge_array.shape[0]:
                raise ValueError("weights must align with edges")

        if num_vertices is None:
            num_vertices = int(edge_array.max()) + 1 if edge_array.size else 0
        if edge_array.size and (edge_array.min() < 0 or edge_array.max() >= num_vertices):
            raise ValueError("edge endpoints outside [0, num_vertices)")

        if deduplicate and edge_array.size:
            keys = edge_array[:, 0] * np.int64(num_vertices) + edge_array[:, 1]
            _, unique_idx = np.unique(keys, return_index=True)
            unique_idx.sort()
            edge_array = edge_array[unique_idx]
            if weight_array is not None:
                weight_array = weight_array[unique_idx]

        if edge_array.size:
            if sort_neighbors:
                order = np.lexsort((edge_array[:, 1], edge_array[:, 0]))
            else:
                order = np.argsort(edge_array[:, 0], kind="stable")
            edge_array = edge_array[order]
            if weight_array is not None:
                weight_array = weight_array[order]

        counts = np.bincount(edge_array[:, 0], minlength=num_vertices) if edge_array.size else np.zeros(num_vertices, dtype=np.int64)
        row_offset = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=row_offset[1:])
        column_index = edge_array[:, 1] if edge_array.size else np.zeros(0, dtype=np.int64)
        return cls(row_offset, column_index, weight_array, name=name)

    @classmethod
    def from_adjacency(
        cls,
        adjacency: dict[int, Iterable[int]],
        num_vertices: int | None = None,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a CSR graph from a ``{src: [dst, ...]}`` adjacency mapping."""
        edges = [(src, dst) for src, neighbors in adjacency.items() for dst in neighbors]
        if num_vertices is None:
            max_id = -1
            for src, neighbors in adjacency.items():
                max_id = max(max_id, src, *(list(neighbors) or [-1]))
            num_vertices = max_id + 1
        return cls.from_edges(edges, num_vertices=num_vertices, name=name)

    @classmethod
    def empty(cls, num_vertices: int = 0, name: str = "empty") -> "CSRGraph":
        """A graph with ``num_vertices`` vertices and no edges."""
        return cls(np.zeros(num_vertices + 1, dtype=np.int64), np.zeros(0, dtype=np.int64), name=name)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_weights(self, weights: np.ndarray | float) -> "CSRGraph":
        """Return a copy with the given per-edge weights (scalar broadcasts)."""
        if np.isscalar(weights):
            weight_array = np.full(self.num_edges, float(weights), dtype=np.float64)
        else:
            weight_array = np.asarray(weights, dtype=np.float64)
        return CSRGraph(self.row_offset, self.column_index, weight_array, name=self.name)

    def without_weights(self) -> "CSRGraph":
        """Return an unweighted copy (drops ``edge_value``)."""
        return CSRGraph(self.row_offset, self.column_index, None, name=self.name)

    def reverse(self) -> "CSRGraph":
        """Return the transpose graph (every edge reversed)."""
        sources = self.edge_sources()
        edges = np.stack([self.column_index, sources], axis=1)
        weights = self.edge_value
        return CSRGraph.from_edges(
            edges, num_vertices=self.num_vertices, weights=weights, name=self.name + "-rev"
        )

    def symmetrize(self) -> "CSRGraph":
        """Return an undirected version: each edge present in both directions."""
        sources = self.edge_sources()
        forward = np.stack([sources, self.column_index], axis=1)
        backward = np.stack([self.column_index, sources], axis=1)
        edges = np.concatenate([forward, backward], axis=0)
        weights = None
        if self.edge_value is not None:
            weights = np.concatenate([self.edge_value, self.edge_value])
        return CSRGraph.from_edges(
            edges,
            num_vertices=self.num_vertices,
            weights=weights,
            name=self.name + "-sym",
            deduplicate=True,
        )

    def permute(self, order: np.ndarray) -> "CSRGraph":
        """Relabel vertices so that old vertex ``order[i]`` becomes new vertex ``i``.

        ``order`` must be a permutation of ``range(num_vertices)``.  This is
        the primitive behind hub sorting (Section VI-A): reordering changes
        the physical layout of the edge-associated arrays, which is what the
        partitioner and the transfer engines operate on.
        """
        order = np.asarray(order, dtype=np.int64)
        if order.size != self.num_vertices or np.any(np.sort(order) != np.arange(self.num_vertices)):
            raise ValueError("order must be a permutation of range(num_vertices)")
        # new_id[old_vertex] = new label
        new_id = np.empty(self.num_vertices, dtype=np.int64)
        new_id[order] = np.arange(self.num_vertices)

        sources = new_id[self.edge_sources()]
        destinations = new_id[self.column_index]
        edges = np.stack([sources, destinations], axis=1)
        return CSRGraph.from_edges(
            edges,
            num_vertices=self.num_vertices,
            weights=self.edge_value,
            name=self.name,
        )

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (testing / validation only)."""
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(self.num_vertices))
        for src, dst, weight in self.iter_edges():
            nx_graph.add_edge(src, dst, weight=weight)
        return nx_graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CSRGraph(name=%r, |V|=%d, |E|=%d, weighted=%s)" % (
            self.name,
            self.num_vertices,
            self.num_edges,
            self.is_weighted,
        )
