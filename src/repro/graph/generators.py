"""Synthetic graph generators.

The paper evaluates on billion-edge web and social graphs plus RMAT
synthetic graphs (Table IV).  Neither fits a laptop reproduction, so this
module provides scaled-down generators whose *structural* properties match
what the evaluation actually exercises:

* **RMAT** (:func:`rmat_graph`) — the recursive-matrix generator the paper
  uses for the Figure 9 scaling sweep.  Produces power-law in/out degrees
  and community-like structure.
* **Chung-Lu power law** (:func:`power_law_graph`) — degree-sequence
  controlled power-law graphs used as stand-ins for the social networks
  (TW/FK/FS) where the degree exponent matters for Figure 3(f).
* **Uniform random, grid, path, star, complete** — small structured graphs
  used by unit tests and edge-case property tests.

All generators are deterministic given a ``seed`` and return
:class:`~repro.graph.csr.CSRGraph` instances.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "rmat_graph",
    "power_law_graph",
    "uniform_random_graph",
    "grid_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "random_weights",
]


def random_weights(
    num_edges: int,
    low: float = 1.0,
    high: float = 64.0,
    seed: int = 0,
) -> np.ndarray:
    """Uniform random integer-valued edge weights in ``[low, high]``.

    SSSP in the paper runs on integer-weighted graphs; integer weights also
    make reference comparisons exact.
    """
    rng = np.random.default_rng(seed)
    return rng.integers(int(low), int(high) + 1, size=num_edges).astype(np.float64)


def rmat_graph(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = False,
    name: str | None = None,
) -> CSRGraph:
    """Generate an RMAT graph (Chakrabarti et al., SDM 2004).

    Each edge is placed by recursively descending a 2x2 partition of the
    adjacency matrix with probabilities ``(a, b, c, d)`` where
    ``d = 1 - a - b - c``.  The defaults are the Graph500 parameters, which
    produce the heavy-tailed degree distributions the paper's Figure 9
    relies on.

    Parameters
    ----------
    num_vertices:
        Number of vertices; rounded up to the next power of two internally
        and then truncated back, matching common RMAT implementations.
    num_edges:
        Number of directed edges to sample (duplicates allowed, then
        deduplicated, so the final count can be slightly lower).
    """
    if num_vertices <= 0:
        return CSRGraph.empty(0, name=name or "rmat")
    d = 1.0 - a - b - c
    if d < -1e-9:
        raise ValueError("RMAT probabilities must sum to at most 1")
    rng = np.random.default_rng(seed)
    scale = max(1, int(np.ceil(np.log2(num_vertices))))

    sources = np.zeros(num_edges, dtype=np.int64)
    destinations = np.zeros(num_edges, dtype=np.int64)
    # Descend bit by bit; vectorised over all edges at once.
    for level in range(scale):
        random_draw = rng.random(num_edges)
        src_bit = (random_draw >= a + b).astype(np.int64)
        # Within the chosen row half, pick the column half.
        top_threshold = np.where(src_bit == 0, a / max(a + b, 1e-12), c / max(c + d, 1e-12))
        column_draw = rng.random(num_edges)
        dst_bit = (column_draw >= top_threshold).astype(np.int64)
        sources = (sources << 1) | src_bit
        destinations = (destinations << 1) | dst_bit

    sources = sources % num_vertices
    destinations = destinations % num_vertices
    keep = sources != destinations
    edges = np.stack([sources[keep], destinations[keep]], axis=1)
    weights = None
    graph = CSRGraph.from_edges(
        edges,
        num_vertices=num_vertices,
        name=name or "rmat-%d" % num_edges,
        deduplicate=True,
    )
    if weighted:
        weights = random_weights(graph.num_edges, seed=seed + 1)
        graph = graph.with_weights(weights)
    return graph


def power_law_graph(
    num_vertices: int,
    average_degree: float,
    exponent: float = 2.1,
    seed: int = 0,
    weighted: bool = False,
    directed: bool = True,
    name: str | None = None,
) -> CSRGraph:
    """Generate a Chung-Lu style power-law graph.

    Vertex ``i`` receives an expected degree proportional to
    ``(i + 1) ** (-1 / (exponent - 1))``; edges are then sampled by picking
    endpoints with probability proportional to expected degree.  The result
    has a power-law out-degree distribution with the requested average
    degree, which is what Figure 3(f) (74.7 % of vertices under degree 32)
    and the zero-copy saturation analysis depend on.

    Setting ``directed=False`` symmetrizes the edge set, mirroring the
    undirected friendster datasets (FK, FS); the requested average degree
    then refers to the symmetrized graph.
    """
    if num_vertices <= 0:
        return CSRGraph.empty(0, name=name or "power-law")
    rng = np.random.default_rng(seed)
    # For undirected graphs each generated edge contributes two directed
    # entries after symmetrization.
    per_direction_degree = average_degree if directed else average_degree / 2.0
    target_edges = int(round(num_vertices * per_direction_degree))

    # Zipf-like expected out-degrees: vertex at rank i gets mass i^(-1/(α-1)).
    # Randomized rounding keeps the total close to the target while leaving
    # most vertices with single-digit degrees and a handful of huge hubs —
    # the skew Figure 3(f) documents for the paper's social graphs.
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    mass = ranks ** (-1.0 / (exponent - 1.0))
    expected = mass / mass.sum() * target_edges
    # Hubs cannot exceed the vertex count; rescale the remaining mass
    # proportionally (preserving the shape of the distribution) so the
    # average degree stays near the target.
    for _ in range(3):
        expected = np.minimum(expected, num_vertices - 1)
        total_expected = expected.sum()
        if total_expected <= 0 or total_expected >= target_edges:
            break
        expected = expected * (target_edges / total_expected)
    expected = np.minimum(expected, num_vertices - 1)
    out_degrees = np.floor(expected).astype(np.int64)
    out_degrees += (rng.random(num_vertices) < (expected - out_degrees)).astype(np.int64)
    out_degrees = np.clip(out_degrees, 0, num_vertices - 1)

    total = int(out_degrees.sum())
    sources = np.repeat(np.arange(num_vertices, dtype=np.int64), out_degrees)
    # Destinations follow almost the same skew so in-degrees are heavy
    # tailed too (hub scores and the low-degree tail both need it).
    dst_mass = ranks ** (-0.9 / (exponent - 1.0))
    destinations = rng.choice(num_vertices, size=total, p=dst_mass / dst_mass.sum())
    keep = sources != destinations
    edges = np.stack([sources[keep], destinations[keep]], axis=1)
    # Random relabeling so that "hub" vertices are not trivially the lowest
    # ids: hub sorting must actually do work.
    relabel = rng.permutation(num_vertices)
    edges = relabel[edges]
    graph = CSRGraph.from_edges(
        edges,
        num_vertices=num_vertices,
        name=name or "power-law",
        deduplicate=True,
    )
    if not directed:
        graph = graph.symmetrize()
        graph = CSRGraph(graph.row_offset, graph.column_index, None, name=name or "power-law")
    if weighted:
        graph = graph.with_weights(random_weights(graph.num_edges, seed=seed + 1))
    return graph


def uniform_random_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    weighted: bool = False,
    name: str | None = None,
) -> CSRGraph:
    """Erdos-Renyi-style graph: each edge picks both endpoints uniformly."""
    if num_vertices <= 0:
        return CSRGraph.empty(0, name=name or "uniform")
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, num_vertices, size=num_edges)
    destinations = rng.integers(0, num_vertices, size=num_edges)
    keep = sources != destinations
    edges = np.stack([sources[keep], destinations[keep]], axis=1)
    graph = CSRGraph.from_edges(
        edges, num_vertices=num_vertices, name=name or "uniform", deduplicate=True
    )
    if weighted:
        graph = graph.with_weights(random_weights(graph.num_edges, seed=seed + 1))
    return graph


def grid_graph(rows: int, cols: int, weighted: bool = False, seed: int = 0) -> CSRGraph:
    """A 2-D lattice with edges to the right and downward neighbors.

    Grids have uniformly tiny degrees and very long diameters: the opposite
    regime from power-law graphs, useful for exercising the traversal
    algorithms' long-tail iterations.
    """
    num_vertices = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            vertex = r * cols + c
            if c + 1 < cols:
                edges.append((vertex, vertex + 1))
                edges.append((vertex + 1, vertex))
            if r + 1 < rows:
                edges.append((vertex, vertex + cols))
                edges.append((vertex + cols, vertex))
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices, name="grid-%dx%d" % (rows, cols))
    if weighted:
        graph = graph.with_weights(random_weights(graph.num_edges, seed=seed))
    return graph


def path_graph(num_vertices: int, weighted: bool = False, seed: int = 0) -> CSRGraph:
    """A directed path ``0 -> 1 -> ... -> n-1`` (worst case for frontiers)."""
    edges = [(i, i + 1) for i in range(num_vertices - 1)]
    graph = CSRGraph.from_edges(edges, num_vertices=max(num_vertices, 0), name="path-%d" % num_vertices)
    if weighted:
        graph = graph.with_weights(random_weights(graph.num_edges, seed=seed))
    return graph


def star_graph(num_leaves: int, weighted: bool = False, seed: int = 0) -> CSRGraph:
    """A star: vertex 0 points to every leaf (single extreme hub)."""
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    graph = CSRGraph.from_edges(edges, num_vertices=num_leaves + 1, name="star-%d" % num_leaves)
    if weighted:
        graph = graph.with_weights(random_weights(graph.num_edges, seed=seed))
    return graph


def complete_graph(num_vertices: int, weighted: bool = False, seed: int = 0) -> CSRGraph:
    """A complete directed graph without self loops."""
    edges = [(i, j) for i in range(num_vertices) for j in range(num_vertices) if i != j]
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices, name="complete-%d" % num_vertices)
    if weighted:
        graph = graph.with_weights(random_weights(graph.num_edges, seed=seed))
    return graph
