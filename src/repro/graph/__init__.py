"""Graph substrate: CSR storage, generators, partitioning and reordering.

This package provides everything HyTGraph needs to know about the input
graph before and during processing:

* :mod:`repro.graph.csr` — the compressed-sparse-row structure the paper
  assumes (Figure 1): a ``row_offset`` index resident on the (simulated)
  GPU and ``column_index`` / ``edge_value`` arrays resident in host memory.
* :mod:`repro.graph.generators` — synthetic graph generators (RMAT,
  Chung-Lu power law, uniform, lattices) used as laptop-scale stand-ins for
  the paper's billion-edge datasets.
* :mod:`repro.graph.datasets` — named stand-ins for the five real-world
  graphs of Table IV (SK, TW, FK, UK, FS).
* :mod:`repro.graph.partition` — chunk-based edge-balanced partitioning of
  the edge-associated data (Section IV).
* :mod:`repro.graph.reorder` — hub sorting used by the contribution-driven
  priority scheduler (Section VI-A, Formula 4).
* :mod:`repro.graph.frontier` — active-vertex frontiers and per-partition
  activeness accounting.
* :mod:`repro.graph.properties` — degree statistics (Figure 3f).
* :mod:`repro.graph.io` — edge-list and binary CSR persistence.
"""

from repro.graph.csr import CSRGraph
from repro.graph.frontier import Frontier
from repro.graph.partition import (
    DeviceShard,
    EdgePartition,
    Partitioning,
    ShardedPartitioning,
    partition_by_bytes,
    partition_by_count,
)
from repro.graph.reorder import hub_scores, hub_sort_order, apply_vertex_order
from repro.graph.generators import (
    rmat_graph,
    power_law_graph,
    uniform_random_graph,
    grid_graph,
    path_graph,
    star_graph,
    complete_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset

__all__ = [
    "CSRGraph",
    "Frontier",
    "EdgePartition",
    "Partitioning",
    "DeviceShard",
    "ShardedPartitioning",
    "partition_by_bytes",
    "partition_by_count",
    "hub_scores",
    "hub_sort_order",
    "apply_vertex_order",
    "rmat_graph",
    "power_law_graph",
    "uniform_random_graph",
    "grid_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
]
