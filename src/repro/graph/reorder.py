"""Vertex reordering: hub sorting and degree sorting.

HyTGraph's contribution-driven priority scheduling (Section VI-A) relies on
*hub sorting* [Zhang et al., BigData 2017]: the top 8 % most important
vertices — scored by Formula 4,

    H(v) = Do(v) * Di(v) / (Do_max * Di_max)

— are gathered at the beginning of the CSR structure while all other
vertices keep their natural order.  Gathering the hubs has two effects the
paper calls out: (1) the hub partitions can be scheduled first so that hub
vertices accumulate contributions before their downstream neighbours are
computed, and (2) vertices with a high probability of being activated are
stored together, which sharpens the per-partition cost analysis.

Hub sorting is a preprocessing step: it is performed once per graph and
reused by every algorithm (Section VI-A, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "hub_scores",
    "hub_sort_order",
    "degree_sort_order",
    "apply_vertex_order",
    "ReorderedGraph",
    "hub_sort",
]

DEFAULT_HUB_FRACTION = 0.08


def hub_scores(graph: CSRGraph) -> np.ndarray:
    """Importance score ``H(v)`` of every vertex (Formula 4).

    Vertices with both high out-degree (many downstream dependents) and
    high in-degree (high probability of being re-activated) score highest.
    Scores are in ``[0, 1]``; an isolated vertex scores 0.
    """
    out_degrees = graph.out_degrees.astype(np.float64)
    in_degrees = graph.in_degrees.astype(np.float64)
    max_out = out_degrees.max() if out_degrees.size else 0.0
    max_in = in_degrees.max() if in_degrees.size else 0.0
    denominator = max_out * max_in
    if denominator == 0:
        return np.zeros(graph.num_vertices, dtype=np.float64)
    return (out_degrees * in_degrees) / denominator


def hub_sort_order(graph: CSRGraph, hub_fraction: float = DEFAULT_HUB_FRACTION) -> np.ndarray:
    """Vertex order with the top ``hub_fraction`` hub vertices first.

    Returns an array ``order`` such that ``order[i]`` is the *original* id
    of the vertex placed at position ``i``.  Hubs are sorted by descending
    ``H(v)``; the remaining vertices keep their natural (ascending id)
    order, exactly as Section VI-A describes.
    """
    if not 0.0 <= hub_fraction <= 1.0:
        raise ValueError("hub_fraction must be in [0, 1]")
    scores = hub_scores(graph)
    num_hubs = int(round(graph.num_vertices * hub_fraction))
    if num_hubs == 0:
        return np.arange(graph.num_vertices, dtype=np.int64)
    # argpartition gives the top-k set; sort that set by descending score
    # (ties broken by vertex id for determinism).
    top = np.argpartition(-scores, num_hubs - 1)[:num_hubs]
    top = top[np.lexsort((top, -scores[top]))]
    hub_set = np.zeros(graph.num_vertices, dtype=bool)
    hub_set[top] = True
    rest = np.nonzero(~hub_set)[0]
    return np.concatenate([top, rest]).astype(np.int64)


def degree_sort_order(graph: CSRGraph, descending: bool = True) -> np.ndarray:
    """Vertex order sorted purely by out-degree (baseline reordering)."""
    degrees = graph.out_degrees
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    return order.astype(np.int64)


@dataclass(frozen=True)
class ReorderedGraph:
    """A relabelled graph plus the mappings back to the original ids.

    Attributes
    ----------
    graph:
        The relabelled :class:`CSRGraph`.
    new_to_old:
        ``new_to_old[new_id] == original_id``.
    old_to_new:
        ``old_to_new[original_id] == new_id``.
    num_hubs:
        Number of hub vertices gathered at the front (0 if no hub sorting).
    """

    graph: CSRGraph
    new_to_old: np.ndarray
    old_to_new: np.ndarray
    num_hubs: int = 0

    def translate_to_new(self, vertex: int) -> int:
        """Original vertex id -> relabelled id."""
        return int(self.old_to_new[vertex])

    def translate_to_old(self, vertex: int) -> int:
        """Relabelled vertex id -> original id."""
        return int(self.new_to_old[vertex])

    def values_in_original_order(self, values: np.ndarray) -> np.ndarray:
        """Map per-vertex results from relabelled order back to original ids."""
        restored = np.empty_like(values)
        restored[self.new_to_old] = values
        return restored


def apply_vertex_order(graph: CSRGraph, order: np.ndarray, num_hubs: int = 0) -> ReorderedGraph:
    """Relabel ``graph`` according to ``order`` and keep the id mappings."""
    order = np.asarray(order, dtype=np.int64)
    relabelled = graph.permute(order)
    old_to_new = np.empty(graph.num_vertices, dtype=np.int64)
    old_to_new[order] = np.arange(graph.num_vertices)
    return ReorderedGraph(graph=relabelled, new_to_old=order, old_to_new=old_to_new, num_hubs=num_hubs)


def hub_sort(graph: CSRGraph, hub_fraction: float = DEFAULT_HUB_FRACTION) -> ReorderedGraph:
    """Hub-sort a graph: gather the top hubs at the front of the CSR.

    Convenience wrapper combining :func:`hub_sort_order` and
    :func:`apply_vertex_order`.
    """
    order = hub_sort_order(graph, hub_fraction)
    num_hubs = int(round(graph.num_vertices * hub_fraction))
    return apply_vertex_order(graph, order, num_hubs=num_hubs)
