"""Graph persistence: edge-list text files and binary CSR bundles.

Real deployments of HyTGraph preprocess a downloaded edge list once
(partitioning + hub sorting) and reuse the binary CSR afterwards.  This
module provides the equivalent load/save plumbing so the examples can
demonstrate the full preprocess-then-run pipeline.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["save_edge_list", "load_edge_list", "save_csr", "load_csr"]


def save_edge_list(graph: CSRGraph, path: str | Path, include_weights: bool | None = None) -> None:
    """Write a graph as a whitespace-separated edge list.

    Each line is ``src dst`` or ``src dst weight``.  Lines starting with
    ``#`` are comments (SNAP convention).
    """
    path = Path(path)
    if include_weights is None:
        include_weights = graph.is_weighted
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# %s |V|=%d |E|=%d\n" % (graph.name, graph.num_vertices, graph.num_edges))
        for src, dst, weight in graph.iter_edges():
            if include_weights:
                handle.write("%d %d %g\n" % (src, dst, weight))
            else:
                handle.write("%d %d\n" % (src, dst))


def load_edge_list(
    path: str | Path,
    num_vertices: int | None = None,
    weighted: bool | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Read a whitespace-separated edge list written by :func:`save_edge_list`.

    Parameters
    ----------
    weighted:
        Force interpretation of a third column as weights.  If ``None`` the
        presence of a third column on the first data line decides.
    """
    path = Path(path)
    sources: list[int] = []
    destinations: list[int] = []
    weights: list[float] = []
    has_weights = weighted
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if has_weights is None:
                has_weights = len(parts) >= 3
            sources.append(int(parts[0]))
            destinations.append(int(parts[1]))
            if has_weights:
                weights.append(float(parts[2]) if len(parts) >= 3 else 1.0)
    edges = np.stack([np.array(sources, dtype=np.int64), np.array(destinations, dtype=np.int64)], axis=1) if sources else np.zeros((0, 2), dtype=np.int64)
    weight_array = np.array(weights, dtype=np.float64) if has_weights and weights else None
    return CSRGraph.from_edges(
        edges,
        num_vertices=num_vertices,
        weights=weight_array,
        name=name or path.stem,
    )


def save_csr(graph: CSRGraph, path: str | Path) -> None:
    """Save a graph as a compressed ``.npz`` CSR bundle."""
    path = Path(path)
    arrays = {
        "row_offset": graph.row_offset,
        "column_index": graph.column_index,
        "name": np.array(graph.name),
    }
    if graph.edge_value is not None:
        arrays["edge_value"] = graph.edge_value
    np.savez_compressed(path, **arrays)


def load_csr(path: str | Path) -> CSRGraph:
    """Load a graph saved by :func:`save_csr`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as bundle:
        edge_value = bundle["edge_value"] if "edge_value" in bundle else None
        name = str(bundle["name"]) if "name" in bundle else path.stem
        return CSRGraph(bundle["row_offset"], bundle["column_index"], edge_value, name=name)
