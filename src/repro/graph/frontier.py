"""Active-vertex frontiers.

Vertex-centric processing only touches the *active* vertices each
iteration (Section II-A).  HyTGraph tracks activity with a bitmap-directed
frontier (Section VI-C, borrowed from Grus) so that per-partition
activeness can be computed cheaply.  :class:`Frontier` wraps a boolean
NumPy array with the handful of operations the runtime and the transfer
engines need.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["Frontier"]


class Frontier:
    """A set of active vertices backed by a boolean bitmap."""

    def __init__(self, num_vertices: int, active: Iterable[int] | np.ndarray | None = None):
        self._mask = np.zeros(num_vertices, dtype=bool)
        if active is not None:
            active_array = np.asarray(list(active) if not isinstance(active, np.ndarray) else active)
            if active_array.size:
                if active_array.dtype == bool:
                    if active_array.size != num_vertices:
                        raise ValueError("boolean mask must have length num_vertices")
                    self._mask |= active_array
                else:
                    self._mask[active_array.astype(np.int64)] = True

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Frontier":
        """Wrap an existing boolean mask (copied)."""
        frontier = cls(mask.size)
        frontier._mask = np.array(mask, dtype=bool, copy=True)
        return frontier

    @classmethod
    def all_active(cls, num_vertices: int) -> "Frontier":
        """A frontier with every vertex active (first PageRank iteration)."""
        frontier = cls(num_vertices)
        frontier._mask[:] = True
        return frontier

    @classmethod
    def single(cls, num_vertices: int, vertex: int) -> "Frontier":
        """A frontier containing only ``vertex`` (BFS/SSSP source)."""
        return cls(num_vertices, [vertex])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Total number of vertices the frontier ranges over."""
        return self._mask.size

    @property
    def mask(self) -> np.ndarray:
        """The underlying boolean bitmap (do not mutate)."""
        return self._mask

    @property
    def count(self) -> int:
        """Number of active vertices."""
        return int(self._mask.sum())

    @property
    def is_empty(self) -> bool:
        """Whether no vertices are active (algorithm converged)."""
        return not self._mask.any()

    def active_vertices(self) -> np.ndarray:
        """Sorted array of active vertex ids."""
        return np.nonzero(self._mask)[0]

    def is_active(self, vertex: int) -> bool:
        """Whether a single vertex is active."""
        return bool(self._mask[vertex])

    def active_edges(self, out_degrees: np.ndarray) -> int:
        """Total out-degree of the active vertices (the active edge count)."""
        return int(out_degrees[self._mask].sum())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def activate(self, vertices: np.ndarray | Iterable[int]) -> None:
        """Mark the given vertices active."""
        vertex_array = np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices)
        if vertex_array.size:
            self._mask[vertex_array.astype(np.int64)] = True

    def deactivate(self, vertices: np.ndarray | Iterable[int]) -> None:
        """Mark the given vertices inactive."""
        vertex_array = np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices)
        if vertex_array.size:
            self._mask[vertex_array.astype(np.int64)] = False

    def clear(self) -> None:
        """Deactivate every vertex."""
        self._mask[:] = False

    def clear_range(self, start: int, end: int) -> None:
        """Deactivate every vertex in ``[start, end)`` (used per partition)."""
        self._mask[start:end] = False

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "Frontier") -> "Frontier":
        """Frontier active in either operand."""
        self._check_compatible(other)
        return Frontier.from_mask(self._mask | other._mask)

    def intersection(self, other: "Frontier") -> "Frontier":
        """Frontier active in both operands."""
        self._check_compatible(other)
        return Frontier.from_mask(self._mask & other._mask)

    def difference(self, other: "Frontier") -> "Frontier":
        """Frontier active in ``self`` but not in ``other``."""
        self._check_compatible(other)
        return Frontier.from_mask(self._mask & ~other._mask)

    def copy(self) -> "Frontier":
        """Deep copy."""
        return Frontier.from_mask(self._mask)

    def _check_compatible(self, other: "Frontier") -> None:
        if self.num_vertices != other.num_vertices:
            raise ValueError("frontiers range over different vertex counts")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frontier):
            return NotImplemented
        return self.num_vertices == other.num_vertices and bool(np.array_equal(self._mask, other._mask))

    def __len__(self) -> int:
        return self.count

    def __contains__(self, vertex: int) -> bool:
        return self.is_active(vertex)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Frontier(active=%d/%d)" % (self.count, self.num_vertices)
