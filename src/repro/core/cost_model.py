"""Per-partition transfer cost estimation (Section V-A, Formulas 1-3).

Each iteration HyTGraph estimates, for every partition containing active
edges, what each candidate engine would cost:

* ``Tef_i`` — ExpTM-filter ships the whole partition in saturated TLPs
  (Formula 1):  ``ceil(sum_{v in P_i} Do(v) * d1 / m / MR) * RTT``.
* ``Tec_i`` — ExpTM-compaction ships only the active edges plus a fresh
  index (Formula 2); the CPU-compaction term is deliberately left out of
  the comparison because its throughput is hard to model (Section V-A,
  "Transfer engine selection", and Section VIII), so only the transfer
  term is estimated.
* ``Tiz_i`` — ImpTM-zero-copy issues one or more memory requests per
  active vertex, with a damped round trip for unsaturated TLPs
  (Formula 3).

All estimates are vectorised over partitions; RTT is an arbitrary common
factor during comparison so the absolute value never matters, but the
model keeps real seconds so the estimates can also be validated against
the engines' actual execution in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partitioning
from repro.sim.config import HardwareConfig
from repro.sim.pcie import PCIeModel

__all__ = ["PartitionCosts", "CostModel"]


@dataclass(frozen=True)
class PartitionCosts:
    """Estimated per-partition costs for one iteration.

    All arrays have one entry per partition; partitions with no active
    edge have zero cost in every column and are never scheduled.
    """

    filter_cost: np.ndarray
    compaction_cost: np.ndarray
    zero_copy_cost: np.ndarray
    active_vertices: np.ndarray
    active_edges: np.ndarray

    @property
    def num_partitions(self) -> int:
        """Number of partitions covered by the estimate."""
        return self.filter_cost.size

    def active_partitions(self) -> np.ndarray:
        """Indices of partitions that contain at least one active edge."""
        return np.nonzero(self.active_edges > 0)[0]


class CostModel:
    """Formula 1-3 estimator bound to a graph, a partitioning and hardware."""

    def __init__(self, graph: CSRGraph, partitioning: Partitioning, config: HardwareConfig):
        self.graph = graph
        self.partitioning = partitioning
        self.config = config
        self.pcie = PCIeModel(config)
        self._partition_edges = partitioning.edges_per_partition()
        self._d1 = graph.edge_bytes_per_edge
        # Formula 1 depends only on the (static) partition sizes.
        self._static_filter_cost = self._filter_cost_from_edges(self._partition_edges)

    # ------------------------------------------------------------------
    # Individual formulas
    # ------------------------------------------------------------------
    def filter_cost(self, partition_index: int) -> float:
        """Formula 1: whole-partition explicit transfer time."""
        edges = int(self._partition_edges[partition_index])
        return self._filter_cost_from_edges(np.array([edges]))[0]

    def compaction_cost(self, active_edges: int, active_vertices: int) -> float:
        """Formula 2's transfer term: compacted active edges + index array."""
        return self._compaction_cost_from_counts(
            np.array([active_edges]), np.array([active_vertices])
        )[0]

    def zero_copy_cost(self, active_vertex_ids: np.ndarray, partition_index: int) -> float:
        """Formula 3: per-vertex zero-copy access with the damped RTT."""
        active_vertex_ids = np.asarray(active_vertex_ids, dtype=np.int64)
        if active_vertex_ids.size == 0:
            return 0.0
        degrees = self.graph.out_degrees[active_vertex_ids]
        starts = self.graph.row_offset[active_vertex_ids] * self._d1
        requests = self.pcie.requests_for_vertices(degrees, starts, value_bytes=self._d1)
        total_requests = int(requests.sum())
        num_tlps = int(np.ceil(total_requests / self.config.pcie_max_outstanding)) if total_requests else 0
        partition_edges = int(self._partition_edges[partition_index])
        active_edges = int(degrees.sum())
        payload_fraction = active_edges / partition_edges if partition_edges else 0.0
        return num_tlps * self.pcie.zero_copy_rtt(payload_fraction)

    # ------------------------------------------------------------------
    # Vectorised per-iteration estimation
    # ------------------------------------------------------------------
    def _filter_cost_from_edges(self, partition_edges: np.ndarray) -> np.ndarray:
        num_bytes = partition_edges.astype(np.float64) * self._d1
        tlps = np.ceil(num_bytes / self.config.tlp_payload_bytes)
        return tlps * self.config.tlp_round_trip_time

    def _compaction_cost_from_counts(
        self, active_edges: np.ndarray, active_vertices: np.ndarray
    ) -> np.ndarray:
        num_bytes = (
            active_edges.astype(np.float64) * self._d1
            + active_vertices.astype(np.float64) * self.config.index_entry_bytes
        )
        tlps = np.ceil(num_bytes / self.config.tlp_payload_bytes)
        return tlps * self.config.tlp_round_trip_time

    def estimate(self, active_mask: np.ndarray, active_ids: np.ndarray | None = None) -> PartitionCosts:
        """Estimate all three engine costs for every partition.

        ``active_mask`` is the frontier bitmap at the start of the
        iteration; callers that already hold the sorted active vertex ids
        can pass them as ``active_ids`` (the mask is then not scanned).
        The returned arrays are what the
        :class:`~repro.core.selection.EngineSelector` compares.
        """
        if active_ids is None:
            active_ids = np.flatnonzero(np.asarray(active_mask, dtype=bool))
        num_partitions = self.partitioning.num_partitions

        # Per-partition frontier reductions share one id array: counts,
        # degrees and (below) zero-copy requests all bin by partition.
        partition_of = self.partitioning.partition_of_vertices(active_ids)
        degrees = self.graph.out_degrees[active_ids]
        active_vertices = np.bincount(partition_of, minlength=num_partitions).astype(np.int64)
        active_edges = np.bincount(partition_of, weights=degrees, minlength=num_partitions).astype(np.int64)

        filter_cost = np.where(active_edges > 0, self._static_filter_cost, 0.0)
        compaction_cost = self._compaction_cost_from_counts(active_edges, active_vertices)
        compaction_cost = np.where(active_edges > 0, compaction_cost, 0.0)

        # Zero-copy: per-vertex requests, grouped back per partition.
        zero_copy_cost = np.zeros(num_partitions, dtype=np.float64)
        if active_ids.size:
            starts = self.graph.row_offset[active_ids] * self._d1
            requests = self.pcie.requests_for_vertices(degrees, starts, value_bytes=self._d1)
            requests_per_partition = np.bincount(
                partition_of, weights=requests, minlength=num_partitions
            )
            tlps = np.ceil(requests_per_partition / self.config.pcie_max_outstanding)
            partition_edges_safe = np.maximum(self._partition_edges, 1)
            payload_fraction = np.clip(active_edges / partition_edges_safe, 0.0, 1.0)
            gamma = self.config.zero_copy_gamma
            rtt_zc = (gamma + (1.0 - gamma) * payload_fraction) * self.config.tlp_round_trip_time
            zero_copy_cost = tlps * rtt_zc
            zero_copy_cost = np.where(active_edges > 0, zero_copy_cost, 0.0)

        return PartitionCosts(
            filter_cost=filter_cost,
            compaction_cost=compaction_cost,
            zero_copy_cost=zero_copy_cost,
            active_vertices=active_vertices,
            active_edges=active_edges,
        )
