"""Scatter-reduce kernel facade — the hot core of every vertex program.

Every push-based vertex program funnels through the four entry points in
this module: :func:`scatter_add`, :func:`scatter_min`, :func:`scatter_max`
and the fused :func:`push_and_activate`.  Since the backend refactor the
implementations live in :mod:`repro.core.backends`:

* ``numpy`` — the always-available bitwise reference (the original kernel
  layer; see :mod:`repro.core.backends.numpy_backend` for the dispatch
  architecture and exactness arguments).
* ``numba`` — optional JIT-compiled loops, ≥2x on the dense fused pushes.
* ``array-api`` — the numpy kernels bridged to CuPy/torch namespaces.

This facade stays importable by name (``from repro.core.kernels import
push_and_activate``) — the algorithm modules bind these functions at import
time — and routes each call to the *active* backend, resolved per call so
``use_backend`` scopes and the runtime's per-context backend selection
both take effect without rebinding anything.

:func:`legacy_kernels` (re-exported from the numpy backend) wins over any
active backend: when the legacy flag is up, calls go straight to the
original ``ufunc.at`` + snapshot + ``np.unique`` reference path, which the
equivalence tests and the benchmark harness use as ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import base as _backends
from repro.core.backends import numpy_backend as _numpy
from repro.core.backends.numpy_backend import (
    DENSE_FRONTIER_FACTOR,
    PORTABLE_AT_CUTOFF,
    legacy_kernels,
    using_legacy_kernels,
)

__all__ = [
    "scatter_add",
    "scatter_min",
    "scatter_max",
    "push_and_activate",
    "legacy_kernels",
    "using_legacy_kernels",
    "DENSE_FRONTIER_FACTOR",
    "PORTABLE_AT_CUTOFF",
]


def scatter_add(target: np.ndarray, destinations: np.ndarray, values: np.ndarray) -> np.ndarray:
    """In-place ``target[destinations] += values`` on the active backend."""
    if _numpy._LEGACY:
        return _numpy.scatter_add(target, destinations, values)
    return _backends.active_backend().scatter_add(target, destinations, values)


def scatter_min(target: np.ndarray, destinations: np.ndarray, values: np.ndarray) -> np.ndarray:
    """In-place ``target[d] = min(target[d], v)`` on the active backend."""
    if _numpy._LEGACY:
        return _numpy.scatter_min(target, destinations, values)
    return _backends.active_backend().scatter_min(target, destinations, values)


def scatter_max(target: np.ndarray, destinations: np.ndarray, values: np.ndarray) -> np.ndarray:
    """In-place ``target[d] = max(target[d], v)`` on the active backend."""
    if _numpy._LEGACY:
        return _numpy.scatter_max(target, destinations, values)
    return _backends.active_backend().scatter_max(target, destinations, values)


def push_and_activate(
    target: np.ndarray,
    destinations: np.ndarray,
    values: np.ndarray,
    *,
    combine: str = "min",
    threshold: float | None = None,
) -> np.ndarray:
    """Fused scatter + activation detection on the active backend.

    Applies one scatter-reduce to ``target`` in place and returns the
    unique, sorted ids of the vertices the pushes activated:

    * ``combine="min"`` / ``combine="max"`` (value replacement): the
      destinations whose value strictly improved.
    * ``combine="add"`` (value accumulation): the destinations whose
      updated value exceeds ``threshold`` (required).
    """
    if _numpy._LEGACY:
        return _numpy.push_and_activate(
            target, destinations, values, combine=combine, threshold=threshold
        )
    return _backends.active_backend().push_and_activate(
        target, destinations, values, combine=combine, threshold=threshold
    )
