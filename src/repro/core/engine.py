"""The HyTGraph runtime (Figure 5).

The engine alternates two stages until the algorithm converges:

1. **Cost-aware task generation** — estimate the three engine costs for
   every partition containing active edges (:mod:`repro.core.cost_model`),
   select the cheapest engine per partition (:mod:`repro.core.selection`)
   and merge the selections into scheduler tasks
   (:mod:`repro.core.combiner`).
2. **Asynchronous task scheduling** — order the tasks by contribution
   (:mod:`repro.core.priority`), execute them (vertex-program semantics
   plus transfer-engine accounting) and run the resulting stage durations
   through the multi-stream scheduler (:mod:`repro.sim.streams`) to obtain
   the iteration's simulated wall-clock time.

Within an iteration execution is asynchronous: a task sees every value
update made by the tasks scheduled before it, and the loaded subgraph is
re-processed once (Section VI-A, "recomputes the loaded subgraph only
once") so cheap extra GPU work replaces future transfers.

Every behavioural feature is switchable through :class:`HyTGraphOptions`
so the ablation benchmarks (Figure 8) can turn task combining and
contribution-driven scheduling on and off independently.

Performance architecture
------------------------
The engine is built around a partition-local frontier fast path: tasks
cover contiguous partition vertex ranges, so pending vertices are found
with slice views + ``np.flatnonzero`` (never an O(|V|) per-task boolean
mask), each task's sorted active-vertex array is split across partitions
by bisection, transfers are priced with one vectorised
:meth:`~repro.transfer.base.TransferEngine.transfer_task` call, and one
frontier scan per iteration feeds the iteration stats, the cost model and
the task combiner.  The per-edge scatter work itself lives in the shared
kernel layer (:mod:`repro.core.kernels`); ``benchmarks/bench_perf_hotpaths.py``
measures both layers against the seed implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.core.combiner import ScheduledTask, TaskCombiner
from repro.core.cost_model import CostModel
from repro.core.priority import ContributionScheduler
from repro.core.selection import EngineSelector, SelectionThresholds
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partitioning, partition_by_bytes, partition_by_count
from repro.graph.reorder import ReorderedGraph, hub_sort
from repro.metrics.results import IterationStats, RunResult
from repro.sim.config import HardwareConfig, default_config
from repro.sim.kernel import KernelModel
from repro.sim.streams import StreamScheduler, StreamTask
from repro.transfer.base import EngineKind, TransferEngine
from repro.transfer.explicit_compaction import ExplicitCompactionEngine
from repro.transfer.explicit_filter import ExplicitFilterEngine
from repro.transfer.zero_copy import ZeroCopyEngine

__all__ = ["HyTGraphOptions", "HyTGraphEngine"]

# With the paper's billion-edge graphs a 32 MB partition yields on the
# order of a hundred partitions; for arbitrary (scaled-down) graphs the
# default keeps that partition *count* rather than the absolute size.
DEFAULT_PARTITION_DIVISOR = 64


@dataclass
class HyTGraphOptions:
    """Tunable behaviour of the HyTGraph engine.

    The defaults reproduce the full system of the paper; the ablation
    benchmarks flip individual switches.

    Attributes
    ----------
    partition_bytes / num_partitions:
        Partitioning granularity.  When both are ``None`` the graph is
        split into ``DEFAULT_PARTITION_DIVISOR`` edge-balanced partitions
        (the scaled equivalent of the paper's 32 MB chunks).
    combine_factor:
        ``k`` — how many consecutive ExpTM-filter partitions merge into
        one task (4 in the paper).
    task_combining:
        Disable to schedule every partition as its own task (Figure 8's
        plain "Hybrid" bar).
    contribution_scheduling:
        Disable to drop hub-/Δ-driven priorities (Figure 8's "+TC" bar
        keeps task combining but no CDS).
    hub_sorting / hub_fraction:
        Whether to hub-sort the graph during preprocessing and how many
        vertices count as hubs (8 %).
    recompute_loaded:
        Re-process each loaded subgraph once with fresh values.
    thresholds:
        The α/β engine-selection thresholds.
    max_iterations:
        Safety bound on outer iterations.
    """

    partition_bytes: int | None = None
    num_partitions: int | None = None
    combine_factor: int = 4
    task_combining: bool = True
    contribution_scheduling: bool = True
    hub_sorting: bool = True
    hub_fraction: float = 0.08
    recompute_loaded: bool = True
    thresholds: SelectionThresholds = field(default_factory=SelectionThresholds)
    max_iterations: int = 10_000


class HyTGraphEngine:
    """Hybrid-transfer-management graph processing engine."""

    name = "HyTGraph"

    def __init__(
        self,
        graph: CSRGraph,
        config: HardwareConfig | None = None,
        options: HyTGraphOptions | None = None,
    ):
        self.original_graph = graph
        self.config = config or default_config()
        self.options = options or HyTGraphOptions()

        self.preprocessing_time = 0.0
        self.reordering: ReorderedGraph | None = None
        if self.options.hub_sorting and graph.num_vertices > 0:
            self.reordering = hub_sort(graph, self.options.hub_fraction)
            self.graph = self.reordering.graph
            # Hub sorting reads and rewrites the edge arrays once on the
            # host; charge it at the CPU compaction throughput.  It is a
            # one-off cost shared by all subsequent runs (Section VI-A).
            self.preprocessing_time = 2 * graph.edge_data_bytes / self.config.cpu_compaction_throughput
        else:
            self.graph = graph

        self.partitioning = self._build_partitioning()
        # Sink detection runs every iteration; the degree==0 mask is static.
        self._sink_mask = self.graph.out_degrees == 0
        self.cost_model = CostModel(self.graph, self.partitioning, self.config)
        self.selector = EngineSelector(self.options.thresholds)
        self.combiner = TaskCombiner(self.options.combine_factor, enabled=self.options.task_combining)
        self.priority = ContributionScheduler(
            self.graph, self.partitioning, enabled=self.options.contribution_scheduling
        )
        self.kernel_model = KernelModel(self.config)
        self.stream_scheduler = StreamScheduler(self.config)
        self.engines: dict[EngineKind, TransferEngine] = {
            EngineKind.EXP_FILTER: ExplicitFilterEngine(self.graph, self.config),
            EngineKind.EXP_COMPACTION: ExplicitCompactionEngine(self.graph, self.config),
            EngineKind.IMP_ZERO_COPY: ZeroCopyEngine(self.graph, self.config),
        }

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _build_partitioning(self) -> Partitioning:
        options = self.options
        if options.num_partitions is not None:
            return partition_by_count(self.graph, options.num_partitions)
        if options.partition_bytes is not None:
            return partition_by_bytes(self.graph, options.partition_bytes)
        target_bytes = max(
            self.graph.edge_bytes_per_edge,
            self.graph.edge_data_bytes // DEFAULT_PARTITION_DIVISOR,
        )
        return partition_by_bytes(self.graph, target_bytes)

    def _translate_source(self, source: int | None) -> int | None:
        if source is None or self.reordering is None:
            return source
        return self.reordering.translate_to_new(source)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        """Run ``program`` to convergence and return the full result record."""
        program.check_graph(self.graph)
        internal_source = self._translate_source(program.validate_source(self.original_graph, source))
        state = program.create_state(self.graph, internal_source)
        frontier = program.initial_frontier(self.graph, state, internal_source)
        pending = frontier.mask.copy()

        for engine in self.engines.values():
            engine.reset()

        result = RunResult(
            system=self.name,
            algorithm=program.name,
            graph_name=self.original_graph.name,
            preprocessing_time=self.preprocessing_time,
            extra={
                "num_partitions": self.partitioning.num_partitions,
                "hub_sorted": self.reordering is not None,
                "task_combining": self.options.task_combining,
                "contribution_scheduling": self.options.contribution_scheduling,
            },
        )

        iteration = 0
        while pending.any() and iteration < self.options.max_iterations:
            stats = self._run_iteration(iteration, program, state, pending)
            result.iterations.append(stats)
            iteration += 1

        result.converged = not pending.any()
        values = program.vertex_result(state)
        if self.reordering is not None:
            values = self.reordering.values_in_original_order(values)
        result.values = values
        return result

    def _run_iteration(
        self,
        iteration: int,
        program: VertexProgram,
        state: ProgramState,
        pending: np.ndarray,
    ) -> IterationStats:
        graph = self.graph
        # One frontier scan per iteration: the id array feeds the stats,
        # the cost model and the task combiner (the seed engine rescanned
        # the |V| mask in each of those places).
        active_ids = np.flatnonzero(pending)
        active_vertex_count = int(active_ids.size)
        active_edge_count = int(graph.out_degrees[active_ids].sum())

        # Active vertices without out-edges generate no tasks (their
        # partitions carry no active edges), so handle them directly: the
        # push is a no-op for traversal algorithms and simply folds the
        # residual for accumulative ones.
        sinks = np.flatnonzero(pending & self._sink_mask)
        if sinks.size:
            pending[sinks] = False
            program.process(graph, state, sinks)

        # ----- Stage 1: cost-aware task generation ------------------------
        costs = self.cost_model.estimate(pending, active_ids=active_ids)
        selection = self.selector.select(costs)
        tasks = self.combiner.combine(self.partitioning, selection, pending, active_ids=active_ids)
        tasks = self.priority.prioritize(tasks, program, state)
        # The cost analysis and selection run as a device-side scan; only
        # the selection result is copied back (Section V-A).
        generation_overhead = self.kernel_model.device_scan_time(self.partitioning.num_partitions)

        # ----- Stage 2: asynchronous task execution ------------------------
        stream_tasks: list[StreamTask] = []
        total_transfer_bytes = 0
        total_processed_edges = 0
        engine_task_counts: dict[str, int] = {}

        for order, task in enumerate(tasks):
            processed_edges = self._execute_task(task, program, state, pending)
            outcome = self._account_transfer(task)
            kernel_time = self.kernel_model.kernel_time(processed_edges, num_kernels=1)
            stream_tasks.append(
                StreamTask(
                    name=task.label,
                    engine=task.engine.value,
                    cpu_time=outcome.cpu_time,
                    transfer_time=outcome.transfer_time,
                    kernel_time=kernel_time,
                    overlapped_transfer=outcome.overlapped,
                    priority=float(order),
                )
            )
            total_transfer_bytes += outcome.bytes_transferred
            total_processed_edges += processed_edges
            engine_task_counts[task.engine.value] = engine_task_counts.get(task.engine.value, 0) + 1

        timeline = self.stream_scheduler.schedule(stream_tasks)
        iteration_time = timeline.makespan + generation_overhead

        return IterationStats(
            index=iteration,
            time=iteration_time,
            active_vertices=active_vertex_count,
            active_edges=active_edge_count,
            transfer_bytes=total_transfer_bytes,
            compaction_time=timeline.busy_time("cpu"),
            transfer_time=timeline.busy_time("pcie"),
            kernel_time=timeline.busy_time("gpu"),
            processed_edges=total_processed_edges,
            engine_partitions=selection.counts(),
            engine_tasks=engine_task_counts,
        )

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _task_vertex_ranges(self, task: ScheduledTask) -> list[tuple[int, int]]:
        """Contiguous ``[start, end)`` vertex ranges covered by the task.

        Partitions hold consecutive vertex ranges and ``partition_indices``
        is ascending, so adjacent partitions merge into one range.  The
        ranges replace the per-task ``|V|``-sized boolean masks the seed
        engine allocated: every frontier query below is a slice view plus
        ``np.flatnonzero`` on the slice, i.e. O(range size) not O(|V|).
        """
        ranges: list[tuple[int, int]] = []
        for index in task.partition_indices:
            partition = self.partitioning[index]
            if ranges and ranges[-1][1] == partition.vertex_start:
                ranges[-1] = (ranges[-1][0], partition.vertex_end)
            else:
                ranges.append((partition.vertex_start, partition.vertex_end))
        return ranges

    @staticmethod
    def _pending_in_ranges(pending: np.ndarray, ranges: list[tuple[int, int]]) -> np.ndarray:
        """Sorted pending vertex ids inside the given ranges (slice-local scan)."""
        if len(ranges) == 1:
            start, end = ranges[0]
            return np.flatnonzero(pending[start:end]) + start
        chunks = [np.flatnonzero(pending[start:end]) + start for start, end in ranges]
        return np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)

    def _execute_task(
        self,
        task: ScheduledTask,
        program: VertexProgram,
        state: ProgramState,
        pending: np.ndarray,
    ) -> int:
        """Run the vertex program for one task; returns edges processed."""
        graph = self.graph
        ranges = self._task_vertex_ranges(task)

        # Asynchronous semantics: process whatever is pending in this
        # task's partitions *now*, including activations produced by tasks
        # scheduled earlier in the same iteration.
        first_round = self._pending_in_ranges(pending, ranges)
        if first_round.size == 0:
            return 0
        pending[first_round] = False
        processed_edges = int(graph.out_degrees[first_round].sum())
        newly_active = program.process(graph, state, first_round)
        if newly_active.size:
            pending[newly_active] = True

        if not self.options.recompute_loaded:
            return processed_edges

        # Re-process the loaded subgraph once (Section VI-A): for filter
        # tasks the whole partition is resident on the GPU, for compaction
        # and zero-copy only the originally active vertices' edges are.
        if task.engine == EngineKind.EXP_FILTER:
            second_round = self._pending_in_ranges(pending, ranges)
        else:
            second_round = first_round[pending[first_round]]
        if second_round.size:
            pending[second_round] = False
            processed_edges += int(graph.out_degrees[second_round].sum())
            newly_active = program.process(graph, state, second_round)
            if newly_active.size:
                pending[newly_active] = True
        return processed_edges

    def _account_transfer(self, task: ScheduledTask):
        """Price the data movement of one task with its transfer engine."""
        engine = self.engines[task.engine]
        partitions = [self.partitioning[index] for index in task.partition_indices]
        active = task.active_vertices
        # active_vertices is sorted, so each partition's slice is found by
        # bisection instead of two boolean compares over the whole array.
        boundaries = [partition.vertex_start for partition in partitions]
        boundaries.append(partitions[-1].vertex_end)
        cuts = np.searchsorted(active, boundaries)
        return engine.transfer_task(partitions, active, cuts)
