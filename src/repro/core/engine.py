"""The HyTGraph runtime (Figure 5).

The engine alternates two stages until the algorithm converges:

1. **Cost-aware task generation** — estimate the three engine costs for
   every partition containing active edges (:mod:`repro.core.cost_model`),
   select the cheapest engine per partition (:mod:`repro.core.selection`)
   and merge the selections into scheduler tasks
   (:mod:`repro.core.combiner`).
2. **Asynchronous task scheduling** — order the tasks by contribution
   (:mod:`repro.core.priority`), execute them (vertex-program semantics
   plus transfer-engine accounting) and run the resulting stage durations
   through the execution runtime (:mod:`repro.runtime`) to obtain the
   iteration's simulated wall-clock time.

Within an iteration execution is asynchronous: a task sees every value
update made by the tasks scheduled before it, and the loaded subgraph is
re-processed once (Section VI-A, "recomputes the loaded subgraph only
once") so cheap extra GPU work replaces future transfers.

Every behavioural feature is switchable through :class:`HyTGraphOptions`
so the ablation benchmarks (Figure 8) can turn task combining and
contribution-driven scheduling on and off independently.

Execution runtime
-----------------
The engine is device-count agnostic: it plans every iteration as one
:class:`~repro.runtime.driver.IterationPlan` — per-device task lists over
the contiguous partition-range shards of its
:class:`~repro.runtime.context.ExecutionContext` — and the shared
:class:`~repro.runtime.driver.IterationDriver` schedules it.  One device
is the trivial case (one shard, no residency, no boundary exchange), so
there is no separate single-device code path; multi-device sessions add
per-device shard residency and the per-iteration boundary-delta
synchronisation.  Through the ``shared`` planning argument the same code
serves the concurrent multi-query batch runner, which deduplicates
whole-partition transfers across queries.

Performance architecture
------------------------
The engine is built around a partition-local frontier fast path: tasks
cover contiguous partition vertex ranges, so pending vertices are found
with slice views + ``np.flatnonzero`` (never an O(|V|) per-task boolean
mask), each task's sorted active-vertex array is split across partitions
by bisection, transfers are priced with one vectorised
:meth:`~repro.transfer.base.TransferEngine.transfer_task` call, and one
frontier scan per iteration feeds the iteration stats, the cost model and
the task combiner.  The per-edge scatter work itself lives in the shared
kernel layer (:mod:`repro.core.kernels`); ``benchmarks/bench_perf_hotpaths.py``
measures both layers against the seed implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.core.combiner import ScheduledTask, TaskCombiner
from repro.core.cost_model import CostModel
from repro.core.priority import ContributionScheduler
from repro.core.selection import EngineSelector, SelectionResult, SelectionThresholds
from repro.graph.csr import CSRGraph
from repro.graph.partition import (
    DeviceShard,
    Partitioning,
    partition_by_bytes,
    partition_by_count,
)
from repro.graph.reorder import ReorderedGraph, hub_sort
from repro.metrics.results import IterationStats, RunResult
from repro.runtime.batch import SharedTransferState
from repro.runtime.context import ExecutionContext
from repro.runtime.driver import IterationDriver, IterationPlan, QuerySession
from repro.sim.config import HardwareConfig, default_config
from repro.sim.kernel import KernelModel
from repro.sim.streams import StreamScheduler, StreamTask
from repro.transfer.base import EngineKind, TransferEngine, TransferOutcome
from repro.transfer.explicit_compaction import ExplicitCompactionEngine
from repro.transfer.explicit_filter import ExplicitFilterEngine
from repro.transfer.zero_copy import ZeroCopyEngine

__all__ = ["HyTGraphOptions", "HyTGraphEngine"]

# With the paper's billion-edge graphs a 32 MB partition yields on the
# order of a hundred partitions; for arbitrary (scaled-down) graphs the
# default keeps that partition *count* rather than the absolute size.
DEFAULT_PARTITION_DIVISOR = 64



@dataclass
class HyTGraphOptions:
    """Tunable behaviour of the HyTGraph engine.

    The defaults reproduce the full system of the paper; the ablation
    benchmarks flip individual switches.

    Attributes
    ----------
    partition_bytes / num_partitions:
        Partitioning granularity.  When both are ``None`` the graph is
        split into ``DEFAULT_PARTITION_DIVISOR`` edge-balanced partitions
        (the scaled equivalent of the paper's 32 MB chunks).
    combine_factor:
        ``k`` — how many consecutive ExpTM-filter partitions merge into
        one task (4 in the paper).
    task_combining:
        Disable to schedule every partition as its own task (Figure 8's
        plain "Hybrid" bar).
    contribution_scheduling:
        Disable to drop hub-/Δ-driven priorities (Figure 8's "+TC" bar
        keeps task combining but no CDS).
    hub_sorting / hub_fraction:
        Whether to hub-sort the graph during preprocessing and how many
        vertices count as hubs (8 %).
    recompute_loaded:
        Re-process each loaded subgraph once with fresh values.
    thresholds:
        The α/β engine-selection thresholds.
    max_iterations:
        Safety bound on outer iterations.
    backend:
        Compute backend for the kernel layer (``None`` = ambient/default;
        see :mod:`repro.core.backends`).  Rides in through the options
        because the engine builds the execution context itself.
    cache_policy / cache_budget:
        Device-memory cache subsystem (:mod:`repro.cache`):
        ``"static-prefix"`` (default) pins each shard's leading
        partitions exactly as the historical residency did; ``"lru"``
        and ``"frontier-aware"`` adapt the resident set every iteration
        and work at any device count.  ``cache_budget`` is the
        per-device byte budget (default: the device's edge-cache
        memory).
    """

    partition_bytes: int | None = None
    num_partitions: int | None = None
    combine_factor: int = 4
    task_combining: bool = True
    contribution_scheduling: bool = True
    hub_sorting: bool = True
    hub_fraction: float = 0.08
    recompute_loaded: bool = True
    thresholds: SelectionThresholds = field(default_factory=SelectionThresholds)
    max_iterations: int = 10_000
    cache_policy: str = "static-prefix"
    cache_budget: int | None = None
    backend: str | None = None


class HyTGraphEngine:
    """Hybrid-transfer-management graph processing engine."""

    name = "HyTGraph"

    def __init__(
        self,
        graph: CSRGraph,
        config: HardwareConfig | None = None,
        options: HyTGraphOptions | None = None,
    ):
        self.original_graph = graph
        self.config = config or default_config()
        self.options = options or HyTGraphOptions()

        self.preprocessing_time = 0.0
        self.reordering: ReorderedGraph | None = None
        if self.options.hub_sorting and graph.num_vertices > 0:
            self.reordering = hub_sort(graph, self.options.hub_fraction)
            self.graph = self.reordering.graph
            # Hub sorting reads and rewrites the edge arrays once on the
            # host; charge it at the CPU compaction throughput.  It is a
            # one-off cost shared by all subsequent runs (Section VI-A).
            self.preprocessing_time = 2 * graph.edge_data_bytes / self.config.cpu_compaction_throughput
        else:
            self.graph = graph

        self.partitioning = self._build_partitioning()
        # Sink detection runs every iteration; the degree==0 mask is static.
        self._sink_mask = self.graph.out_degrees == 0
        self.cost_model = CostModel(self.graph, self.partitioning, self.config)
        self.selector = EngineSelector(self.options.thresholds)
        self.combiner = TaskCombiner(self.options.combine_factor, enabled=self.options.task_combining)
        self.priority = ContributionScheduler(
            self.graph, self.partitioning, enabled=self.options.contribution_scheduling
        )
        self.kernel_model = KernelModel(self.config)
        # The raw single-device stream scheduler is kept for the perf
        # harness's seed-baseline mode, which restores the pre-runtime
        # iteration loop; the engine itself schedules via the context.
        self.stream_scheduler = StreamScheduler(self.config)
        self.engines: dict[EngineKind, TransferEngine] = {
            EngineKind.EXP_FILTER: ExplicitFilterEngine(self.graph, self.config),
            EngineKind.EXP_COMPACTION: ExplicitCompactionEngine(self.graph, self.config),
            EngineKind.IMP_ZERO_COPY: ZeroCopyEngine(self.graph, self.config),
        }

        # Device-agnostic execution runtime: shards, the device-memory
        # cache and the shared-host scheduler.  One device is the
        # trivial case — one shard spanning every partition, no static
        # residency, no boundary exchange — so default single-device
        # runs stay bitwise identical to the historical dedicated path.
        self.context = ExecutionContext(
            self.graph,
            self.partitioning,
            self.config,
            cache_policy=self.options.cache_policy,
            cache_budget=self.options.cache_budget,
            backend=self.options.backend,
        )
        self.driver = IterationDriver(self.context)

    @property
    def max_iterations(self) -> int:
        """Outer-iteration bound (shared protocol with the systems)."""
        return self.options.max_iterations

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _build_partitioning(self) -> Partitioning:
        options = self.options
        if options.num_partitions is not None:
            return partition_by_count(self.graph, options.num_partitions)
        if options.partition_bytes is not None:
            return partition_by_bytes(self.graph, options.partition_bytes)
        target_bytes = max(
            self.graph.edge_bytes_per_edge,
            self.graph.edge_data_bytes // DEFAULT_PARTITION_DIVISOR,
        )
        return partition_by_bytes(self.graph, target_bytes)

    def _translate_source(self, source: int | None) -> int | None:
        if source is None or self.reordering is None:
            return source
        return self.reordering.translate_to_new(source)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def reset_run_state(self) -> None:
        """Reset warm cross-run state (engine caches, residency flags)."""
        for engine in self.engines.values():
            engine.reset()
        self.context.reset()

    def start_session(self, program: VertexProgram, source: int | None = None) -> QuerySession:
        """Initialise one query against the preprocessed (hub-sorted) graph."""
        program.check_graph(self.graph)
        internal_source = self._translate_source(program.validate_source(self.original_graph, source))
        state = program.create_state(self.graph, internal_source)
        frontier = program.initial_frontier(self.graph, state, internal_source)

        result = RunResult(
            system=self.name,
            algorithm=program.name,
            graph_name=self.original_graph.name,
            preprocessing_time=self.preprocessing_time,
            extra={
                "backend": self.context.backend_name,
                "num_partitions": self.partitioning.num_partitions,
                "hub_sorted": self.reordering is not None,
                "task_combining": self.options.task_combining,
                "contribution_scheduling": self.options.contribution_scheduling,
            },
        )
        if self.context.is_multi_device:
            result.extra["num_devices"] = self.config.num_devices
            result.extra["interconnect"] = self.config.interconnect_kind
            result.extra["resident_partitions"] = self.context.num_resident_partitions

        return QuerySession(
            program=program,
            source=internal_source,
            state=state,
            pending=frontier.mask.copy(),
            result=result,
        )

    def finish_session(self, session: QuerySession) -> RunResult:
        """Finalise one query: convergence flag plus original-order values."""
        result = session.result
        result.converged = not session.pending.any()
        values = session.program.vertex_result(session.state)
        if self.reordering is not None:
            values = self.reordering.values_in_original_order(values)
        result.values = values
        return result

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, program: VertexProgram, source: int | None = None) -> RunResult:
        """Run ``program`` to convergence and return the full result record."""
        self.reset_run_state()
        session = self.start_session(program, source)
        self.driver.begin_trace()
        # The loop goes through _run_iteration (rather than the driver's
        # generic loop) so the perf harness can monkeypatch the seed
        # iteration back in.
        while session.pending.any() and session.iteration < self.options.max_iterations:
            stats = self._run_iteration(session.iteration, program, session.state, session.pending)
            session.result.iterations.append(stats)
            session.iteration += 1
        return self.finish_session(session)

    def _run_iteration(
        self,
        iteration: int,
        program: VertexProgram,
        state: ProgramState,
        pending: np.ndarray,
    ) -> IterationStats:
        return self.driver.finish(
            self.driver.windowed_plan(lambda: self._plan(iteration, program, state, pending)),
            trace_iteration=iteration,
        )

    def plan_iteration(
        self, session: QuerySession, shared: SharedTransferState | None = None
    ) -> IterationPlan:
        """One planned iteration (batch-runner protocol)."""
        return self._plan(session.iteration, session.program, session.state, session.pending, shared)

    def _plan(
        self,
        iteration: int,
        program: VertexProgram,
        state: ProgramState,
        pending: np.ndarray,
        shared: SharedTransferState | None = None,
    ) -> IterationPlan:
        """Plan one iteration: task generation, execution and accounting.

        Task generation, contribution scheduling and stream scheduling
        operate per device over the context's shards (one trivial shard
        on single-device sessions); the frontier and value arrays stay
        global — every device reads and writes the same program state,
        mirroring how real sharded runtimes keep vertex values consistent
        through the boundary exchange.  The host CPU and PCIe are shared;
        multi-device iterations end with the boundary-vertex delta
        exchange over the interconnect.
        """
        graph = self.graph
        context = self.context
        # One frontier scan per iteration: the id array feeds the stats,
        # the cost model and the task combiner (the seed engine rescanned
        # the |V| mask in each of those places).
        active_ids = np.flatnonzero(pending)
        active_vertex_count = int(active_ids.size)
        active_edge_count = int(graph.out_degrees[active_ids].sum())

        # Active vertices without out-edges generate no tasks (their
        # partitions carry no active edges), so handle them directly: the
        # push is a no-op for traversal algorithms and simply folds the
        # residual for accumulative ones.
        sinks = np.flatnonzero(pending & self._sink_mask)
        if sinks.size:
            pending[sinks] = False
            program.process(graph, state, sinks)

        # ----- Stage 1: per-device cost-aware task generation --------------
        costs = self.cost_model.estimate(pending, active_ids=active_ids)
        cache = context.cache
        if cache is not None and cache.adaptive:
            # Frontier observation feeds the eviction policy (committed
            # at the next iteration boundary), and the cost model learns
            # what is already on a device: resident partitions — and,
            # under the batch runner, partitions another query shipped
            # this super-iteration — price the filter engine at zero,
            # so queries B..K select the free path query A paid for.
            cache.observe_frontier(costs.active_edges)
            costs = self._discount_on_device_filter(costs, cache, shared)
        selection = self._force_resident_filter(self.selector.select(costs))
        device_task_lists: list[list[ScheduledTask]] = [
            self._device_tasks(shard, selection, pending, active_ids, program, state)
            for shard in context.sharding
        ]
        # Each device scans only its own shard's partitions, concurrently.
        widest_shard = max((shard.num_partitions for shard in context.sharding), default=0)
        generation_overhead = self.kernel_model.device_scan_time(widest_shard)

        # ----- Stage 2: per-device asynchronous task execution -------------
        stream_task_lists: list[list[StreamTask]] = context.empty_device_lists()
        remote_updates = [0] * context.num_devices
        total_transfer_bytes = 0
        total_processed_edges = 0
        engine_task_counts: dict[str, int] = {}

        # Devices drain their task queues concurrently; interleaving the
        # per-device priority orders round-robin keeps the global value
        # updates deterministic while modelling parallel progress.
        order = 0
        longest = max((len(tasks) for tasks in device_task_lists), default=0)
        for step in range(longest):
            for device, tasks in enumerate(device_task_lists):
                if step >= len(tasks):
                    continue
                task = tasks[step]
                shard = context.sharding[device]
                processed_edges, remote_count = self._execute_task(task, program, state, pending, shard)
                outcome = self._account_task_transfer(task, shared)
                kernel_time = self.kernel_model.kernel_time(processed_edges, num_kernels=1)
                stream_task_lists[device].append(
                    StreamTask(
                        name=task.label,
                        engine=task.engine.value,
                        cpu_time=outcome.cpu_time,
                        transfer_time=outcome.transfer_time,
                        kernel_time=kernel_time,
                        overlapped_transfer=outcome.overlapped,
                        priority=float(order),
                    )
                )
                order += 1
                remote_updates[device] += remote_count
                total_transfer_bytes += outcome.bytes_transferred
                total_processed_edges += processed_edges
                engine_task_counts[task.engine.value] = engine_task_counts.get(task.engine.value, 0) + 1

        stats = IterationStats(
            index=iteration,
            time=0.0,
            active_vertices=active_vertex_count,
            active_edges=active_edge_count,
            transfer_bytes=total_transfer_bytes,
            processed_edges=total_processed_edges,
            engine_partitions=selection.counts(),
            engine_tasks=engine_task_counts,
        )
        return IterationPlan(
            stats=stats,
            device_tasks=stream_task_lists,
            remote_updates=remote_updates,
            overhead_time=generation_overhead,
        )

    @staticmethod
    def _discount_on_device_filter(
        costs, cache, shared: SharedTransferState | None
    ):
        """Zero the filter cost of partitions already in device memory.

        The cache-aware cost-model hook (adaptive policies only): a
        cache-resident partition — or one already shipped by a peer
        query this super-iteration — costs nothing to read through the
        filter path, so the selector sees a zero filter cost and never
        pays compaction or zero-copy for bytes a device already holds.
        This is the batch-aware pricing: query A's ship makes the
        filter engine free for queries B..K planning later in the same
        super-iteration.
        """
        free_mask = cache.resident.copy()
        if shared is not None and shared.shipped:
            free_mask[list(shared.shipped)] = True
        if not free_mask.any():
            return costs
        return replace(costs, filter_cost=np.where(free_mask, 0.0, costs.filter_cost))

    def _force_resident_filter(self, selection: SelectionResult) -> SelectionResult:
        """Pin resident partitions to the filter engine.

        A partition resident in its device's memory needs no per-iteration
        transfer at all; compacting or zero-copy-reading it would move
        bytes it already holds.  The filter path prices it correctly:
        one whole-partition copy on first touch (a miss under adaptive
        policies), free afterwards (:meth:`_account_task_transfer`).
        Cacheless sessions make this the identity.
        """
        cache = self.context.cache
        if cache is None or not cache.resident.any():
            return selection
        choices = list(selection.choices)
        for index in np.flatnonzero(cache.resident):
            if choices[index] is not None:
                choices[index] = EngineKind.EXP_FILTER
        return SelectionResult(choices=choices)

    def _device_tasks(
        self,
        shard: DeviceShard,
        selection: SelectionResult,
        pending: np.ndarray,
        active_ids: np.ndarray,
        program: VertexProgram,
        state: ProgramState,
    ) -> list[ScheduledTask]:
        """Combine and prioritise one device's shard-local tasks."""
        if shard.num_partitions == 0:
            return []
        if shard.num_partitions == self.partitioning.num_partitions:
            # The shard spans the whole partitioning (single-device case):
            # no masking needed.
            shard_selection, shard_active = selection, active_ids
        else:
            shard_choices: list[EngineKind | None] = [None] * self.partitioning.num_partitions
            for index in shard.partition_indices():
                shard_choices[index] = selection.choices[index]
            shard_selection = SelectionResult(choices=shard_choices)
            shard_active = active_ids[
                np.searchsorted(active_ids, shard.vertex_start) : np.searchsorted(active_ids, shard.vertex_end)
            ]
        tasks = self.combiner.combine(self.partitioning, shard_selection, pending, active_ids=shard_active)
        return self.priority.prioritize(tasks, program, state)

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _task_vertex_ranges(self, task: ScheduledTask) -> list[tuple[int, int]]:
        """Contiguous ``[start, end)`` vertex ranges covered by the task.

        Partitions hold consecutive vertex ranges and ``partition_indices``
        is ascending, so adjacent partitions merge into one range.  The
        ranges replace the per-task ``|V|``-sized boolean masks the seed
        engine allocated: every frontier query below is a slice view plus
        ``np.flatnonzero`` on the slice, i.e. O(range size) not O(|V|).
        """
        ranges: list[tuple[int, int]] = []
        for index in task.partition_indices:
            partition = self.partitioning[index]
            if ranges and ranges[-1][1] == partition.vertex_start:
                ranges[-1] = (ranges[-1][0], partition.vertex_end)
            else:
                ranges.append((partition.vertex_start, partition.vertex_end))
        return ranges

    @staticmethod
    def _pending_in_ranges(pending: np.ndarray, ranges: list[tuple[int, int]]) -> np.ndarray:
        """Sorted pending vertex ids inside the given ranges (slice-local scan)."""
        if len(ranges) == 1:
            start, end = ranges[0]
            return np.flatnonzero(pending[start:end]) + start
        chunks = [np.flatnonzero(pending[start:end]) + start for start, end in ranges]
        return np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)

    def _execute_task(
        self,
        task: ScheduledTask,
        program: VertexProgram,
        state: ProgramState,
        pending: np.ndarray,
        shard: DeviceShard,
    ) -> tuple[int, int]:
        """Run one task's vertex program; returns (edges processed, remote updates).

        Remote updates are activation messages for vertices owned by
        another shard — each becomes one ``(index entry, value)`` delta in
        the iteration's boundary exchange (always zero on single-device
        sessions, where the one shard owns everything).
        """
        graph = self.graph
        count_remote = self.context.is_multi_device
        ranges = self._task_vertex_ranges(task)

        # Asynchronous semantics: process whatever is pending in this
        # task's partitions *now*, including activations produced by tasks
        # scheduled earlier in the same iteration.
        first_round = self._pending_in_ranges(pending, ranges)
        if first_round.size == 0:
            return 0, 0
        pending[first_round] = False
        processed_edges = int(graph.out_degrees[first_round].sum())
        remote_count = 0
        newly_active = program.process(graph, state, first_round)
        if newly_active.size:
            pending[newly_active] = True
            if count_remote:
                remote_count += shard.count_remote(newly_active)

        if not self.options.recompute_loaded:
            return processed_edges, remote_count

        # Re-process the loaded subgraph once (Section VI-A): for filter
        # tasks the whole partition is resident on the GPU, for compaction
        # and zero-copy only the originally active vertices' edges are.
        if task.engine == EngineKind.EXP_FILTER:
            second_round = self._pending_in_ranges(pending, ranges)
        else:
            second_round = first_round[pending[first_round]]
        if second_round.size:
            pending[second_round] = False
            processed_edges += int(graph.out_degrees[second_round].sum())
            newly_active = program.process(graph, state, second_round)
            if newly_active.size:
                pending[newly_active] = True
                if count_remote:
                    remote_count += shard.count_remote(newly_active)
        return processed_edges, remote_count

    # ------------------------------------------------------------------
    # Transfer accounting
    # ------------------------------------------------------------------
    def _account_transfer(self, task: ScheduledTask):
        """Price the data movement of one task with its transfer engine."""
        engine = self.engines[task.engine]
        partitions = [self.partitioning[index] for index in task.partition_indices]
        active = task.active_vertices
        # active_vertices is sorted, so each partition's slice is found by
        # bisection instead of two boolean compares over the whole array.
        boundaries = [partition.vertex_start for partition in partitions]
        boundaries.append(partitions[-1].vertex_end)
        cuts = np.searchsorted(active, boundaries)
        return engine.transfer_task(partitions, active, cuts)

    def _account_task_transfer(
        self, task: ScheduledTask, shared: SharedTransferState | None = None
    ) -> TransferOutcome:
        """Price one task's data movement, skipping already-on-device data.

        Filter tasks may cover partitions that are cache-resident (free
        reads — a one-off first-touch copy under the static policy, an
        admission after a billed miss under the adaptive ones) or, under
        the batch runner, already shipped by another query this
        super-iteration.  Every partition inside a task holds at least
        one active vertex, so the billable filter cost is simply the
        per-partition copy sum — identical to
        :meth:`~repro.transfer.explicit_filter.ExplicitFilterEngine`'s
        whole-partition pricing.  Compaction and zero-copy transfers are
        query-specific and never shareable; resident partitions never
        choose them (:meth:`_force_resident_filter`).
        """
        cache = self.context.cache
        if task.engine != EngineKind.EXP_FILTER or (cache is None and shared is None):
            return self._account_transfer(task)
        if cache is not None:
            billable = cache.claim_billable(task.partition_indices, shared)
        else:
            billable = shared.claim_partitions(
                list(task.partition_indices),
                lambda index: self.partitioning[index].edge_bytes,
            )
        engine = self.engines[EngineKind.EXP_FILTER]
        bytes_total = 0
        transfer_time = 0.0
        for index in billable:
            edge_bytes = self.partitioning[index].edge_bytes
            bytes_total += edge_bytes
            transfer_time += engine.pcie.explicit_copy_time(edge_bytes)
        return TransferOutcome(
            engine=EngineKind.EXP_FILTER,
            bytes_transferred=bytes_total,
            transfer_time=transfer_time,
            cpu_time=0.0,
            overlapped=False,
        )
