"""HyTGraph's primary contribution: hybrid transfer management.

* :mod:`repro.core.kernels` — the scatter-reduce kernel facade every
  vertex program pushes its updates through (the repo's GPU-kernel
  stand-ins), dispatching to a pluggable :mod:`repro.core.backends`
  implementation (numpy reference / numba JIT / array-API shim).
* :mod:`repro.core.cost_model` — the per-partition transfer-cost formulas
  (1), (2) and (3) of Section V-A.
* :mod:`repro.core.selection` — the α/β engine-selection rule of
  Algorithm 1 (lines 2-13).
* :mod:`repro.core.combiner` — task combination (Algorithm 1 lines 15-24
  plus the pre-combination of compaction / zero-copy partitions).
* :mod:`repro.core.priority` — contribution-driven priority scheduling:
  hub-vertex-driven for traversal algorithms, Δ-driven for accumulative
  ones (Section VI-A).
* :mod:`repro.core.engine` — the HyTGraph runtime that alternates
  cost-aware task generation and asynchronous multi-stream task
  scheduling until convergence (Figure 5).
"""

from repro.core.backends import (
    KernelBackend,
    available_backends,
    get_backend,
    resolve_backend,
    use_backend,
)
from repro.core.kernels import (
    legacy_kernels,
    push_and_activate,
    scatter_add,
    scatter_max,
    scatter_min,
)
from repro.core.cost_model import CostModel, PartitionCosts
from repro.core.selection import EngineSelector, SelectionThresholds
from repro.core.combiner import ScheduledTask, TaskCombiner
from repro.core.priority import ContributionScheduler
from repro.core.engine import HyTGraphEngine, HyTGraphOptions

__all__ = [
    "scatter_add",
    "scatter_min",
    "scatter_max",
    "push_and_activate",
    "legacy_kernels",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "use_backend",
    "CostModel",
    "PartitionCosts",
    "EngineSelector",
    "SelectionThresholds",
    "ScheduledTask",
    "TaskCombiner",
    "ContributionScheduler",
    "HyTGraphEngine",
    "HyTGraphOptions",
]
