"""Contribution-driven priority scheduling (Section VI-A).

Within one iteration HyTGraph schedules tasks so that the vertices which
contribute most to convergence are processed first, which reduces stale
computation and hence redundant work and transfers:

* **Hub-vertex-driven** (traversal / value-replacement algorithms): the
  preprocessing step hub-sorts the graph so the top-8 % hub vertices
  (by Formula 4) sit at the front of the CSR; at run time tasks whose
  partitions carry more hub-score mass run earlier.  Hubs therefore
  accumulate incoming updates before their large out-neighborhoods are
  expanded.
* **Δ-driven** (accumulative algorithms such as PageRank and PHP): tasks
  are ordered by the pending residual (Δ) mass of their partitions, so
  the largest contributions propagate first.

Regardless of contribution, the paper schedules ExpTM-filter tasks ahead
of zero-copy and compaction tasks (Section VI-B), so the priority is a
``(engine rank, -contribution)`` pair flattened into a single float.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.core.combiner import ScheduledTask
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partitioning
from repro.graph.reorder import hub_scores
from repro.transfer.base import EngineKind

__all__ = ["ContributionScheduler"]

# ExpTM-filter tasks are released to the streams first, then zero-copy,
# then compaction (whose CPU stage overlaps the earlier transfers).
_ENGINE_RANK = {
    EngineKind.EXP_FILTER: 0,
    EngineKind.IMP_ZERO_COPY: 1,
    EngineKind.EXP_COMPACTION: 2,
    EngineKind.IMP_UNIFIED_MEMORY: 1,
}


class ContributionScheduler:
    """Assigns priorities to tasks and orders them for execution."""

    def __init__(self, graph: CSRGraph, partitioning: Partitioning, enabled: bool = True):
        self.graph = graph
        self.partitioning = partitioning
        #: When disabled tasks keep their generation order — the "no CDS"
        #: configuration of the Figure 8 ablation.
        self.enabled = enabled
        self._hub_mass = self._per_partition_hub_mass()

    def _per_partition_hub_mass(self) -> np.ndarray:
        num_partitions = self.partitioning.num_partitions
        if num_partitions == 0:
            return np.zeros(0, dtype=np.float64)
        scores = hub_scores(self.graph)
        # Partitions tile the vertex range, so one segmented reduction over
        # the partition boundaries replaces the per-partition Python loop.
        starts = np.fromiter(
            (partition.vertex_start for partition in self.partitioning),
            dtype=np.int64,
            count=num_partitions,
        )
        return np.add.reduceat(scores, starts)

    # ------------------------------------------------------------------
    # Contribution measures
    # ------------------------------------------------------------------
    def hub_contribution(self, task: ScheduledTask) -> float:
        """Hub-score mass of the task's partitions (hub-vertex-driven)."""
        return float(self._hub_mass[task.partition_indices].sum())

    def delta_contribution(
        self, task: ScheduledTask, program: VertexProgram, state: ProgramState
    ) -> float:
        """Pending Δ mass of the task's partitions (Δ-driven)."""
        total = 0.0
        for index in task.partition_indices:
            partition = self.partitioning[index]
            total += program.partition_delta(self.graph, state, partition.vertex_start, partition.vertex_end)
        return total

    # ------------------------------------------------------------------
    # Prioritisation
    # ------------------------------------------------------------------
    def prioritize(
        self,
        tasks: list[ScheduledTask],
        program: VertexProgram,
        state: ProgramState,
    ) -> list[ScheduledTask]:
        """Set task priorities and return the tasks in execution order."""
        if not tasks:
            return []
        contributions = []
        for task in tasks:
            if self.enabled:
                if program.accumulative:
                    contribution = self.delta_contribution(task, program, state)
                else:
                    contribution = self.hub_contribution(task)
            else:
                contribution = 0.0
            contributions.append(contribution)
        max_contribution = max(contributions) if contributions else 0.0
        scale = max_contribution if max_contribution > 0 else 1.0

        for position, (task, contribution) in enumerate(zip(tasks, contributions)):
            rank = _ENGINE_RANK.get(task.engine, 3)
            if self.enabled:
                # Larger contribution -> smaller priority value -> earlier.
                task.priority = rank * 10.0 + (1.0 - contribution / scale)
            else:
                task.priority = rank * 10.0 + position * 1e-6
        return sorted(tasks, key=lambda task: task.priority)
