"""Pluggable compute backends for the kernel layer.

Registers the built-in backends:

* ``numpy`` — always available, the bitwise reference
  (:mod:`repro.core.backends.numpy_backend`).
* ``numba`` — JIT-compiled scatter loops and fused dense push-and-activate;
  optional dependency, probed without importing it
  (:mod:`repro.core.backends.numba_backend`).
* ``array-api`` — runs the numpy kernels against any array-API namespace
  (CuPy/torch where installed, plain numpy otherwise)
  (:mod:`repro.core.backends.array_api`).

See :mod:`repro.core.backends.base` for the protocol, the selection order
(explicit > ``REPRO_BACKEND`` > ``numpy``) and the ``auto`` resolution.
"""

from __future__ import annotations

from repro.core.backends.base import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BackendError,
    BackendSpec,
    BackendUnavailableError,
    KernelBackend,
    UnknownBackendError,
    active_backend,
    available_backends,
    get_backend,
    known_backends,
    module_installed,
    register_backend,
    resolve_backend,
    resolve_backend_name,
    set_active_backend,
    use_backend,
)

__all__ = [
    "KernelBackend",
    "BackendError",
    "UnknownBackendError",
    "BackendUnavailableError",
    "BackendSpec",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "register_backend",
    "known_backends",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "resolve_backend_name",
    "active_backend",
    "set_active_backend",
    "use_backend",
]


def _load_numpy() -> KernelBackend:
    from repro.core.backends.numpy_backend import NumpyBackend

    return NumpyBackend()


def _load_numba() -> KernelBackend:
    from repro.core.backends.numba_backend import NumbaBackend

    return NumbaBackend()


def _load_array_api() -> KernelBackend:
    from repro.core.backends.array_api import ArrayApiBackend

    return ArrayApiBackend()


register_backend(
    BackendSpec(
        name="numpy",
        probe=lambda: True,
        load=_load_numpy,
        description="vectorised numpy kernels (always available, bitwise reference)",
    )
)
register_backend(
    BackendSpec(
        name="numba",
        probe=lambda: module_installed("numba"),
        load=_load_numba,
        description="JIT-compiled scatter loops + fused dense push-and-activate",
        unavailable_reason="requires the optional numba dependency (pip install numba)",
    )
)
register_backend(
    BackendSpec(
        name="array-api",
        probe=lambda: True,
        load=_load_array_api,
        description="numpy kernels bridged to an array-API namespace (cupy > torch > numpy)",
    )
)
