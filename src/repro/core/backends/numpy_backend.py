"""The numpy kernel backend — always available, the bitwise reference.

Performance architecture
------------------------
Every push-based vertex program in this reproduction boils down to one
scatter-reduce: a batch of ``(destination, value)`` messages is combined
into a per-vertex state array, either by **minimum** (SSSP, BFS, CC — value
replacement) or by **sum** (PageRank, PHP — value accumulation), followed by
*activation detection* — which destinations changed enough to join the next
frontier.  The seed implementation expressed this as ``np.minimum.at`` /
``np.add.at`` plus a ``previous``-value snapshot and an
``np.unique(destinations[changed])`` over the **per-message** arrays.  That
``np.unique`` (a sort/hash over up to ``|E|`` elements per call) dominates
end-to-end runtime on dense frontiers; on NumPy builds without indexed
ufunc loops (< 1.25) the ``ufunc.at`` calls are a second 10-100x soft spot.

Two orthogonal dispatch decisions pick the fastest exact formulation:

* **Frontier density.**  A batch with at least one message per
  :data:`DENSE_FRONTIER_FACTOR` vertices is *dense*: it amortises
  O(|V|)-bitmap work, so the activation set comes from a touched-vertex
  bitmap (no sort at all).  Sparse batches never touch |V|-sized
  temporaries; their activation set comes from per-message comparison
  (indexed-ufunc builds) or from the sorted segment structure (portable
  path).
* **Indexed ufunc loops.**  NumPy >= 1.25 ships indexed inner loops that
  make ``ufunc.at`` run at memcpy-like speed, so the raw scatter delegates
  to it directly — the fast predicates are checked *first* so the hot path
  adds nothing beyond one branch over the seed's bare ``ufunc.at`` call.
  Older builds fall back to portable segment reductions: seeded
  ``np.bincount(..., weights=...)`` for sums (binned over vertex ids when
  dense, over rank-compacted segments when sparse) and stable sort +
  ``np.minimum.reduceat``/``np.maximum.reduceat`` for min/max — except for
  batches of at most :data:`PORTABLE_AT_CUTOFF` messages, where the
  sort/segment machinery's fixed allocation cost exceeds the slow
  ``ufunc.at`` loop it replaces, so tiny batches use ``ufunc.at`` on every
  NumPy version.

All formulations are **bitwise identical** to the ``ufunc.at`` semantics,
not merely close: sums are "seeded" so each touched bin folds ``target,
v1, v2, ...`` left to right, the exact accumulation order of
``np.add.at`` (``np.bincount`` accumulates strictly in input order;
``np.add.reduceat`` would not — it groups pairwise even on 3-element
segments), and min/max are order independent.

The :func:`legacy_kernels` context manager routes every kernel through the
original ``ufunc.at`` + snapshot + ``np.unique`` path.  The equivalence
tests (``tests/test_kernels.py``) and the before/after benchmark harness
(``benchmarks/bench_perf_hotpaths.py``) both rely on it: the former to
prove bit-for-bit agreement, the latter to measure the speedup end to end
without keeping two copies of every algorithm.  Legacy mode wins over any
active backend — it is the ground truth every backend is judged against.

All kernels mutate ``target`` in place and expect ``float64`` state arrays
(every :class:`~repro.algorithms.base.ProgramState` array is ``float64``).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = [
    "NumpyBackend",
    "scatter_add",
    "scatter_min",
    "scatter_max",
    "push_and_activate",
    "legacy_kernels",
    "using_legacy_kernels",
    "DENSE_FRONTIER_FACTOR",
    "PORTABLE_AT_CUTOFF",
]

_EMPTY = np.zeros(0, dtype=np.int64)

#: A message batch counts as *dense* when it holds at least one message per
#: ``DENSE_FRONTIER_FACTOR`` vertices; dense batches amortise O(|V|) bitmap
#: work, sparse batches avoid it entirely.
DENSE_FRONTIER_FACTOR = 8

#: Below this many messages the portable segment kernels lose to a bare
#: ``ufunc.at`` even on pre-1.25 NumPy: the stable sort plus its half dozen
#: temporaries cost more than the slow per-message inner loop they avoid.
#: Tiny batches therefore always take ``ufunc.at``, which keeps every
#: sparse-scatter microbench row at parity or better with the seed.
PORTABLE_AT_CUTOFF = 64

# NumPy 1.25 introduced indexed inner loops for ufunc.at (add / minimum /
# maximum on contiguous float64 run at native scatter speed).  Without
# them the portable bincount / sort+reduceat kernels below win by 10-100x.
_INDEXED_UFUNC_AT = np.lib.NumpyVersion(np.__version__) >= "1.25.0"

# Test hook: forces the portable segment kernels even on new NumPy so the
# equivalence suite exercises them regardless of the installed version.
_FORCE_PORTABLE = False

# Module-level dispatch switch; flipped only by legacy_kernels().
_LEGACY = False

# Hoisted bound methods: the hot paths below are wrappers around these and
# every attribute hop would show up in the scatter microbenches.
_add_at = np.add.at
_minimum_at = np.minimum.at
_maximum_at = np.maximum.at


@contextmanager
def legacy_kernels():
    """Route all kernels through the pre-kernel-layer ``ufunc.at`` path.

    Used by the equivalence tests and by the benchmark harness to obtain
    "before" timings of the exact code the kernel layer replaced.
    """
    global _LEGACY
    previous = _LEGACY
    _LEGACY = True
    try:
        yield
    finally:
        _LEGACY = previous


def using_legacy_kernels() -> bool:
    """Whether the pre-kernel-layer dispatch is currently active."""
    return _LEGACY


def _indexed_at() -> bool:
    return _INDEXED_UFUNC_AT and not _FORCE_PORTABLE


def _is_dense(destinations: np.ndarray, target: np.ndarray) -> bool:
    return destinations.size * DENSE_FRONTIER_FACTOR >= target.size


def _touched_ids(destinations: np.ndarray, num_vertices: int) -> np.ndarray:
    """Unique destination ids via a bitmap (no sort; ascending by construction)."""
    touched = np.zeros(num_vertices, dtype=bool)
    touched[destinations] = True
    return np.flatnonzero(touched)


def _sorted_boundaries(destinations: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable sort by destination plus segment-boundary flags.

    Returns ``(order, sorted_destinations, is_start)`` where ``is_start``
    marks the first message of each unique-destination segment.  The sort
    is stable, so within a segment messages keep their original order
    (required for bitwise-exact sum folds).
    """
    order = np.argsort(destinations, kind="stable")
    sorted_destinations = destinations[order]
    is_start = np.empty(sorted_destinations.size, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_destinations[1:], sorted_destinations[:-1], out=is_start[1:])
    return order, sorted_destinations, is_start


def _segments(destinations: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort messages by destination and locate the segment starts.

    Returns ``(unique_destinations, sorted_values, segment_starts)`` where
    ``sorted_values[starts[i]:starts[i+1]]`` are the values aimed at
    ``unique_destinations[i]``.
    """
    order, sorted_destinations, is_start = _sorted_boundaries(destinations)
    starts = np.flatnonzero(is_start)
    return sorted_destinations[starts], values[order], starts


def _segment_ranks(destinations: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Compact destinations to dense ranks ``0..k-1`` in ascending-id order.

    Returns ``(unique_ids, ranks)`` with ``unique_ids[ranks[i]] ==
    destinations[i]``; ``ranks`` keeps the original message order, which
    the seeded bincount needs for its exact fold.
    """
    order, sorted_destinations, is_start = _sorted_boundaries(destinations)
    ranks = np.empty(destinations.size, dtype=np.int64)
    ranks[order] = np.cumsum(is_start) - 1
    return sorted_destinations[is_start], ranks


def _seeded_vertex_sums(
    target: np.ndarray, destinations: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Dense exact sums: bincount over vertex ids, seeded with target values."""
    touched_ids = _touched_ids(destinations, target.size)
    seeded_destinations = np.concatenate([touched_ids, destinations])
    seeded_values = np.concatenate([target[touched_ids], values])
    sums = np.bincount(seeded_destinations, weights=seeded_values, minlength=target.size)
    return touched_ids, sums[touched_ids]


def _seeded_rank_sums(
    target: np.ndarray, destinations: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sparse exact sums: bincount over k segment ranks, seeded with target values."""
    unique_ids, ranks = _segment_ranks(destinations)
    num_segments = unique_ids.size
    seeded_ranks = np.concatenate([np.arange(num_segments, dtype=np.int64), ranks])
    seeded_values = np.concatenate([target[unique_ids], values])
    return unique_ids, np.bincount(seeded_ranks, weights=seeded_values, minlength=num_segments)


def scatter_add(target: np.ndarray, destinations: np.ndarray, values: np.ndarray) -> np.ndarray:
    """In-place ``target[destinations] += values`` with duplicate support.

    Bitwise-identical replacement for ``np.add.at(target, destinations,
    values)``: every touched bin accumulates ``target, v1, v2, ...`` in
    exactly the order the unbuffered ufunc would.
    """
    if _LEGACY or (_INDEXED_UFUNC_AT and not _FORCE_PORTABLE):
        _add_at(target, destinations, values)
        return target
    destinations = np.asarray(destinations, dtype=np.int64)
    if destinations.size == 0:
        return target
    if destinations.size <= PORTABLE_AT_CUTOFF:
        _add_at(target, destinations, values)
        return target
    values = np.asarray(values, dtype=np.float64)
    if _is_dense(destinations, target):
        touched_ids, sums = _seeded_vertex_sums(target, destinations, values)
    else:
        touched_ids, sums = _seeded_rank_sums(target, destinations, values)
    target[touched_ids] = sums
    return target


def scatter_min(target: np.ndarray, destinations: np.ndarray, values: np.ndarray) -> np.ndarray:
    """In-place ``target[d] = min(target[d], v)`` over all messages.

    Exact replacement for ``np.minimum.at``: segment minima via stable sort
    + ``np.minimum.reduceat`` on builds without indexed ufunc loops; bins
    whose minimum does not improve keep their current bits untouched.
    """
    if _LEGACY or (_INDEXED_UFUNC_AT and not _FORCE_PORTABLE):
        _minimum_at(target, destinations, values)
        return target
    destinations = np.asarray(destinations, dtype=np.int64)
    if destinations.size == 0:
        return target
    if destinations.size <= PORTABLE_AT_CUTOFF:
        _minimum_at(target, destinations, values)
        return target
    unique_ids, sorted_values, starts = _segments(destinations, np.asarray(values))
    segment_min = np.minimum.reduceat(sorted_values, starts)
    improved = segment_min < target[unique_ids]
    target[unique_ids[improved]] = segment_min[improved]
    return target


def scatter_max(target: np.ndarray, destinations: np.ndarray, values: np.ndarray) -> np.ndarray:
    """In-place ``target[d] = max(target[d], v)``; mirror of :func:`scatter_min`."""
    if _LEGACY or (_INDEXED_UFUNC_AT and not _FORCE_PORTABLE):
        _maximum_at(target, destinations, values)
        return target
    destinations = np.asarray(destinations, dtype=np.int64)
    if destinations.size == 0:
        return target
    if destinations.size <= PORTABLE_AT_CUTOFF:
        _maximum_at(target, destinations, values)
        return target
    unique_ids, sorted_values, starts = _segments(destinations, np.asarray(values))
    segment_max = np.maximum.reduceat(sorted_values, starts)
    improved = segment_max > target[unique_ids]
    target[unique_ids[improved]] = segment_max[improved]
    return target


def push_and_activate(
    target: np.ndarray,
    destinations: np.ndarray,
    values: np.ndarray,
    *,
    combine: str = "min",
    threshold: float | None = None,
) -> np.ndarray:
    """Fused scatter + activation detection.

    Applies one scatter-reduce to ``target`` in place and returns the
    unique, sorted ids of the vertices the pushes activated:

    * ``combine="min"`` / ``combine="max"`` (value replacement): the
      destinations whose value strictly improved.
    * ``combine="add"`` (value accumulation): the destinations whose
      updated value exceeds ``threshold`` (required).

    This is the operation every ``VertexProgram.process`` performs; fusing
    it lets dense frontiers derive the activation set from a touched-vertex
    bitmap and sparse ones from the reduction structure, instead of the
    ``previous`` snapshot + ``np.unique`` over per-message arrays that the
    unfused formulation needs.
    """
    destinations = np.asarray(destinations, dtype=np.int64)
    if destinations.size == 0:
        return _EMPTY
    if combine == "add":
        return _push_add(target, destinations, values, threshold)
    if combine == "min":
        return _push_extremum(target, destinations, values, np.minimum, descending=True)
    if combine == "max":
        return _push_extremum(target, destinations, values, np.maximum, descending=False)
    raise ValueError("combine must be 'min', 'max' or 'add'")


def _push_add(
    target: np.ndarray, destinations: np.ndarray, values: np.ndarray, threshold: float | None
) -> np.ndarray:
    if threshold is None:
        raise ValueError("combine='add' requires a threshold")
    if _LEGACY:
        np.add.at(target, destinations, values)
        active = target[destinations] > threshold
        return np.unique(destinations[active])
    values = np.asarray(values, dtype=np.float64)
    dense = _is_dense(destinations, target)
    if _indexed_at():
        if dense:
            touched_ids = _touched_ids(destinations, target.size)
            np.add.at(target, destinations, values)
            return touched_ids[target[touched_ids] > threshold]
        np.add.at(target, destinations, values)
        active = target[destinations] > threshold
        return np.unique(destinations[active])
    if dense:
        touched_ids, sums = _seeded_vertex_sums(target, destinations, values)
    else:
        touched_ids, sums = _seeded_rank_sums(target, destinations, values)
    target[touched_ids] = sums
    return touched_ids[sums > threshold]


def _push_extremum(
    target: np.ndarray, destinations: np.ndarray, values: np.ndarray, ufunc: np.ufunc, descending: bool
) -> np.ndarray:
    def _improved(updated, reference):
        return updated < reference if descending else updated > reference

    if _LEGACY:
        previous = target[destinations].copy()
        ufunc.at(target, destinations, values)
        changed = _improved(target[destinations], previous)
        return np.unique(destinations[changed])
    if _indexed_at():
        if _is_dense(destinations, target):
            touched_ids = _touched_ids(destinations, target.size)
            snapshot = target[touched_ids].copy()
            ufunc.at(target, destinations, values)
            return touched_ids[_improved(target[touched_ids], snapshot)]
        previous = target[destinations]
        ufunc.at(target, destinations, values)
        changed = _improved(target[destinations], previous)
        return np.unique(destinations[changed])
    unique_ids, sorted_values, starts = _segments(destinations, np.asarray(values))
    segment = ufunc.reduceat(sorted_values, starts)
    improved = _improved(segment, target[unique_ids])
    activated = unique_ids[improved]
    target[activated] = segment[improved]
    return activated


class NumpyBackend:
    """The reference :class:`~repro.core.backends.base.KernelBackend`.

    The methods *are* the module-level kernels — zero extra indirection on
    the hot path — and :meth:`warmup` is a no-op because there is nothing
    to compile.
    """

    name = "numpy"

    scatter_add = staticmethod(scatter_add)
    scatter_min = staticmethod(scatter_min)
    scatter_max = staticmethod(scatter_max)
    push_and_activate = staticmethod(push_and_activate)

    def warmup(self) -> None:
        return None
