"""The numba kernel backend — JIT-compiled scatter loops, optional.

Import-guarded: importing this module never fails, but constructing
:class:`NumbaBackend` (via the registry) requires ``numba`` to be
installed.  The registry probes availability with ``find_spec`` so the
default environment never pays numba's import cost.

Bitwise equivalence with the numpy reference is structural, not
approximate:

* ``scatter_add`` is a sequential ``target[d[i]] += v[i]`` loop — the
  *definition* of ``np.add.at``'s unbuffered left-to-right fold, so the
  float64 accumulation order (and therefore every rounding step) is
  identical.  Numba compiles with strict IEEE semantics by default
  (``fastmath`` off), so no reassociation can occur.
* ``scatter_min``/``scatter_max`` compare-and-store; min/max are order
  independent and losing bins keep their exact current bits, matching
  ``np.minimum.at`` / ``np.maximum.at``.
* ``push_and_activate`` exploits monotonicity: under min (max) combine the
  state only ever decreases (increases), so "some message improved this
  vertex" is equivalent to "final value is strictly better than the value
  before the batch" — the dense kernels record a changed bitmap in the
  same pass as the scatter, the sparse kernels append every improving
  destination and dedupe with ``np.unique`` afterwards.  For ``add`` the
  activation set is the touched destinations whose *final* value exceeds
  the threshold, evaluated after all adds land — exactly the reference
  semantics.

The fused dense kernels are where the JIT pays off: one pass over the
messages replaces the reference's bitmap build + snapshot gather +
``ufunc.at`` + post-gather compare (four full passes and three |V|-sized
temporaries).

Like the reference, the kernels assume NaN-free float64 state arrays
(graph states are distances/ranks: finite values and ``inf`` only).
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import numpy_backend as _ref
from repro.core.backends.base import BackendUnavailableError

__all__ = ["NumbaBackend", "NUMBA_AVAILABLE"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

NUMBA_AVAILABLE = _numba is not None

_EMPTY = np.zeros(0, dtype=np.int64)


if NUMBA_AVAILABLE:  # pragma: no cover - compiled/exercised in the CI numba leg

    @_numba.njit(cache=True)
    def _scatter_add(target, destinations, values):
        for i in range(destinations.shape[0]):
            target[destinations[i]] += values[i]

    @_numba.njit(cache=True)
    def _scatter_min(target, destinations, values):
        for i in range(destinations.shape[0]):
            d = destinations[i]
            v = values[i]
            if v < target[d]:
                target[d] = v

    @_numba.njit(cache=True)
    def _scatter_max(target, destinations, values):
        for i in range(destinations.shape[0]):
            d = destinations[i]
            v = values[i]
            if v > target[d]:
                target[d] = v

    @_numba.njit(cache=True)
    def _push_min_dense(target, destinations, values):
        changed = np.zeros(target.shape[0], dtype=np.bool_)
        for i in range(destinations.shape[0]):
            d = destinations[i]
            v = values[i]
            if v < target[d]:
                target[d] = v
                changed[d] = True
        return changed

    @_numba.njit(cache=True)
    def _push_max_dense(target, destinations, values):
        changed = np.zeros(target.shape[0], dtype=np.bool_)
        for i in range(destinations.shape[0]):
            d = destinations[i]
            v = values[i]
            if v > target[d]:
                target[d] = v
                changed[d] = True
        return changed

    @_numba.njit(cache=True)
    def _push_min_sparse(target, destinations, values):
        improved = np.empty(destinations.shape[0], dtype=np.int64)
        count = 0
        for i in range(destinations.shape[0]):
            d = destinations[i]
            v = values[i]
            if v < target[d]:
                target[d] = v
                improved[count] = d
                count += 1
        return improved[:count]

    @_numba.njit(cache=True)
    def _push_max_sparse(target, destinations, values):
        improved = np.empty(destinations.shape[0], dtype=np.int64)
        count = 0
        for i in range(destinations.shape[0]):
            d = destinations[i]
            v = values[i]
            if v > target[d]:
                target[d] = v
                improved[count] = d
                count += 1
        return improved[:count]

    @_numba.njit(cache=True)
    def _push_add_dense(target, destinations, values):
        touched = np.zeros(target.shape[0], dtype=np.bool_)
        for i in range(destinations.shape[0]):
            d = destinations[i]
            target[d] += values[i]
            touched[d] = True
        return touched


def _as_int64(array) -> np.ndarray:
    array = np.asarray(array)
    if array.dtype != np.int64:
        array = array.astype(np.int64)
    return np.ascontiguousarray(array)


def _as_float64(array) -> np.ndarray:
    array = np.asarray(array, dtype=np.float64)
    return np.ascontiguousarray(array)


class NumbaBackend:
    """JIT-compiled :class:`~repro.core.backends.base.KernelBackend`.

    Mirrors the numpy backend's density dispatch so the choice of fused
    kernel never changes the (identical) activation set, only the constant
    factors.
    """

    name = "numba"

    def __init__(self) -> None:
        if not NUMBA_AVAILABLE:
            raise BackendUnavailableError(
                "backend 'numba' requires the optional numba dependency "
                "(pip install numba)"
            )
        self._warm = False

    def warmup(self) -> None:
        """Compile every kernel once on tiny inputs.

        Called by the registry at construction, so JIT compilation cost is
        paid before the backend can appear inside any timed region; with
        ``cache=True`` later processes reuse the on-disk compilation cache.
        """
        if self._warm:
            return
        destinations = np.array([0, 1, 1, 2], dtype=np.int64)
        values = np.array([1.0, 2.0, 0.5, 3.0])
        state = np.zeros(4)
        _scatter_add(state.copy(), destinations, values)
        _scatter_min(state.copy(), destinations, values)
        _scatter_max(state.copy(), destinations, values)
        _push_min_dense(state.copy(), destinations, values)
        _push_max_dense(state.copy(), destinations, values)
        _push_min_sparse(state.copy(), destinations, values)
        _push_max_sparse(state.copy(), destinations, values)
        _push_add_dense(state.copy(), destinations, values)
        self._warm = True

    def scatter_add(self, target, destinations, values):
        destinations = _as_int64(destinations)
        if destinations.size:
            _scatter_add(target, destinations, _as_float64(values))
        return target

    def scatter_min(self, target, destinations, values):
        destinations = _as_int64(destinations)
        if destinations.size:
            _scatter_min(target, destinations, _as_float64(values))
        return target

    def scatter_max(self, target, destinations, values):
        destinations = _as_int64(destinations)
        if destinations.size:
            _scatter_max(target, destinations, _as_float64(values))
        return target

    def push_and_activate(self, target, destinations, values, *, combine="min", threshold=None):
        destinations = _as_int64(destinations)
        if destinations.size == 0:
            return _EMPTY
        values = _as_float64(values)
        dense = _ref._is_dense(destinations, target)
        if combine == "add":
            if threshold is None:
                raise ValueError("combine='add' requires a threshold")
            if dense:
                touched = _push_add_dense(target, destinations, values)
                touched_ids = np.flatnonzero(touched)
            else:
                _scatter_add(target, destinations, values)
                touched_ids = np.unique(destinations)
            return touched_ids[target[touched_ids] > threshold]
        if combine == "min":
            if dense:
                return np.flatnonzero(_push_min_dense(target, destinations, values))
            return np.unique(_push_min_sparse(target, destinations, values))
        if combine == "max":
            if dense:
                return np.flatnonzero(_push_max_dense(target, destinations, values))
            return np.unique(_push_max_sparse(target, destinations, values))
        raise ValueError("combine must be 'min', 'max' or 'add'")
