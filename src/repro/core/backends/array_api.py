"""Array-API shim backend — the numpy kernels over any array namespace.

This backend is a *compatibility bridge*, not a speed play: it accepts
arrays from any array-API-compatible namespace (CuPy, torch, or numpy
itself), round-trips them through host numpy, runs the bitwise reference
kernels, and writes the result back into the caller's array in place —
preserving the in-place mutation contract of the kernel layer.  Activation
id arrays are always returned as host numpy ``int64`` (frontier
bookkeeping stays on the host throughout the runtime).

Namespace preference is ``cupy > torch > numpy``; with neither accelerator
library installed the shim degrades to a plain delegation to the numpy
backend (zero copies — ``numpy`` arrays pass through untouched), which is
what keeps the shim testable in every environment.  A CuPy-native backend
that keeps the state arrays device-resident is the planned follow-on (see
ROADMAP).
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import numpy_backend as _ref
from repro.core.backends.base import module_installed

__all__ = ["ArrayApiBackend", "detect_namespace"]


def detect_namespace(preferred: str | None = None):
    """Import and return ``(name, namespace)``, preferring accelerators.

    ``preferred`` forces a specific namespace (``"cupy"``, ``"torch"`` or
    ``"numpy"``); otherwise the first installed of cupy > torch > numpy
    wins.  numpy is always installed, so this never fails without
    ``preferred``.
    """
    order = (preferred,) if preferred else ("cupy", "torch", "numpy")
    for name in order:
        if name == "numpy":
            return "numpy", np
        if name == "cupy" and module_installed("cupy"):
            import cupy

            return "cupy", cupy
        if name == "torch" and module_installed("torch"):
            import torch

            return "torch", torch
    raise ValueError(f"array namespace {preferred!r} is not installed")


class ArrayApiBackend:
    """Run the numpy reference kernels against an array-API namespace."""

    name = "array-api"

    def __init__(self, preferred: str | None = None) -> None:
        self.namespace_name, self.xp = detect_namespace(preferred)

    def warmup(self) -> None:
        return None

    def _to_host(self, array):
        """Return ``(host_array, converted)`` for any namespace array."""
        if isinstance(array, np.ndarray):
            return array, False
        if hasattr(array, "get"):  # cupy device arrays
            return array.get(), True
        if hasattr(array, "detach"):  # torch tensors (cpu or device)
            return array.detach().cpu().numpy(), True
        return np.asarray(array), False

    def _run_inplace(self, kernel, target, destinations, values, **kwargs):
        host_target, converted = self._to_host(target)
        host_destinations, _ = self._to_host(destinations)
        host_values, _ = self._to_host(values)
        result = kernel(host_target, host_destinations, host_values, **kwargs)
        if converted:
            # Preserve the in-place contract for device arrays: copy the
            # mutated host state back into the caller's array.
            target[...] = self.xp.asarray(host_target)
            return result if result is not host_target else target
        return result

    def scatter_add(self, target, destinations, values):
        return self._run_inplace(_ref.scatter_add, target, destinations, values)

    def scatter_min(self, target, destinations, values):
        return self._run_inplace(_ref.scatter_min, target, destinations, values)

    def scatter_max(self, target, destinations, values):
        return self._run_inplace(_ref.scatter_max, target, destinations, values)

    def push_and_activate(self, target, destinations, values, *, combine="min", threshold=None):
        return self._run_inplace(
            _ref.push_and_activate,
            target,
            destinations,
            values,
            combine=combine,
            threshold=threshold,
        )
