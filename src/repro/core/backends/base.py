"""Backend protocol, registry and selection for the kernel layer.

The kernel layer (:mod:`repro.core.kernels`) funnels every vertex program
through four hot entry points — ``scatter_add``, ``scatter_min``,
``scatter_max`` and ``push_and_activate``.  A :class:`KernelBackend`
provides those four operations; this module owns the registry of known
backends, availability probing (optional dependencies are import-guarded
and only loaded on first use), and the *active backend* the kernel facade
dispatches to.

Selection order
---------------
1. An explicit backend — ``ServiceConfig(backend=...)``, the CLI
   ``--backend`` flag, or ``ExecutionContext(backend=...)``.
2. The ``REPRO_BACKEND`` environment variable.
3. The default: ``numpy`` (always available, the bitwise reference).

``auto`` resolves to the fastest installed backend (``numba`` when
importable, otherwise ``numpy``).  The ``array-api`` shim is never picked
by ``auto``: it exists for portability across array namespaces, not speed.

Every backend must be **bitwise identical** to the numpy reference on the
kernel contract (see :mod:`repro.core.backends.numpy_backend`); the
equivalence suites run the full kernel + runtime grids against each
installed backend to enforce that.
"""

from __future__ import annotations

import importlib.util
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "KernelBackend",
    "BackendError",
    "UnknownBackendError",
    "BackendUnavailableError",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "register_backend",
    "known_backends",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "resolve_backend_name",
    "active_backend",
    "set_active_backend",
    "use_backend",
]

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_BACKEND"

#: The always-available bitwise reference backend.
DEFAULT_BACKEND = "numpy"

#: Preference order for ``auto`` (first available wins).
_AUTO_ORDER = ("numba", "numpy")


@runtime_checkable
class KernelBackend(Protocol):
    """The four hot entry points every compute backend must provide.

    All scatter kernels mutate ``target`` in place and must reproduce the
    exact semantics (including float64 accumulation order) of the numpy
    reference backend — "close" is not enough, the equivalence grid
    compares raw float bits.
    """

    name: str

    def scatter_add(
        self, target: np.ndarray, destinations: np.ndarray, values: np.ndarray
    ) -> np.ndarray: ...

    def scatter_min(
        self, target: np.ndarray, destinations: np.ndarray, values: np.ndarray
    ) -> np.ndarray: ...

    def scatter_max(
        self, target: np.ndarray, destinations: np.ndarray, values: np.ndarray
    ) -> np.ndarray: ...

    def push_and_activate(
        self,
        target: np.ndarray,
        destinations: np.ndarray,
        values: np.ndarray,
        *,
        combine: str = "min",
        threshold: float | None = None,
    ) -> np.ndarray: ...

    def warmup(self) -> None: ...


class BackendError(ValueError):
    """Base class for backend selection failures (a ``ValueError`` so the
    existing config/CLI validation paths surface it cleanly)."""


class UnknownBackendError(BackendError):
    """The requested backend name is not registered."""


class BackendUnavailableError(BackendError):
    """The backend is known but its optional dependency is not installed."""


@dataclass(frozen=True)
class BackendSpec:
    """Registry entry: how to probe for and construct one backend."""

    name: str
    probe: Callable[[], bool]
    load: Callable[[], KernelBackend]
    description: str = ""
    unavailable_reason: str = field(default="optional dependency not installed")


_REGISTRY: dict[str, BackendSpec] = {}
_INSTANCES: dict[str, KernelBackend] = {}


def register_backend(spec: BackendSpec) -> None:
    """Register a backend implementation under ``spec.name``."""
    _REGISTRY[spec.name] = spec


def known_backends() -> tuple[str, ...]:
    """All registered backend names, installed or not."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Names of the backends whose dependencies are installed."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.probe())


def module_installed(module: str) -> bool:
    """Cheap availability probe that does not import the module."""
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def _normalise(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def get_backend(name: str) -> KernelBackend:
    """Return (and cache) the backend registered under ``name``.

    ``auto`` picks the fastest installed backend.  Raises
    :class:`UnknownBackendError` for unregistered names and
    :class:`BackendUnavailableError` when the backend's optional dependency
    is missing — both messages name the installed backends so the fix is
    obvious from the error alone.
    """
    key = _normalise(name)
    if key == "auto":
        for candidate in _AUTO_ORDER:
            spec = _REGISTRY.get(candidate)
            if spec is not None and spec.probe():
                return get_backend(candidate)
        raise BackendUnavailableError(
            "no backend available for 'auto'; installed backends: "
            + ", ".join(available_backends())
        )
    spec = _REGISTRY.get(key)
    if spec is None:
        raise UnknownBackendError(
            f"unknown backend {name!r}; installed backends: "
            + ", ".join(available_backends())
            + " (or 'auto' to pick the fastest installed)"
        )
    cached = _INSTANCES.get(key)
    if cached is not None:
        return cached
    if not spec.probe():
        raise BackendUnavailableError(
            f"backend {name!r} is not available: {spec.unavailable_reason}; "
            "installed backends: " + ", ".join(available_backends())
        )
    backend = spec.load()
    # One-time warm-up at construction so JIT compilation cost can never
    # land inside a timed region or a served query.
    backend.warmup()
    _INSTANCES[key] = backend
    return backend


def resolve_backend(backend: KernelBackend | str | None = None) -> KernelBackend:
    """Resolve an explicit backend, name, or ``None`` to an instance.

    ``None`` falls back to the ``REPRO_BACKEND`` environment variable and
    then to the ``numpy`` default; instances pass through untouched.
    """
    if backend is None:
        backend = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if isinstance(backend, str):
        return get_backend(backend)
    return backend


def resolve_backend_name(backend: KernelBackend | str | None = None) -> str:
    """The concrete backend name ``backend`` resolves to (e.g. for ``auto``)."""
    return resolve_backend(backend).name


# The backend the kernel facade dispatches to when the runtime context does
# not carry an explicit one.  Resolved lazily so REPRO_BACKEND set by a test
# runner or CI leg takes effect without any code change.
_ACTIVE: KernelBackend | None = None


def active_backend() -> KernelBackend:
    """The backend the kernel facade currently dispatches to."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = resolve_backend(None)
    return _ACTIVE


def set_active_backend(backend: KernelBackend | str | None) -> KernelBackend:
    """Set the process-wide active backend; returns the previous one."""
    global _ACTIVE
    previous = active_backend()
    _ACTIVE = resolve_backend(backend)
    return previous


@contextmanager
def use_backend(backend: KernelBackend | str | None) -> Iterator[KernelBackend]:
    """Scope the active backend to a ``with`` block (always restores)."""
    previous = set_active_backend(backend)
    try:
        yield active_backend()
    finally:
        set_active_backend(previous)
