"""Task combination (Section V-B, Algorithm 1 lines 15-24).

HyTGraph decouples *graph partitioning* (small 32 MB partitions so the
cost analysis is fine grained) from *task scheduling* (large tasks so the
per-kernel-launch and per-transfer overheads stay negligible):

* consecutive partitions that selected **ExpTM-filter** are merged into
  tasks of at most ``k`` partitions (k = 4 in the paper);
* every partition that selected **ExpTM-compaction** contributes its
  active vertices to one single compaction task whose packed output is
  shipped with one explicit copy;
* every partition that selected **ImpTM-zero-copy** contributes its
  active vertices to one single zero-copy kernel, which lets the implicit
  transfer overlap one big kernel instead of many tiny ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.selection import SelectionResult
from repro.graph.partition import Partitioning
from repro.transfer.base import EngineKind

__all__ = ["ScheduledTask", "TaskCombiner"]

DEFAULT_COMBINE_FACTOR = 4


@dataclass
class ScheduledTask:
    """One unit of work handed to the asynchronous task scheduler.

    Attributes
    ----------
    engine:
        The transfer engine all member partitions selected.
    partition_indices:
        The partitions merged into this task (consecutive for filter
        tasks; arbitrary for the combined compaction / zero-copy tasks).
    active_vertices:
        Active vertex ids covered by the task, in ascending order.
    priority:
        Scheduling priority (lower runs earlier); filled in by the
        contribution-driven scheduler.
    """

    engine: EngineKind
    partition_indices: list[int]
    active_vertices: np.ndarray
    priority: float = 0.0
    label: str = field(default="")

    def __post_init__(self) -> None:
        if not self.label:
            self.label = "%s[%s]" % (
                self.engine.value,
                ",".join(str(index) for index in self.partition_indices),
            )

    @property
    def num_active_vertices(self) -> int:
        """Number of active vertices the task processes."""
        return int(self.active_vertices.size)


class TaskCombiner:
    """Merges per-partition engine selections into scheduler tasks."""

    def __init__(self, combine_factor: int = DEFAULT_COMBINE_FACTOR, enabled: bool = True):
        if combine_factor <= 0:
            raise ValueError("combine_factor must be positive")
        self.combine_factor = combine_factor
        #: When disabled every partition becomes its own task — the
        #: "Hybrid" (no TC) configuration of the Figure 8 ablation.
        self.enabled = enabled

    def combine(
        self,
        partitioning: Partitioning,
        selection: SelectionResult,
        active_mask: np.ndarray,
        active_ids: np.ndarray | None = None,
    ) -> list[ScheduledTask]:
        """Build the task list for one iteration.

        ``active_mask`` is the frontier bitmap; callers that already hold
        the sorted active vertex ids can pass them as ``active_ids`` (the
        mask is then not scanned).
        """
        if active_ids is None:
            active_ids = np.flatnonzero(np.asarray(active_mask, dtype=bool))
        # Partitions hold consecutive vertex ranges and active_ids is
        # sorted, so one bisection of the partition boundaries splits the
        # frontier; each partition's actives are then a plain slice view.
        boundaries = np.append(partitioning.vertex_starts, partitioning.graph.num_vertices)
        cuts = np.searchsorted(active_ids, boundaries)

        def active_in(partition_index: int) -> np.ndarray:
            return active_ids[cuts[partition_index] : cuts[partition_index + 1]]

        if not self.enabled:
            tasks = []
            for index, choice in enumerate(selection.choices):
                if choice is None:
                    continue
                tasks.append(
                    ScheduledTask(engine=choice, partition_indices=[index], active_vertices=active_in(index))
                )
            return tasks

        tasks: list[ScheduledTask] = []

        # --- ExpTM-filter: merge up to k consecutive partitions -----------
        filter_partitions = selection.partitions_using(EngineKind.EXP_FILTER)
        current: list[int] = []
        previous_index: int | None = None
        for index in filter_partitions:
            consecutive = previous_index is not None and index == previous_index + 1
            if current and (not consecutive or len(current) >= self.combine_factor):
                tasks.append(self._make_filter_task(current, active_in))
                current = []
            current.append(index)
            previous_index = index
        if current:
            tasks.append(self._make_filter_task(current, active_in))

        # --- ExpTM-compaction: one combined task ---------------------------
        compaction_partitions = selection.partitions_using(EngineKind.EXP_COMPACTION)
        if compaction_partitions:
            # Partition indices ascend and partitions hold consecutive vertex
            # ranges, so the concatenation is already sorted.
            vertices = np.concatenate([active_in(index) for index in compaction_partitions])
            tasks.append(
                ScheduledTask(
                    engine=EngineKind.EXP_COMPACTION,
                    partition_indices=list(compaction_partitions),
                    active_vertices=vertices,
                    label="ExpTM-C[combined:%d]" % len(compaction_partitions),
                )
            )

        # --- ImpTM-zero-copy: one combined task ----------------------------
        zero_copy_partitions = selection.partitions_using(EngineKind.IMP_ZERO_COPY)
        if zero_copy_partitions:
            vertices = np.concatenate([active_in(index) for index in zero_copy_partitions])
            tasks.append(
                ScheduledTask(
                    engine=EngineKind.IMP_ZERO_COPY,
                    partition_indices=list(zero_copy_partitions),
                    active_vertices=vertices,
                    label="ImpTM-ZC[combined:%d]" % len(zero_copy_partitions),
                )
            )
        return tasks

    def _make_filter_task(self, partition_indices: list[int], active_in) -> ScheduledTask:
        # Filter tasks merge consecutive partitions, so the concatenated
        # active ids are already in ascending order.
        vertices = np.concatenate([active_in(index) for index in partition_indices])
        return ScheduledTask(
            engine=EngineKind.EXP_FILTER,
            partition_indices=list(partition_indices),
            active_vertices=vertices,
        )
