"""Cost-aware transfer-engine selection (Algorithm 1, lines 2-13).

Given the per-partition cost estimates of
:class:`~repro.core.cost_model.CostModel`, HyTGraph picks one engine per
active partition:

* choose **ExpTM-compaction** when ``Tec_i < α·Tef_i`` *and*
  ``Tec_i < β·Tiz_i`` — the first condition is Subway's 80 % observation
  (α = 0.8), the second (β = 0.4) prefers compaction over zero-copy for
  partitions with many low-degree active vertices whose unsaturated
  requests would waste PCIe bandwidth;
* otherwise choose **ImpTM-zero-copy** if ``Tiz_i < Tef_i``;
* otherwise choose **ExpTM-filter**.

In the real system this selection runs on the GPU so that only the result
crosses PCIe; the simulated runtime charges that device-side scan via
:meth:`repro.sim.kernel.KernelModel.device_scan_time`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost_model import PartitionCosts
from repro.transfer.base import EngineKind

__all__ = ["SelectionThresholds", "SelectionResult", "EngineSelector"]

DEFAULT_ALPHA = 0.8
DEFAULT_BETA = 0.4


@dataclass(frozen=True)
class SelectionThresholds:
    """The α and β thresholds of Section V-A."""

    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")


@dataclass(frozen=True)
class SelectionResult:
    """Chosen engine per partition for one iteration.

    ``choices[i]`` is ``None`` for inactive partitions, otherwise one of
    the three :class:`~repro.transfer.base.EngineKind` values HyTGraph
    mixes (unified memory is never selected by the hybrid runtime —
    Section IV explains why it is excluded as a baseline engine).
    """

    choices: list[EngineKind | None]

    def partitions_using(self, engine: EngineKind) -> list[int]:
        """Indices of partitions that selected ``engine``."""
        return [index for index, choice in enumerate(self.choices) if choice == engine]

    def counts(self) -> dict[str, int]:
        """Number of active partitions per selected engine (Figure 7a/b)."""
        totals: dict[str, int] = {}
        for choice in self.choices:
            if choice is None:
                continue
            totals[choice.value] = totals.get(choice.value, 0) + 1
        return totals


class EngineSelector:
    """Applies the α/β selection rule to per-partition cost estimates."""

    def __init__(self, thresholds: SelectionThresholds | None = None):
        self.thresholds = thresholds or SelectionThresholds()

    def select(self, costs: PartitionCosts) -> SelectionResult:
        """Pick the most cost-efficient engine for every active partition."""
        alpha = self.thresholds.alpha
        beta = self.thresholds.beta
        choices: list[EngineKind | None] = []
        for index in range(costs.num_partitions):
            if costs.active_edges[index] <= 0:
                choices.append(None)
                continue
            tef = float(costs.filter_cost[index])
            tec = float(costs.compaction_cost[index])
            tiz = float(costs.zero_copy_cost[index])
            if tec < alpha * tef and tec < beta * tiz:
                choices.append(EngineKind.EXP_COMPACTION)
            elif tiz < tef:
                choices.append(EngineKind.IMP_ZERO_COPY)
            else:
                choices.append(EngineKind.EXP_FILTER)
        return SelectionResult(choices=choices)

    def select_single(self, filter_cost: float, compaction_cost: float, zero_copy_cost: float) -> EngineKind:
        """Selection rule for a single partition (convenience for tests)."""
        costs = PartitionCosts(
            filter_cost=np.array([filter_cost]),
            compaction_cost=np.array([compaction_cost]),
            zero_copy_cost=np.array([zero_copy_cost]),
            active_vertices=np.array([1]),
            active_edges=np.array([1]),
        )
        return self.select(costs).choices[0]
