"""Table VI — transfer volume normalised to the edge-data volume.

For PageRank and SSSP on the five datasets, the table reports each
system's total host-to-GPU traffic divided by the size of one full pass
over the edge data.  The paper's observations, asserted here:

* ExpTM-filter has by far the highest transfer volume;
* EMOGI transfers noticeably more than Subway for PageRank (no
  asynchronous re-processing), while for SSSP Subway's multi-round
  processing causes stale computation and erodes its advantage;
* HyTGraph's volume is competitive with the best of the two in all cases.
"""

import numpy as np
from conftest import run_once

from repro.bench.workloads import build_workload, paper_datasets
from repro.metrics.tables import format_table

SYSTEMS = ["exptm-f", "subway", "emogi", "hytgraph"]


def test_table6_transfer_reduction(benchmark, report_writer, bench_scale):
    def experiment():
        table = {}
        for algorithm in ("pagerank", "sssp"):
            for dataset in paper_datasets():
                workload = build_workload(dataset, algorithm, scale=bench_scale)
                edge_bytes = workload.graph.edge_data_bytes
                for system in SYSTEMS:
                    result = workload.run(system)
                    table[(algorithm, dataset, system)] = result.transfer_ratio(edge_bytes)
        return table

    table = run_once(benchmark, experiment)

    rows = []
    for algorithm in ("pagerank", "sssp"):
        for dataset in paper_datasets():
            row = {"alg": algorithm.upper(), "dataset": dataset}
            for system in SYSTEMS:
                row[system] = round(table[(algorithm, dataset, system)], 2)
            rows.append(row)
    report = format_table(rows, title="Table VI: transfer volume / edge volume")
    report_writer("table6_transfer", report)

    for algorithm in ("pagerank", "sssp"):
        for dataset in paper_datasets():
            cells = {system: table[(algorithm, dataset, system)] for system in SYSTEMS}
            # ExpTM-filter always moves the most data.
            assert cells["exptm-f"] == max(cells.values())
            # HyTGraph moves far less than the filter baseline and EMOGI...
            assert cells["hytgraph"] < cells["exptm-f"]
            assert cells["hytgraph"] < 1.1 * cells["emogi"]
            # ...and stays within a modest factor of the overall best
            # (Subway's 32-round async is hard to beat on volume for
            # PageRank; the paper sees the same 1-2x gap on TW/FK).
            best = min(cells.values())
            factor = 2.5 if algorithm == "sssp" else 6.0
            assert cells["hytgraph"] <= factor * best

    # PageRank: Subway's multi-round async cuts its volume below EMOGI's.
    pr_subway = np.mean([table[("pagerank", d, "subway")] for d in paper_datasets()])
    pr_emogi = np.mean([table[("pagerank", d, "emogi")] for d in paper_datasets()])
    assert pr_subway < pr_emogi
