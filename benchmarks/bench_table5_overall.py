"""Table V — overall runtime of every system on every algorithm and dataset.

The paper's headline table: PageRank, SSSP, CC and BFS on the five graphs,
across Galois (CPU), ExpTM-F, ImpTM-UM, Grus, Subway, EMOGI and HyTGraph.
Absolute seconds differ from the paper (the substrate is a simulator and
the graphs are scaled stand-ins); the assertions check the claims the
paper draws from the table:

* HyTGraph achieves a clear average speedup over Subway, EMOGI, ExpTM-F
  and the unified-memory baseline;
* the unified-memory systems win PageRank on the graph that fits in GPU
  memory (SK);
* the GPU systems beat the CPU baseline.
"""

import numpy as np
from conftest import run_once

from repro.bench.workloads import build_workload, paper_datasets
from repro.metrics.tables import format_table

SYSTEMS = ["galois", "exptm-f", "imptm-um", "grus", "subway", "emogi", "hytgraph"]
SYSTEM_LABELS = {
    "galois": "Galois",
    "exptm-f": "ExpTM-F",
    "imptm-um": "ImpTM-UM",
    "grus": "Grus",
    "subway": "Subway",
    "emogi": "EMOGI",
    "hytgraph": "HyTGraph",
}
ALGORITHMS = ["pagerank", "sssp", "cc", "bfs"]


def geometric_mean(values):
    values = np.asarray(list(values), dtype=float)
    return float(np.exp(np.log(values).mean()))


def test_table5_overall_runtime(benchmark, report_writer, bench_scale):
    def experiment():
        table = {}
        for algorithm in ALGORITHMS:
            for dataset in paper_datasets():
                workload = build_workload(dataset, algorithm, scale=bench_scale)
                for system in SYSTEMS:
                    result = workload.run(system)
                    table[(algorithm, dataset, system)] = result.total_time
        return table

    table = run_once(benchmark, experiment)

    rows = []
    for algorithm in ALGORITHMS:
        for system in SYSTEMS:
            row = {"alg": algorithm.upper(), "system": SYSTEM_LABELS[system]}
            for dataset in paper_datasets():
                row[dataset] = table[(algorithm, dataset, system)]
            rows.append(row)
    report = format_table(rows, title="Table V: overall runtime (simulated seconds)")

    def speedups_over(baseline):
        ratios = []
        for algorithm in ALGORITHMS:
            for dataset in paper_datasets():
                ratios.append(
                    table[(algorithm, dataset, baseline)] / table[(algorithm, dataset, "hytgraph")]
                )
        return geometric_mean(ratios)

    summary = {name: round(speedups_over(name), 2) for name in SYSTEMS if name != "hytgraph"}
    report += "\nGeomean speedup of HyTGraph over each system: %s\n" % summary
    report_writer("table5_overall", report)

    # Headline claims (shape, not absolute numbers).
    assert summary["subway"] > 1.3, "HyTGraph should clearly beat Subway on average"
    assert summary["emogi"] > 1.0, "HyTGraph should beat EMOGI on average"
    assert summary["exptm-f"] > 2.0, "HyTGraph should crush the pure filter baseline"
    assert summary["galois"] > 2.0, "GPU acceleration should clearly beat the CPU baseline"
    # Section VII-B2: UM-based systems win PageRank on SK (fits in memory).
    assert table[("pagerank", "SK", "imptm-um")] < table[("pagerank", "SK", "subway")]
    assert table[("pagerank", "SK", "imptm-um")] < table[("pagerank", "SK", "emogi")]
    # ...but lose badly once the graph no longer fits (FS).
    assert table[("pagerank", "FS", "imptm-um")] > table[("pagerank", "FS", "hytgraph")]
