"""Multi-tenant service scheduling: priority vs FIFO on a mixed trace.

Serves the starvation scenario the priority scheduler exists for: a few
heavy BULK analytical queries (PageRank — full frontier, every partition
in flight, tens of iterations) are already in the queue when a burst of
INTERACTIVE point lookups (seeded BFS sources — one partition in flight,
a handful of iterations) arrives.  The same trace is served twice through
:class:`repro.service.GraphService` on identical transfer-bound
platforms, once with ``scheduling="fifo"`` (the historical co-schedule:
merged task lists in submission order, so every lookup's tasks queue
behind the analytics' transfers) and once with ``scheduling="priority"``
(merged task lists ordered by priority class).

Reported per system:

* p50/p95/max point-lookup latency under both disciplines and the p95
  ratio (the headline number — the acceptance bar asserted here is
  **>= 1.5x** for HyTGraph);
* BULK-class p95 under both (priority scheduling barely moves it: the
  analytics end last either way);
* total makespan under both (throughput is preserved — ordering moves
  latency between classes, not work).

Everything is simulated time, so the numbers are deterministic; a
smaller copy of this trace runs inside ``bench_perf_hotpaths.py`` under
the ``--check-against`` regression gate.

Usage::

    python benchmarks/bench_service_scheduling.py
    python benchmarks/bench_service_scheduling.py --point-lookups 24 --analytical 4
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.graph.generators import rmat_graph
from repro.metrics.tables import format_table
from repro.service import GraphService, Priority, ServiceConfig, synthetic_mixed_trace
from repro.sim.config import HardwareConfig
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.hytgraph import HyTGraphSystem

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SYSTEMS = [HyTGraphSystem, ExpTMFilterSystem]

#: The acceptance bar: priority scheduling must cut HyTGraph's p95
#: point-lookup latency by at least this factor vs FIFO.
P95_SPEEDUP_FLOOR = 1.5


def build_platform(args):
    graph = rmat_graph(args.vertices, args.edges, seed=5, weighted=True, name="rmat-serve")
    config = HardwareConfig(
        gpu_memory_bytes=graph.edge_data_bytes // 2,
        pcie_bandwidth=args.pcie_bandwidth,
    ).with_devices(args.devices)
    return graph, config


def serve_trace(system_cls, graph, config, requests, scheduling):
    system = system_cls(graph, config=config)
    service = GraphService(
        ServiceConfig(system=_registry_name(system_cls), scheduling=scheduling),
        system=system,
    )
    handles = service.submit_many(requests)
    service.drain()
    return service, handles


def _registry_name(system_cls):
    from repro.systems import SYSTEMS as REGISTRY

    for name, cls in REGISTRY.items():
        if cls is system_cls:
            return name
    raise KeyError(system_cls)


def run_cell(system_cls, graph, config, requests):
    """One system served under both disciplines; returns the comparison."""
    cell = {}
    values = {}
    for scheduling in ("fifo", "priority"):
        service, handles = serve_trace(system_cls, graph, config, requests, scheduling)
        stats = service.stats()
        cell[scheduling] = {
            "point_p50_s": stats.latency_percentile(Priority.INTERACTIVE, 50),
            "point_p95_s": stats.latency_percentile(Priority.INTERACTIVE, 95),
            "point_max_s": max(stats.class_latencies(Priority.INTERACTIVE)),
            "bulk_p95_s": stats.latency_percentile(Priority.BULK, 95),
            "makespan_s": stats.makespan_s,
        }
        values[scheduling] = [np.asarray(handle.result().values) for handle in handles]
    for fifo_values, priority_values in zip(values["fifo"], values["priority"]):
        if not np.array_equal(fifo_values, priority_values):
            raise AssertionError(
                "%s: priority scheduling changed query values" % system_cls.name
            )
    cell["p95_speedup"] = cell["fifo"]["point_p95_s"] / cell["priority"]["point_p95_s"]
    cell["makespan_ratio"] = cell["priority"]["makespan_s"] / cell["fifo"]["makespan_s"]
    return cell


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--vertices", type=int, default=2000)
    parser.add_argument("--edges", type=int, default=20000)
    parser.add_argument("--devices", type=int, default=1,
                        help="device count (1 keeps every transfer on the PCIe "
                             "contention path; >1 adds shard residency)")
    parser.add_argument("--pcie-bandwidth", type=float, default=1e9,
                        help="throttled host-GPU bandwidth (transfer-bound regime)")
    parser.add_argument("--point-lookups", type=int, default=12,
                        help="INTERACTIVE BFS lookups in the trace")
    parser.add_argument("--analytical", type=int, default=8,
                        help="BULK PageRank queries in the trace")
    parser.add_argument("--seed", type=int, default=11, help="lookup-source sampling seed")
    parser.add_argument("--out", type=Path, default=RESULTS_DIR / "service_scheduling.json")
    args = parser.parse_args(argv)
    if args.point_lookups <= 0:
        parser.error("--point-lookups must be positive (the benchmark measures "
                     "point-lookup latency percentiles)")

    graph, config = build_platform(args)
    requests = synthetic_mixed_trace(graph, args.point_lookups, args.analytical, args.seed)

    cells = {}
    rows = []
    for system_cls in SYSTEMS:
        cell = run_cell(system_cls, graph, config, requests)
        cells[system_cls.name] = cell
        rows.append(
            {
                "system": system_cls.name,
                "fifo p95 (s)": round(cell["fifo"]["point_p95_s"], 6),
                "priority p95 (s)": round(cell["priority"]["point_p95_s"], 6),
                "p95 speedup": round(cell["p95_speedup"], 2),
                "bulk p95 ratio": round(
                    cell["priority"]["bulk_p95_s"] / cell["fifo"]["bulk_p95_s"], 3
                ),
                "makespan ratio": round(cell["makespan_ratio"], 3),
            }
        )

    title = (
        "Point-lookup latency, priority vs FIFO scheduling "
        "(%d lookups + %d analytical, %d device(s), transfer-bound)"
        % (args.point_lookups, args.analytical, args.devices)
    )
    report = format_table(rows, title=title)
    print(report)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_scheduling.txt").write_text(report)
    payload = {
        "meta": {
            "harness": "bench_service_scheduling",
            "vertices": args.vertices,
            "edges": args.edges,
            "devices": args.devices,
            "pcie_bandwidth": args.pcie_bandwidth,
            "point_lookups": args.point_lookups,
            "analytical": args.analytical,
            "seed": args.seed,
        },
        "cells": cells,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s" % args.out)

    speedup = cells["HyTGraph"]["p95_speedup"]
    if speedup < P95_SPEEDUP_FLOOR:
        raise SystemExit(
            "HyTGraph p95 point-lookup speedup %.2fx fell below the %.1fx bar"
            % (speedup, P95_SPEEDUP_FLOOR)
        )
    print(
        "acceptance: HyTGraph priority scheduling cuts p95 point-lookup latency "
        "%.2fx >= %.1fx vs FIFO" % (speedup, P95_SPEEDUP_FLOOR)
    )
    return payload


if __name__ == "__main__":
    main()
