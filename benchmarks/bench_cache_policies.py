"""Device-memory cache policies: frontier-aware eviction vs static pinning.

Compares the three eviction policies of the cache subsystem
(:mod:`repro.cache`) on a **memory-constrained, transfer-bound,
multi-device batch workload**:

* a weighted grid graph, so SSSP frontiers are travelling wavefronts —
  the active working set is a narrow band that fits in the budget but
  *moves*, which is exactly the regime where pinning a static prefix
  caches the wrong partitions;
* per-device cache budget of one sixth of the edge data (memory
  constrained: neither one device nor the aggregate can hold the graph);
* PCIe throttled far below kernel throughput (transfer bound);
* K concurrent SSSP queries from seed-deterministically sampled sources
  (divergent working sets competing for the budget), served by the
  :class:`~repro.runtime.batch.QueryBatchRunner`.

Expected shape:

* **ExpTM-F** is the headline: every transfer is a whole partition, so
  the cache directly replaces traffic.  ``frontier-aware`` admits the
  partitions the wavefronts are crossing, keeps them resident *across
  super-iterations* (the static design re-ships every super-iteration)
  and evicts them once their frontier collapses.  The acceptance bar
  (asserted here) is >= 1.3x over ``static-prefix`` at the default
  scale.  ``lru`` barely helps — with a working set larger than the
  budget, recency alone thrashes (the classic cyclic-eviction
  pathology); scoring by active-edge density is what makes eviction
  safe.
* **HyTGraph** moves far less in the first place — its per-iteration
  engine selection is itself the adaptive transfer mechanism (the
  paper's thesis), and compacted/zero-copy transfers leave nothing
  cacheable behind — so policies change little on it; the rows are
  reported as the control group.  On a *single* device (where the
  paper-faithful static configuration has no residency at all) the
  adaptive policies are the only way to reuse device memory, and
  frontier-aware shows a clear win on the dense-frontier R-MAT
  workload, reported in the single-device section.

Everything is simulated time, so the numbers are deterministic.

Usage::

    python benchmarks/bench_cache_policies.py
    python benchmarks/bench_cache_policies.py --rows 60 --cols 40 --queries 4
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.algorithms.sssp import SSSP
from repro.bench.workloads import batch_sources
from repro.graph.generators import grid_graph, rmat_graph
from repro.metrics.tables import format_table
from repro.runtime.batch import QueryBatchRunner
from repro.sim.config import HardwareConfig
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.hytgraph import HyTGraphSystem

RESULTS_DIR = Path(__file__).resolve().parent / "results"

POLICIES = ["static-prefix", "lru", "frontier-aware"]
SOURCE_SEED = 11

# The acceptance bar: frontier-aware eviction + cross-super-iteration
# reuse must beat static pinning by this factor on the headline
# (ExpTM-F, 2-device batch) workload at the default scale.
FRONTIER_AWARE_SPEEDUP_FLOOR = 1.3


def run_batch_cell(system_cls, graph, config, sources, policy):
    """One (system, policy) cell of the batch grid, value-checked."""
    system = system_cls(graph, config=config, cache_policy=policy)
    batch = QueryBatchRunner(system).run([(SSSP(), source) for source in sources])
    return batch


def policy_grid(system_cls, graph, config, sources):
    cells = {}
    reference_values = None
    for policy in POLICIES:
        batch = run_batch_cell(system_cls, graph, config, sources, policy)
        values = [np.asarray(result.values) for result in batch.results]
        if reference_values is None:
            reference_values = values
        else:
            for ref, got in zip(reference_values, values):
                if not np.array_equal(ref, got):
                    raise AssertionError(
                        "%s/%s: query values diverged across cache policies"
                        % (system_cls.name, policy)
                    )
        cells[policy] = {
            "makespan_s": batch.makespan,
            "transfer_bytes": batch.total_transfer_bytes,
            "cache_hit_bytes": batch.cache_hit_bytes,
            "cache_miss_bytes": batch.cache_miss_bytes,
            "cache_evicted_bytes": batch.cache_evicted_bytes,
            "super_iterations": batch.super_iterations,
            "amortized_bytes": batch.amortized_bytes,
        }
    static = cells["static-prefix"]["makespan_s"]
    for policy in POLICIES:
        cells[policy]["speedup_vs_static"] = static / cells[policy]["makespan_s"]
    return cells


def run_single_device_section(args):
    """Adaptive caching where static pinning never applied: one device."""
    graph = rmat_graph(
        args.rmat_vertices, args.rmat_edges, seed=5, weighted=True, name="rmat-1dev"
    )
    config = HardwareConfig(
        gpu_memory_bytes=graph.edge_data_bytes // 6, pcie_bandwidth=args.pcie_bandwidth
    )
    cells = {}
    program = SSSP()
    reference = None
    for policy in POLICIES:
        system = HyTGraphSystem(graph, config=config, cache_policy=policy)
        result = system.run(program, source=0)
        if reference is None:
            reference = np.asarray(result.values)
        elif not np.array_equal(reference, np.asarray(result.values)):
            raise AssertionError("single-device values diverged under %s" % policy)
        cells[policy] = {
            "time_s": result.total_time,
            "transfer_bytes": result.total_transfer_bytes,
            "cache_hit_bytes": result.total_cache_hit_bytes,
        }
    static = cells["static-prefix"]["time_s"]
    for policy in POLICIES:
        cells[policy]["speedup_vs_static"] = static / cells[policy]["time_s"]
    return cells


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--rows", type=int, default=100, help="grid rows")
    parser.add_argument("--cols", type=int, default=60, help="grid columns")
    parser.add_argument("--queries", type=int, default=8, help="concurrent SSSP queries")
    parser.add_argument("--devices", type=int, default=2)
    parser.add_argument("--budget-divisor", type=int, default=6,
                        help="per-device cache budget = edge bytes / divisor")
    parser.add_argument("--pcie-bandwidth", type=float, default=5e8,
                        help="throttled host-GPU bandwidth (transfer-bound regime)")
    parser.add_argument("--rmat-vertices", type=int, default=2000)
    parser.add_argument("--rmat-edges", type=int, default=20000)
    parser.add_argument("--skip-acceptance", action="store_true",
                        help="report only; do not enforce the 1.3x bar "
                             "(for non-default scales)")
    parser.add_argument("--out", type=Path, default=RESULTS_DIR / "cache_policies.json")
    args = parser.parse_args(argv)

    graph = grid_graph(args.rows, args.cols, weighted=True, seed=3)
    config = HardwareConfig(
        gpu_memory_bytes=graph.edge_data_bytes // args.budget_divisor,
        pcie_bandwidth=args.pcie_bandwidth,
    ).with_devices(args.devices)
    sources = batch_sources(graph, args.queries, seed=SOURCE_SEED)

    print(
        "grid %dx%d (%d edges), %d devices, budget = E/%d per device, "
        "PCIe %.1e B/s, K = %d seeded sources"
        % (args.rows, args.cols, graph.num_edges, args.devices,
           args.budget_divisor, args.pcie_bandwidth, args.queries)
    )

    batch_cells = {}
    rows = []
    for system_cls in (ExpTMFilterSystem, HyTGraphSystem):
        cells = policy_grid(system_cls, graph, config, sources)
        batch_cells[system_cls.name] = cells
        for policy in POLICIES:
            cell = cells[policy]
            rows.append({
                "system": system_cls.name,
                "policy": policy,
                "makespan (s)": round(cell["makespan_s"], 6),
                "speedup": round(cell["speedup_vs_static"], 2),
                "transfer_MB": round(cell["transfer_bytes"] / 1e6, 3),
                "hit_MB": round(cell["cache_hit_bytes"] / 1e6, 3),
                "evicted_MB": round(cell["cache_evicted_bytes"] / 1e6, 3),
            })
    report = format_table(
        rows,
        title="Cache policies on the memory-constrained transfer-bound batch "
              "(SSSP wavefronts, %d devices, K=%d)" % (args.devices, args.queries),
    )
    print(report)

    single_cells = run_single_device_section(args)
    single_rows = [
        {
            "policy": policy,
            "time (s)": round(cell["time_s"], 6),
            "speedup": round(cell["speedup_vs_static"], 2),
            "transfer_MB": round(cell["transfer_bytes"] / 1e6, 3),
            "hit_MB": round(cell["cache_hit_bytes"] / 1e6, 3),
        }
        for policy, cell in single_cells.items()
    ]
    single_report = format_table(
        single_rows,
        title="Single-device HyTGraph (R-MAT SSSP): adaptive caching where "
              "the paper-faithful static config has no residency at all",
    )
    print(single_report)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cache_policies.txt").write_text(report + "\n" + single_report)
    payload = {
        "meta": {
            "harness": "bench_cache_policies",
            "grid": [args.rows, args.cols],
            "queries": args.queries,
            "devices": args.devices,
            "budget_divisor": args.budget_divisor,
            "pcie_bandwidth": args.pcie_bandwidth,
            "source_seed": SOURCE_SEED,
        },
        "batch": batch_cells,
        "single_device_hytgraph": single_cells,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s" % args.out)

    headline = batch_cells[ExpTMFilterSystem.name]["frontier-aware"]["speedup_vs_static"]
    if not args.skip_acceptance:
        if headline < FRONTIER_AWARE_SPEEDUP_FLOOR:
            raise SystemExit(
                "frontier-aware speedup %.2fx fell below the %.1fx acceptance bar"
                % (headline, FRONTIER_AWARE_SPEEDUP_FLOOR)
            )
        print(
            "acceptance: ExpTM-F frontier-aware %.2fx >= %.1fx over static-prefix"
            % (headline, FRONTIER_AWARE_SPEEDUP_FLOOR)
        )
    return payload


if __name__ == "__main__":
    main()
