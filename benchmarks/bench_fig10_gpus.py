"""Figure 10 — sensitivity to the GPU model (GTX 1080, P100, GTX 2080Ti).

The paper runs PageRank and SSSP on the FS graph on three different GPUs
and normalises every system's runtime to Subway's.  The conclusion —
HyTGraph outperforms Subway, Grus and EMOGI on every GPU — is what the
assertions check here.
"""

from conftest import run_once

from repro.bench.workloads import build_workload
from repro.metrics.tables import format_table, normalize_speedups

GPUS = ["GTX-1080", "P100", "GTX-2080Ti"]
SYSTEMS = ["subway", "grus", "emogi", "hytgraph"]
SYSTEM_LABELS = {"subway": "Subway", "grus": "Grus", "emogi": "EMOGI", "hytgraph": "HyTGraph"}


def test_fig10_gpu_sensitivity(benchmark, report_writer, bench_scale):
    def experiment():
        table = {}
        for algorithm in ("pagerank", "sssp"):
            for gpu in GPUS:
                workload = build_workload("FS", algorithm, scale=bench_scale, preset=gpu)
                for system in SYSTEMS:
                    result = workload.run(system)
                    table[(algorithm, gpu, system)] = result.total_time
        return table

    table = run_once(benchmark, experiment)

    rows = []
    for algorithm in ("pagerank", "sssp"):
        for gpu in GPUS:
            times = {SYSTEM_LABELS[system]: table[(algorithm, gpu, system)] for system in SYSTEMS}
            speedups = normalize_speedups(times, baseline="Subway")
            row = {"alg": algorithm.upper(), "GPU": gpu}
            row.update({name: round(value, 2) for name, value in speedups.items()})
            rows.append(row)
    report = format_table(rows, title="Figure 10: speedup over Subway on different GPUs (FS)")
    report_writer("fig10_gpus", report)

    # HyTGraph beats Subway on every GPU for both algorithms, and beats
    # EMOGI/Grus on most configurations.
    for row in rows:
        assert row["HyTGraph"] > 1.0
    hytgraph_wins = sum(row["HyTGraph"] >= max(row["Grus"], row["EMOGI"]) for row in rows)
    assert hytgraph_wins >= len(rows) // 2
