"""Figure 3 — the motivating analysis of the four transfer approaches.

Each sub-figure is regenerated as its own benchmark:

(a) proportion of active edges vs active partitions under ExpTM-filter;
(b) per-iteration runtime breakdown of Subway (compaction/transfer/compute);
(c) Subway's whole-run breakdown across the five datasets;
(d) proportion of active edges vs active 4-KB pages under ImpTM-UM;
(e) zero-copy throughput vs memory-request size;
(f) vertex out-degree distribution of the five datasets;
(g,h) per-iteration runtime of the four approaches for SSSP and PageRank
      plus the per-iteration "preferred" engine.
"""

import numpy as np
from conftest import run_once

from repro.bench.workloads import build_workload
from repro.graph.datasets import load_dataset
from repro.graph.partition import partition_by_count
from repro.graph.properties import degree_bucket_fractions
from repro.metrics.tables import format_series, format_table
from repro.sim.config import default_config
from repro.sim.pcie import PCIeModel


def _frontier_trace(workload, system_name="emogi"):
    """Per-iteration active-vertex masks of a synchronous reference run."""
    graph = workload.graph
    program = workload.program
    state = program.create_state(graph, workload.source)
    pending = program.initial_frontier(graph, state, workload.source).mask.copy()
    masks = []
    for _ in range(10_000):
        active = np.nonzero(pending)[0]
        if active.size == 0:
            break
        masks.append(pending.copy())
        pending[active] = False
        newly = program.process(graph, state, active)
        if newly.size:
            pending[newly] = True
    return masks


def test_fig3a_active_edges_vs_active_partitions(benchmark, report_writer, bench_scale):
    def experiment():
        series = {}
        for algorithm in ("pagerank", "sssp"):
            workload = build_workload("FK", algorithm, scale=bench_scale)
            partitioning = partition_by_count(workload.graph, 256)
            total_edges = workload.graph.num_edges
            edge_fraction = []
            partition_fraction = []
            for mask in _frontier_trace(workload):
                _, active_edges = partitioning.active_counts(mask)
                edge_fraction.append(float(active_edges.sum()) / total_edges)
                partition_fraction.append(float(np.count_nonzero(active_edges)) / partitioning.num_partitions)
            label = "PR" if algorithm == "pagerank" else "SSSP"
            series["%s-actEdge" % label] = edge_fraction
            series["%s-actPrt" % label] = partition_fraction
        return series

    series = run_once(benchmark, experiment)
    report_writer(
        "fig3a_active_partitions",
        format_series(series, title="Figure 3(a): active edge vs active partition proportion per iteration (FK)"),
    )
    # The paper's observation: the active-partition proportion stays well
    # above the active-edge proportion (whole partitions stay "active"
    # long after most of their edges went quiet).
    for label in ("PR", "SSSP"):
        edges = np.array(series["%s-actEdge" % label])
        partitions = np.array(series["%s-actPrt" % label])
        assert partitions.mean() >= edges.mean()


def test_fig3b_subway_periteration_breakdown(benchmark, report_writer, bench_scale):
    def experiment():
        tables = {}
        for algorithm in ("pagerank", "sssp"):
            workload = build_workload("FK", algorithm, scale=bench_scale)
            result = workload.run("subway")
            tables[algorithm] = {
                "compaction": [stats.compaction_time for stats in result.iterations],
                "transfer": [stats.transfer_time for stats in result.iterations],
                "computation": [stats.kernel_time for stats in result.iterations],
            }
        return tables

    tables = run_once(benchmark, experiment)
    text = ""
    for algorithm, series in tables.items():
        text += format_series(series, title="Figure 3(b): Subway per-iteration breakdown (%s, FK)" % algorithm)
    report_writer("fig3b_subway_breakdown", text)
    # Compaction must be a visible share of Subway's per-iteration cost.
    for series in tables.values():
        assert sum(series["compaction"]) > 0


def test_fig3c_subway_overall_breakdown(benchmark, report_writer, bench_scale):
    def experiment():
        rows = []
        for dataset in ("SK", "TW", "FK", "UK", "FS"):
            workload = build_workload(dataset, "sssp", scale=bench_scale)
            result = workload.run("subway")
            breakdown = result.breakdown()
            total = sum(breakdown.values()) or 1.0
            rows.append(
                {
                    "dataset": dataset,
                    "compaction (s)": breakdown["compaction"],
                    "transfer (s)": breakdown["transfer"],
                    "computation (s)": breakdown["computation"],
                    "compaction share": round(breakdown["compaction"] / total, 3),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    report_writer("fig3c_subway_overall", format_table(rows, title="Figure 3(c): Subway SSSP breakdown per dataset"))
    # Paper: compaction accounts for roughly a third of Subway's runtime.
    average_share = np.mean([row["compaction share"] for row in rows])
    assert average_share > 0.2


def test_fig3d_active_edges_vs_active_pages(benchmark, report_writer, bench_scale):
    def experiment():
        config = default_config()
        pcie = PCIeModel(config)
        series = {}
        for algorithm in ("pagerank", "sssp"):
            workload = build_workload("FK", algorithm, scale=bench_scale)
            graph = workload.graph
            per_edge = graph.edge_bytes_per_edge
            total_edges = graph.num_edges
            total_pages = int(np.ceil(graph.edge_data_bytes / config.um_page_bytes))
            edge_fraction = []
            page_fraction = []
            for mask in _frontier_trace(workload):
                active = np.nonzero(mask)[0]
                degrees = graph.out_degrees[active]
                starts = graph.row_offset[active] * per_edge
                pages = pcie.pages_for_byte_ranges(starts, degrees * per_edge)
                edge_fraction.append(float(degrees.sum()) / total_edges)
                page_fraction.append(pages.size / max(total_pages, 1))
            label = "PR" if algorithm == "pagerank" else "SSSP"
            series["%s-actEdge" % label] = edge_fraction
            series["%s-actPage" % label] = page_fraction
        return series

    series = run_once(benchmark, experiment)
    report_writer(
        "fig3d_active_pages",
        format_series(series, title="Figure 3(d): active edge vs active 4KB page proportion per iteration (FK)"),
    )
    for label in ("PR", "SSSP"):
        assert np.mean(series["%s-actPage" % label]) >= np.mean(series["%s-actEdge" % label]) * 0.9


def test_fig3e_zero_copy_throughput(benchmark, report_writer):
    def experiment():
        pcie = PCIeModel(default_config())
        rows = []
        for request_bytes in (32, 64, 96, 128):
            rows.append(
                {
                    "request size (B)": request_bytes,
                    "zero-copy (GB/s)": round(pcie.zero_copy_throughput(request_bytes) / 1e9, 2),
                    "cudaMemcpy (GB/s)": round(pcie.explicit_copy_throughput() / 1e9, 2),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    report_writer("fig3e_zero_copy_throughput", format_table(rows, title="Figure 3(e): zero-copy throughput vs request size"))
    throughputs = [row["zero-copy (GB/s)"] for row in rows]
    assert throughputs == sorted(throughputs)
    assert throughputs[-1] >= 0.95 * rows[-1]["cudaMemcpy (GB/s)"]
    assert throughputs[0] < 0.5 * throughputs[-1]


def test_fig3f_degree_distribution(benchmark, report_writer, bench_scale):
    def experiment():
        rows = []
        for dataset in ("SK", "TW", "FK", "UK", "FS"):
            graph = load_dataset(dataset, scale=bench_scale)
            fractions = degree_bucket_fractions(graph)
            row = {"dataset": dataset}
            row.update({bucket: round(value, 3) for bucket, value in fractions.items()})
            rows.append(row)
        return rows

    rows = run_once(benchmark, experiment)
    report_writer("fig3f_degree_distribution", format_table(rows, title="Figure 3(f): out-degree distribution"))
    # Paper: on average ~75% of vertices have fewer than 32 neighbors.
    below_32 = np.mean([1.0 - row["[32,inf)"] for row in rows])
    assert below_32 > 0.6


def test_fig3gh_per_iteration_runtime_of_four_approaches(benchmark, report_writer, bench_scale):
    def experiment():
        tables = {}
        for algorithm in ("sssp", "pagerank"):
            workload = build_workload("FK", algorithm, scale=bench_scale)
            series = {}
            for system_name, label in (
                ("exptm-f", "E-F"),
                ("subway", "E-C"),
                ("emogi", "I-ZC"),
                ("imptm-um", "I-UM"),
            ):
                result = workload.run(system_name)
                series[label] = result.per_iteration_times()
            length = max(len(values) for values in series.values())
            prefer = []
            for index in range(length):
                best = min(
                    (values[index], label)
                    for label, values in series.items()
                    if index < len(values)
                )
                prefer.append(best[1])
            tables[algorithm] = (series, prefer)
        return tables

    tables = run_once(benchmark, experiment)
    text = ""
    for algorithm, (series, prefer) in tables.items():
        title = "Figure 3(%s): per-iteration runtime of the four approaches (%s, FK)" % (
            "g" if algorithm == "sssp" else "h",
            algorithm,
        )
        text += format_series(series, title=title)
        text += "Prefer: %s\n" % ",".join(prefer)
    report_writer("fig3gh_per_iteration", text)
    # The motivating claim: the preferred engine changes across iterations
    # for at least one of the two workloads.
    distinct = {algorithm: len(set(prefer)) for algorithm, (_, prefer) in tables.items()}
    assert max(distinct.values()) >= 2
