"""Figure 7 — HyTGraph's execution path and per-iteration runtime on FK.

(a,b) which engine HyTGraph's cost model picks per iteration for PageRank
and SSSP (dense early iterations prefer ExpTM-filter, sparse tails prefer
zero-copy / compaction);
(c,d) the per-iteration runtime of ExpTM-F, Subway, EMOGI and HyTGraph.
"""

import numpy as np
from conftest import run_once

from repro.bench.workloads import build_workload
from repro.metrics.tables import format_series
from repro.transfer.base import EngineKind


def test_fig7ab_engine_mix(benchmark, report_writer, bench_scale):
    def experiment():
        mixes = {}
        for algorithm in ("pagerank", "sssp"):
            workload = build_workload("FK", algorithm, scale=bench_scale)
            result = workload.run("hytgraph")
            mixes[algorithm] = result.engine_mix()
        return mixes

    mixes = run_once(benchmark, experiment)
    text = ""
    for algorithm, mix in mixes.items():
        series = {
            engine.value: [iteration.get(engine.value, 0.0) for iteration in mix]
            for engine in (EngineKind.EXP_FILTER, EngineKind.EXP_COMPACTION, EngineKind.IMP_ZERO_COPY)
        }
        text += format_series(
            series,
            title="Figure 7(%s): engine mix per iteration (%s, FK)"
            % ("a" if algorithm == "pagerank" else "b", algorithm),
        )
    report_writer("fig7ab_engine_mix", text)

    # PageRank: early iterations dominated by ExpTM-filter, the tail by the
    # fine-grained engines (averaged over the last few iterations — the very
    # final iteration can be a single leftover partition either way).
    pagerank_mix = mixes["pagerank"]
    assert pagerank_mix[0].get(EngineKind.EXP_FILTER.value, 0.0) > 0.5
    tail = pagerank_mix[-5:]
    tail_fine_grained = np.mean(
        [
            iteration.get(EngineKind.IMP_ZERO_COPY.value, 0.0)
            + iteration.get(EngineKind.EXP_COMPACTION.value, 0.0)
            for iteration in tail
        ]
    )
    assert tail_fine_grained > 0.5
    # SSSP uses more than one engine over its lifetime.
    sssp_engines = {engine for iteration in mixes["sssp"] for engine in iteration}
    assert len(sssp_engines) >= 2


def test_fig7cd_per_iteration_runtime(benchmark, report_writer, bench_scale):
    def experiment():
        tables = {}
        for algorithm in ("pagerank", "sssp"):
            workload = build_workload("FK", algorithm, scale=bench_scale)
            series = {}
            totals = {}
            for system, label in (("exptm-f", "ExpTM-F"), ("subway", "Subway"), ("emogi", "EMOGI"), ("hytgraph", "HyTGraph")):
                result = workload.run(system)
                series[label] = result.per_iteration_times()
                totals[label] = result.total_time
            tables[algorithm] = (series, totals)
        return tables

    tables = run_once(benchmark, experiment)
    text = ""
    for algorithm, (series, totals) in tables.items():
        text += format_series(
            series,
            title="Figure 7(%s): per-iteration runtime (%s, FK)" % ("c" if algorithm == "pagerank" else "d", algorithm),
        )
        text += "totals: %s\n" % {label: round(value, 6) for label, value in totals.items()}
    report_writer("fig7cd_per_iteration", text)

    # The paper's point: HyTGraph does not win every single iteration, but
    # it achieves the minimum (or near-minimum) overall runtime.
    for algorithm, (_, totals) in tables.items():
        best = min(totals.values())
        assert totals["HyTGraph"] <= 1.25 * best
