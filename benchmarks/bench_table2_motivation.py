"""Table II — the Subway vs EMOGI flip-flop that motivates hybrid transfer.

The paper's Table II shows that neither the compaction-based Subway nor the
zero-copy-based EMOGI dominates: EMOGI wins SSSP on sk-2005 while Subway
wins PageRank on it, and the PageRank winner flips again between datasets.
This benchmark regenerates the two halves of the table on the stand-ins.
"""

from conftest import run_once

from repro.bench.workloads import build_workload
from repro.metrics.tables import format_table


def test_table2_subway_vs_emogi(benchmark, report_writer, bench_scale):
    def experiment():
        rows = []
        # Left half: SK graph, SSSP vs PageRank.
        for algorithm in ("sssp", "pagerank"):
            workload = build_workload("SK", algorithm, scale=bench_scale)
            rows.append(
                {
                    "workload": "%s on SK" % workload.algorithm,
                    "Subway (s)": workload.run("subway").total_time,
                    "EMOGI (s)": workload.run("emogi").total_time,
                }
            )
        # Right half: PageRank, SK vs UK.
        for dataset in ("SK", "UK"):
            workload = build_workload(dataset, "pagerank", scale=bench_scale)
            rows.append(
                {
                    "workload": "PR on %s" % dataset,
                    "Subway (s)": workload.run("subway").total_time,
                    "EMOGI (s)": workload.run("emogi").total_time,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    report = format_table(rows, title="Table II: Subway vs EMOGI (simulated seconds)")
    winners = {row["workload"]: ("Subway" if row["Subway (s)"] < row["EMOGI (s)"] else "EMOGI") for row in rows}
    report += "winners: %s\n" % winners
    report_writer("table2_motivation", report)
    # The headline claim: neither system wins everywhere.
    assert len(set(winners.values())) == 2, "expected a flip-flop between Subway and EMOGI"
