"""Hot-path performance harness: kernel layer + engine fast paths.

Measures the speedup delivered by the vectorised scatter-reduce kernel
layer (:mod:`repro.core.kernels`) and the partition-local frontier fast
paths in the HyTGraph engine, against a faithful reconstruction of the
seed ("pre kernel-layer") implementation:

* **Microbenchmarks** — ``scatter_add`` / ``scatter_min`` and the fused
  ``push_and_activate`` against the original ``ufunc.at`` + snapshot +
  ``np.unique`` formulations, on dense and sparse message batches, once
  per installed compute backend (numpy reference first; non-numpy rows
  also record ``vs_numpy``, their ratio over the numpy backend's time);
  plus the vectorised ``CSRGraph.edge_sources`` and
  ``partition_by_bytes`` against their seed per-vertex Python loops
  (numpy section only — they are graph utilities, not backend kernels).
* **Backend A/B** — when a non-numpy backend is active (``--backend`` or
  ``REPRO_BACKEND``), one fixed-size PageRank run through HyTGraph under
  the numpy backend and again under the active backend; per-vertex
  values are asserted bitwise identical and the speedup is recorded.
* **End-to-end** — all five vertex programs (PR, SSSP, BFS, CC, PHP) on
  generated R-MAT and uniform graphs, run through HyTGraph and two
  baseline systems (EMOGI, Subway), once with the seed hot paths
  restored (``seed_baseline``) and once with the current code.  Both
  modes must produce bitwise-identical per-vertex results — the harness
  asserts it.
* **Multi-query serving** — batched vs sequential *simulated* speedup of
  K SSSP sources through :class:`~repro.runtime.batch.QueryBatchRunner`
  on a transfer-bound 2-device workload (HyTGraph and ExpTM-F).  These
  numbers are deterministic simulation outputs, so the regression gate
  holds them to the same tolerance as the wall-clock speedups: a drop
  means the serving layer lost amortization, not that CI was slow.
* **Cache policies** — frontier-aware vs static-prefix device-memory
  caching (:mod:`repro.cache`) on a memory-constrained transfer-bound
  wavefront batch, also a deterministic simulated speedup; a drop means
  the cache subsystem lost reuse (``bench_cache_policies.py`` is the
  full version).
* **Service scheduling** — priority vs FIFO p95 point-lookup latency on
  a mixed INTERACTIVE/BULK trace through
  :class:`~repro.service.GraphService`; deterministic simulated
  latencies, so a drop means the priority scheduler stopped protecting
  the high class (``bench_service_scheduling.py`` is the full version).
* **Tracing overhead** — wall time of one mixed serve with span tracing
  enabled vs disabled (interleaved best-of-N).  Gated absolutely: the
  enabled run must stay within ``TRACING_OVERHEAD_CEILING`` (1.10x) of
  the disabled run, the zero-overhead promise of :mod:`repro.obs`.  The
  two runs' simulated makespans are asserted identical — tracing must
  never change a served number.

Results are written to ``BENCH_perf.json`` in the repository root so
future PRs can track the perf trajectory.

**Perf-regression gate.**  ``--check-against REF.json`` compares the
run's end-to-end speedups with a reference file of the same shape and
fails (exit code 1) when a system's speedup geomean drops below
``reference * (1 - tolerance)``.  Because every speedup is normalised
against the in-run seed baseline, absolute CI-runner speed cancels out;
the geomean across the five algorithms averages away the per-entry noise
of tiny smoke graphs while a real hot-path regression still drags it
down.  ``--inject-slowdown F`` multiplies the measured "after" times by
``F`` to validate that the gate actually fires.

Usage::

    python benchmarks/bench_perf_hotpaths.py            # full run (~1M edges)
    python benchmarks/bench_perf_hotpaths.py --smoke    # tiny CI smoke run
    python benchmarks/bench_perf_hotpaths.py --smoke \
        --check-against benchmarks/BENCH_perf_smoke.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

import repro.algorithms.bfs as bfs_module
import repro.algorithms.cc as cc_module
import repro.algorithms.pagerank as pagerank_module
import repro.algorithms.php as php_module
import repro.algorithms.sssp as sssp_module
from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import DeltaPageRank
from repro.algorithms.php import PHP
from repro.algorithms.sssp import SSSP
from repro.core.backends import (
    available_backends,
    get_backend,
    resolve_backend_name,
    set_active_backend,
    use_backend,
)
from repro.core.combiner import ScheduledTask, TaskCombiner
from repro.core.cost_model import CostModel, PartitionCosts
from repro.core.engine import HyTGraphEngine
from repro.core.kernels import legacy_kernels, push_and_activate, scatter_add, scatter_min
from repro.graph.generators import grid_graph, rmat_graph, uniform_random_graph
from repro.graph.partition import partition_by_bytes
from repro.bench.workloads import batch_sources
from repro.metrics.results import IterationStats
from repro.runtime.batch import QueryBatchRunner
from repro.sim.config import HardwareConfig
from repro.sim.streams import StreamTask
from repro.systems.emogi import EmogiSystem
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.hytgraph import HyTGraphSystem
from repro.systems.subway import SubwaySystem
from repro.transfer.base import EngineKind

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_perf.json"

# ----------------------------------------------------------------------
# Faithful seed (pre-PR) implementations of the replaced hot paths.
# These are verbatim copies of the seed code and exist only so the
# harness can measure "before" timings; they must not be used elsewhere.
# ----------------------------------------------------------------------


def _seed_gather_edge_indices(graph, vertices):
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    starts = graph.row_offset[vertices]
    degrees = graph.row_offset[vertices + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    repeats = np.repeat(np.arange(vertices.size), degrees)
    cumulative = np.concatenate([[0], np.cumsum(degrees)])[:-1]
    within = np.arange(total) - np.repeat(cumulative, degrees)
    edge_indices = np.repeat(starts, degrees) + within
    sources = vertices[repeats]
    return edge_indices, sources


def _seed_task_vertex_mask(self, task):
    mask = np.zeros(self.graph.num_vertices, dtype=bool)
    for index in task.partition_indices:
        partition = self.partitioning[index]
        mask[partition.vertex_start : partition.vertex_end] = True
    return mask


def _seed_execute_task(self, task, program, state, pending):
    graph = self.graph
    partition_mask = _seed_task_vertex_mask(self, task)
    first_round = np.nonzero(pending & partition_mask)[0]
    if first_round.size == 0:
        return 0
    pending[first_round] = False
    processed_edges = int(graph.out_degrees[first_round].sum())
    newly_active = program.process(graph, state, first_round)
    if newly_active.size:
        pending[newly_active] = True
    if not self.options.recompute_loaded:
        return processed_edges
    if task.engine == EngineKind.EXP_FILTER:
        loaded_mask = partition_mask
    else:
        loaded_mask = np.zeros(graph.num_vertices, dtype=bool)
        loaded_mask[first_round] = True
    second_round = np.nonzero(pending & loaded_mask)[0]
    if second_round.size:
        pending[second_round] = False
        processed_edges += int(graph.out_degrees[second_round].sum())
        newly_active = program.process(graph, state, second_round)
        if newly_active.size:
            pending[newly_active] = True
    return processed_edges


def _seed_account_transfer(self, task):
    from repro.transfer.base import TransferOutcome

    engine = self.engines[task.engine]
    partitions = [self.partitioning[index] for index in task.partition_indices]
    bytes_total = 0
    transfer_time = 0.0
    cpu_time = 0.0
    overlapped = False
    active = task.active_vertices
    for partition in partitions:
        in_partition = active[(active >= partition.vertex_start) & (active < partition.vertex_end)]
        outcome = engine.transfer(partition, in_partition)
        bytes_total += outcome.bytes_transferred
        transfer_time += outcome.transfer_time
        cpu_time += outcome.cpu_time
        overlapped = overlapped or outcome.overlapped
    return TransferOutcome(
        engine=task.engine,
        bytes_transferred=bytes_total,
        transfer_time=transfer_time,
        cpu_time=cpu_time,
        overlapped=overlapped,
    )


def _seed_run_iteration(self, iteration, program, state, pending):
    graph = self.graph
    active_mask = pending.copy()
    active_vertex_count = int(active_mask.sum())
    active_edge_count = int(graph.out_degrees[active_mask].sum())

    sinks = np.nonzero(pending & (graph.out_degrees == 0))[0]
    if sinks.size:
        pending[sinks] = False
        program.process(graph, state, sinks)

    costs = self.cost_model.estimate(active_mask)
    selection = self.selector.select(costs)
    tasks = self.combiner.combine(self.partitioning, selection, active_mask)
    tasks = self.priority.prioritize(tasks, program, state)
    generation_overhead = self.kernel_model.device_scan_time(self.partitioning.num_partitions)

    stream_tasks = []
    total_transfer_bytes = 0
    total_processed_edges = 0
    engine_task_counts = {}
    for order, task in enumerate(tasks):
        processed_edges = self._execute_task(task, program, state, pending)
        outcome = self._account_transfer(task)
        kernel_time = self.kernel_model.kernel_time(processed_edges, num_kernels=1)
        stream_tasks.append(
            StreamTask(
                name=task.label,
                engine=task.engine.value,
                cpu_time=outcome.cpu_time,
                transfer_time=outcome.transfer_time,
                kernel_time=kernel_time,
                overlapped_transfer=outcome.overlapped,
                priority=float(order),
            )
        )
        total_transfer_bytes += outcome.bytes_transferred
        total_processed_edges += processed_edges
        engine_task_counts[task.engine.value] = engine_task_counts.get(task.engine.value, 0) + 1

    timeline = self.stream_scheduler.schedule(stream_tasks)
    iteration_time = timeline.makespan + generation_overhead
    return IterationStats(
        index=iteration,
        time=iteration_time,
        active_vertices=active_vertex_count,
        active_edges=active_edge_count,
        transfer_bytes=total_transfer_bytes,
        compaction_time=timeline.busy_time("cpu"),
        transfer_time=timeline.busy_time("pcie"),
        kernel_time=timeline.busy_time("gpu"),
        processed_edges=total_processed_edges,
        engine_partitions=selection.counts(),
        engine_tasks=engine_task_counts,
    )


def _seed_combine(self, partitioning, selection, active_mask, active_ids=None):
    active_mask = np.asarray(active_mask, dtype=bool)

    def active_in(partition_index):
        partition = partitioning[partition_index]
        segment = active_mask[partition.vertex_start : partition.vertex_end]
        return np.nonzero(segment)[0] + partition.vertex_start

    def make_filter_task(partition_indices):
        vertices = np.concatenate([active_in(index) for index in partition_indices])
        return ScheduledTask(
            engine=EngineKind.EXP_FILTER,
            partition_indices=list(partition_indices),
            active_vertices=np.sort(vertices),
        )

    if not self.enabled:
        tasks = []
        for index, choice in enumerate(selection.choices):
            if choice is None:
                continue
            tasks.append(
                ScheduledTask(engine=choice, partition_indices=[index], active_vertices=active_in(index))
            )
        return tasks

    tasks = []
    filter_partitions = selection.partitions_using(EngineKind.EXP_FILTER)
    current = []
    previous_index = None
    for index in filter_partitions:
        consecutive = previous_index is not None and index == previous_index + 1
        if current and (not consecutive or len(current) >= self.combine_factor):
            tasks.append(make_filter_task(current))
            current = []
        current.append(index)
        previous_index = index
    if current:
        tasks.append(make_filter_task(current))

    for engine, label in (
        (EngineKind.EXP_COMPACTION, "ExpTM-C[combined:%d]"),
        (EngineKind.IMP_ZERO_COPY, "ImpTM-ZC[combined:%d]"),
    ):
        members = selection.partitions_using(engine)
        if members:
            vertices = np.concatenate([active_in(index) for index in members])
            tasks.append(
                ScheduledTask(
                    engine=engine,
                    partition_indices=list(members),
                    active_vertices=np.sort(vertices),
                    label=label % len(members),
                )
            )
    return tasks


def _seed_estimate(self, active_mask, active_ids=None):
    active_mask = np.asarray(active_mask, dtype=bool)
    num_partitions = self.partitioning.num_partitions
    active_vertices, active_edges = self.partitioning.active_counts(active_mask)

    filter_cost = self._filter_cost_from_edges(self._partition_edges)
    filter_cost = np.where(active_edges > 0, filter_cost, 0.0)
    compaction_cost = self._compaction_cost_from_counts(active_edges, active_vertices)
    compaction_cost = np.where(active_edges > 0, compaction_cost, 0.0)

    zero_copy_cost = np.zeros(num_partitions, dtype=np.float64)
    ids = np.nonzero(active_mask)[0]
    if ids.size:
        degrees = self.graph.out_degrees[ids]
        starts = self.graph.row_offset[ids] * self._d1
        requests = self.pcie.requests_for_vertices(degrees, starts, value_bytes=self._d1)
        partition_of = self.partitioning.partition_of_vertices(ids)
        requests_per_partition = np.bincount(partition_of, weights=requests, minlength=num_partitions)
        tlps = np.ceil(requests_per_partition / self.config.pcie_max_outstanding)
        partition_edges_safe = np.maximum(self._partition_edges, 1)
        payload_fraction = np.clip(active_edges / partition_edges_safe, 0.0, 1.0)
        gamma = self.config.zero_copy_gamma
        rtt_zc = (gamma + (1.0 - gamma) * payload_fraction) * self.config.tlp_round_trip_time
        zero_copy_cost = tlps * rtt_zc
        zero_copy_cost = np.where(active_edges > 0, zero_copy_cost, 0.0)

    return PartitionCosts(
        filter_cost=filter_cost,
        compaction_cost=compaction_cost,
        zero_copy_cost=zero_copy_cost,
        active_vertices=active_vertices,
        active_edges=active_edges,
    )


_ALGORITHM_MODULES = (sssp_module, bfs_module, cc_module, pagerank_module, php_module)


@contextmanager
def seed_baseline():
    """Restore every replaced hot path to its seed implementation.

    Inside the context, algorithm scatters run through ``ufunc.at`` +
    ``np.unique``, the engine allocates per-task ``|V|`` masks, the
    combiner re-sorts task frontiers and the cost model rescans the
    frontier bitmap — i.e. the code the seed repository shipped.
    """
    saved_engine = (
        HyTGraphEngine._run_iteration,
        HyTGraphEngine._execute_task,
        HyTGraphEngine._account_transfer,
    )
    saved_combine = TaskCombiner.combine
    saved_estimate = CostModel.estimate
    saved_gather = [module.gather_edge_indices for module in _ALGORITHM_MODULES]
    HyTGraphEngine._run_iteration = _seed_run_iteration
    HyTGraphEngine._execute_task = _seed_execute_task
    HyTGraphEngine._account_transfer = _seed_account_transfer
    TaskCombiner.combine = _seed_combine
    CostModel.estimate = _seed_estimate
    for module in _ALGORITHM_MODULES:
        module.gather_edge_indices = _seed_gather_edge_indices
    try:
        with legacy_kernels():
            yield
    finally:
        (
            HyTGraphEngine._run_iteration,
            HyTGraphEngine._execute_task,
            HyTGraphEngine._account_transfer,
        ) = saved_engine
        TaskCombiner.combine = saved_combine
        CostModel.estimate = saved_estimate
        for module, gather in zip(_ALGORITHM_MODULES, saved_gather):
            module.gather_edge_indices = gather


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------


def _best_of(repeats, fn):
    best = None
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _time_once(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _merge_best(best, key, elapsed):
    previous = best.get(key)
    best[key] = elapsed if previous is None else min(previous, elapsed)


#: Half-width of the parity band for microbench ratios.  Two sides of a
#: row whose best-of times land within this fraction of each other are
#: statistically indistinguishable under this harness's noise floor — for
#: the numpy-backend scatter rows on indexed-ufunc NumPy builds they are
#: *literally the same code path* (both delegate to ``ufunc.at``), so any
#: deviation from 1.0 is a measurement coin-flip, not a speedup or a
#: regression.  Ratios inside the band snap to exactly 1.0 (symmetrically:
#: 1.02 snaps down just as 0.98 snaps up); the raw ``before_s``/``after_s``
#: timings are preserved unsnapped in the payload.
MICRO_PARITY_BAND = 0.03


def _snap_parity(ratio):
    if ratio is not None and abs(ratio - 1.0) <= MICRO_PARITY_BAND:
        return 1.0
    return ratio


# ----------------------------------------------------------------------
# Microbenchmarks
# ----------------------------------------------------------------------


def run_microbench(num_vertices, repeats, backend_names):
    """Kernel rows for every backend in ``backend_names`` (numpy first).

    ``before_s`` is always the seed formulation — the public kernel API
    with the legacy kernels restored (``ufunc.at`` scatters, snapshot +
    ``np.unique`` pushes) — measured once per batch and shared by every
    backend's rows so their speedups are directly comparable.  Non-numpy
    rows additionally record ``vs_numpy``: the numpy backend's time over
    this backend's time on the identical batch (>1 = faster than numpy).
    All backends are warmed by ``get_backend`` before any timing, so JIT
    compilation never lands in a measured region.

    Measurements are *interleaved*: every best-of round times the seed
    formulation and each backend back to back, so machine-level drift
    across the run hits all candidates equally instead of biasing
    whichever contiguous block happened to land in a slow spell.
    Ratios within :data:`MICRO_PARITY_BAND` of 1.0 are reported as exact
    parity — see the constant's docstring for why.
    """
    assert backend_names[0] == "numpy", "numpy reference must be benched first"
    rng = np.random.default_rng(42)
    backends = {name: get_backend(name) for name in backend_names}
    results = {name: {} for name in backend_names}

    def kernel_ops(impl, base, destinations, values):
        return {
            "scatter_add": lambda: impl.scatter_add(base.copy(), destinations, values),
            "scatter_min": lambda: impl.scatter_min(base.copy(), destinations, values),
            "push_and_activate_min": lambda: impl.push_and_activate(
                base.copy(), destinations, values, combine="min"
            ),
            "push_and_activate_add": lambda: impl.push_and_activate(
                base.copy(), destinations, values, combine="add", threshold=0.5
            ),
        }

    class _FacadeOps:
        scatter_add = staticmethod(scatter_add)
        scatter_min = staticmethod(scatter_min)
        push_and_activate = staticmethod(push_and_activate)

    for label, factor in (("dense", 8), ("sparse", 0.02)):
        num_messages = int(num_vertices * factor)
        destinations = rng.integers(0, num_vertices, size=num_messages)
        values = rng.random(num_messages) * 1e-3
        base = rng.random(num_vertices)

        seed_ops = kernel_ops(_FacadeOps, base, destinations, values)
        backend_ops = {
            name: kernel_ops(backends[name], base, destinations, values)
            for name in backend_names
        }

        # Each measurement is one untimed warm call followed by three
        # consecutive timed calls (min taken): the warm call soaks up
        # whatever cache/allocator state the previous candidate left
        # behind, and the consecutive timed calls ride out the recovery
        # tail a heavy predecessor still causes after that.  Candidates
        # are grouped by *op* — seed and every backend for the same op
        # run back to back — so all sides of a row see the same machine
        # state and the mins compare like with like.
        def measure(best, op_name, fn):
            warm = _time_once(fn)
            # Cheap ops get more timed calls per round: their rows sit
            # near absolute floors (e.g. numpy scatters vs seed at ~1.0x)
            # where per-call jitter decides the verdict, and extra calls
            # cost microseconds.
            for _ in range(3 if warm > 0.005 else 9):
                _merge_best(best, op_name, _time_once(fn))

        seed_best: dict = {}
        after_best: dict = {name: {} for name in backend_names}
        for round_index in range(max(1, repeats)):
            for op_name, seed_fn in seed_ops.items():
                group = [("seed", seed_fn)]
                group.extend((name, backend_ops[name][op_name]) for name in backend_names)
                # Rotate within the group each round: even adjacent slots
                # carry small systematic biases (timer interrupts, cache
                # residue), so every candidate must sample every slot for
                # the mins to be comparable.
                offset = round_index % len(group)
                for owner, fn in group[offset:] + group[:offset]:
                    if owner == "seed":
                        with legacy_kernels():
                            measure(seed_best, op_name, fn)
                    else:
                        measure(after_best[owner], op_name, fn)

        for name in backend_names:
            for op_name, before in seed_best.items():
                after = after_best[name][op_name]
                row = {
                    "before_s": before,
                    "after_s": after,
                    "speedup": _snap_parity(before / after) if after else None,
                }
                if name != "numpy":
                    numpy_after = after_best["numpy"][op_name]
                    row["vs_numpy"] = _snap_parity(numpy_after / after) if after else None
                results[name]["%s_%s" % (op_name, label)] = row

    graph = rmat_graph(num_vertices, num_vertices * 8, seed=3)
    results["numpy"].update(_graph_utility_rows(graph, repeats))
    return results


def _graph_utility_rows(graph, repeats):
    results = {}

    def seed_edge_sources():
        sources = np.empty(graph.num_edges, dtype=np.int64)
        for vertex in range(graph.num_vertices):
            start, end = graph.edge_slice(vertex)
            sources[start:end] = vertex
        return sources

    def new_edge_sources():
        return np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.out_degrees)

    before, seed_sources = _best_of(1, seed_edge_sources)
    after, new_sources = _best_of(repeats, new_edge_sources)
    assert np.array_equal(seed_sources, new_sources)
    results["edge_sources"] = {"before_s": before, "after_s": after, "speedup": before / after if after else None}

    def seed_partition_by_bytes(target_bytes):
        budget_edges = max(1, target_bytes // graph.edge_bytes_per_edge)
        boundaries = [0]
        current_edges = 0
        for vertex in range(graph.num_vertices):
            degree = int(graph.out_degrees[vertex])
            if current_edges > 0 and current_edges + degree > budget_edges:
                boundaries.append(vertex)
                current_edges = 0
            current_edges += degree
        boundaries.append(graph.num_vertices)
        return boundaries

    target = max(graph.edge_bytes_per_edge, graph.edge_data_bytes // 64)
    before, _ = _best_of(1, lambda: seed_partition_by_bytes(target))
    after, _ = _best_of(repeats, lambda: partition_by_bytes(graph, target))
    results["partition_by_bytes"] = {"before_s": before, "after_s": after, "speedup": before / after if after else None}
    return results


# ----------------------------------------------------------------------
# End-to-end runs
# ----------------------------------------------------------------------


def _build_workloads(num_vertices, num_edges, seed):
    plain = rmat_graph(num_vertices, num_edges, seed=seed, name="rmat")
    weighted = rmat_graph(num_vertices, num_edges, seed=seed, weighted=True, name="rmat-w")
    uniform = uniform_random_graph(num_vertices, num_edges, seed=seed, name="uniform")
    return [
        ("PR", plain, DeltaPageRank(), None),
        ("SSSP", weighted, SSSP(), 0),
        ("BFS", plain, BFS(), 0),
        ("CC", uniform, ConnectedComponents(), None),
        ("PHP", plain, PHP(), 0),
    ]


def _make_systems(graph):
    return [
        HyTGraphSystem(graph),
        EmogiSystem(graph),
        SubwaySystem(graph),
    ]


def run_end_to_end(num_vertices, num_edges, seed, repeats, inject_slowdown=1.0):
    results = {}
    for algorithm, graph, program, source in _build_workloads(num_vertices, num_edges, seed):
        per_system = {}
        for system in _make_systems(graph):
            kwargs = {} if source is None else {"source": source}
            with seed_baseline():
                before, result_before = _best_of(repeats, lambda: system.run(program, **kwargs))
            after, result_after = _best_of(repeats, lambda: system.run(program, **kwargs))
            after *= inject_slowdown
            identical = bool(
                np.array_equal(np.asarray(result_before.values), np.asarray(result_after.values))
            )
            per_system[system.name] = {
                "before_s": before,
                "after_s": after,
                "speedup": before / after if after else None,
                "identical_values": identical,
                "iterations": len(result_after.iterations),
                "graph": graph.name,
            }
            print(
                "  %-4s %-9s before %8.3fs  after %8.3fs  speedup %5.2fx  identical=%s"
                % (algorithm, system.name, before, after, before / after, identical)
            )
            if not identical:
                raise AssertionError(
                    "%s on %s: seed and kernel-layer runs disagree" % (algorithm, system.name)
                )
        results[algorithm] = per_system
    return results


# ----------------------------------------------------------------------
# Backend A/B: numpy reference vs the active backend, end to end
# ----------------------------------------------------------------------

#: Fixed A/B workload so backend speedups are comparable across runs and
#: machines regardless of --smoke / --vertices (kernel work must dominate
#: enough for the comparison to say something about the kernel layer).
BACKEND_E2E_VERTICES = 1 << 15
BACKEND_E2E_EDGES = 1 << 18


def run_backend_e2e(backend_name, repeats):
    """One PageRank through HyTGraph: numpy backend vs ``backend_name``.

    Skipped (with a note) when the active backend *is* numpy — the A/B
    would compare numpy with itself.  Both runs must produce bitwise
    identical per-vertex values; the harness asserts it and records the
    verdict so the regression gate can fail on any divergence.
    """
    if backend_name == "numpy":
        return {"backend": "numpy", "note": "active backend is the numpy reference; no A/B run"}
    graph = rmat_graph(BACKEND_E2E_VERTICES, BACKEND_E2E_EDGES, seed=9, name="rmat-backend")
    program = DeltaPageRank()
    repeats = max(repeats, 3)

    with use_backend("numpy"):
        system = HyTGraphSystem(graph)
        numpy_s, numpy_result = _best_of(repeats, lambda: system.run(program))
    with use_backend(backend_name):
        system = HyTGraphSystem(graph)
        backend_s, backend_result = _best_of(repeats, lambda: system.run(program))

    identical = bool(
        np.array_equal(
            np.asarray(numpy_result.values).view(np.int64),
            np.asarray(backend_result.values).view(np.int64),
        )
    )
    entry = {
        "backend": backend_name,
        "algorithm": "PR",
        "vertices": BACKEND_E2E_VERTICES,
        "edges": BACKEND_E2E_EDGES,
        "numpy_s": numpy_s,
        "backend_s": backend_s,
        "speedup": numpy_s / backend_s if backend_s else None,
        "identical_values": identical,
    }
    print(
        "  PR HyTGraph numpy %8.3fs  %s %8.3fs  speedup %5.2fx  identical=%s"
        % (numpy_s, backend_name, backend_s, entry["speedup"], identical)
    )
    if not identical:
        raise AssertionError(
            "backend %r diverged bitwise from the numpy reference on PageRank" % backend_name
        )
    return entry


# ----------------------------------------------------------------------
# Multi-query serving throughput
# ----------------------------------------------------------------------


def run_batch_bench(num_vertices, num_edges, batch_size, devices=2):
    """Batched vs sequential simulated speedup on a transfer-bound workload.

    Unlike the wall-clock sections, the measured quantity here is
    *simulated* makespan — deterministic for a given graph/config — so
    any movement between runs is a real behaviour change in the serving
    layer (lost residency warming, broken transfer dedup, scheduling
    drift).  ``benchmarks/bench_batch_queries.py`` is the full version.
    """
    graph = rmat_graph(num_vertices, num_edges, seed=5, weighted=True, name="rmat-batch")
    config = HardwareConfig(
        gpu_memory_bytes=graph.edge_data_bytes // 2, pcie_bandwidth=1e9
    ).with_devices(devices)
    sources = batch_sources(graph, batch_size)
    program = SSSP()

    results = {}
    for system_cls in (HyTGraphSystem, ExpTMFilterSystem):
        system = system_cls(graph, config=config)
        sequential = [system.run(program, source=source) for source in sources]
        batch = QueryBatchRunner(system).run([(program, source) for source in sources])
        for alone, batched in zip(sequential, batch.results):
            if not np.array_equal(np.asarray(alone.values), np.asarray(batched.values)):
                raise AssertionError(
                    "%s: batched query values diverged from sequential" % system.name
                )
        stats = batch.amortization_vs(sequential)
        results[system.name] = {
            "queries": batch_size,
            "devices": devices,
            "speedup": stats["speedup"],
            "sequential_s": stats["sequential_time"],
            "batched_s": stats["batched_time"],
            "queries_per_s": batch.queries_per_second,
            "transfer_bytes_saved": stats["transfer_bytes_saved"],
        }
        print(
            "  %-9s K=%-3d sequential %8.6fs  batched %8.6fs  speedup %5.2fx"
            % (system.name, batch_size, stats["sequential_time"], stats["batched_time"], stats["speedup"])
        )
    return results


# ----------------------------------------------------------------------
# Device-memory cache policies
# ----------------------------------------------------------------------


def run_cache_bench(rows, cols, batch_size, devices=2):
    """Frontier-aware vs static-prefix caching, as a simulated speedup.

    Like the serving section, the measured quantity is deterministic
    simulated makespan, so the regression gate holds it to the shared
    tolerance: a drop means the cache subsystem lost reuse (broken
    admission, over-eager eviction, lost cross-super-iteration
    retention), not that CI was slow.  The workload is the
    memory-constrained transfer-bound wavefront batch of
    ``benchmarks/bench_cache_policies.py`` at a smaller scale, on the
    system where caching directly replaces traffic (ExpTM-F).
    """
    graph = grid_graph(rows, cols, weighted=True, seed=3)
    config = HardwareConfig(
        gpu_memory_bytes=graph.edge_data_bytes // 6, pcie_bandwidth=5e8
    ).with_devices(devices)
    queries = [(SSSP(), source) for source in batch_sources(graph, batch_size, seed=11)]

    results = {}
    makespans = {}
    for policy in ("static-prefix", "frontier-aware"):
        system = ExpTMFilterSystem(graph, config=config, cache_policy=policy)
        batch = QueryBatchRunner(system).run(queries)
        makespans[policy] = batch.makespan
        results[policy] = {
            "makespan_s": batch.makespan,
            "transfer_bytes": batch.total_transfer_bytes,
            "cache_hit_bytes": batch.cache_hit_bytes,
        }
    speedup = makespans["static-prefix"] / makespans["frontier-aware"]
    results["speedup"] = speedup
    print(
        "  ExpTM-F  static %8.6fs  frontier-aware %8.6fs  speedup %5.2fx"
        % (makespans["static-prefix"], makespans["frontier-aware"], speedup)
    )
    return {"ExpTM-F": results}


# ----------------------------------------------------------------------
# Service scheduling (priority vs FIFO p95 point-lookup latency)
# ----------------------------------------------------------------------


def run_service_bench(num_vertices, num_edges, point_lookups, analytical):
    """Priority-vs-FIFO p95 point-lookup latency ratio, as a speedup.

    The measured quantity is deterministic simulated latency, so the
    regression gate holds it to the shared tolerance: a drop means the
    priority scheduler stopped protecting INTERACTIVE requests from BULK
    analytics (lost task ordering, broken latency accounting), not that
    CI was slow.  ``benchmarks/bench_service_scheduling.py`` is the full
    version.
    """
    from repro.service import GraphService, Priority, ServiceConfig, synthetic_mixed_trace

    graph = rmat_graph(num_vertices, num_edges, seed=5, weighted=True, name="rmat-serve")
    config = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2, pcie_bandwidth=1e9)
    requests = synthetic_mixed_trace(graph, point_lookups, analytical, seed=11)

    results = {}
    p95 = {}
    for scheduling in ("fifo", "priority"):
        service = GraphService(
            ServiceConfig(system="hytgraph", scheduling=scheduling),
            system=HyTGraphSystem(graph, config=config),
        )
        service.submit_many(requests)
        service.drain()
        stats = service.stats()
        p95[scheduling] = stats.latency_percentile(Priority.INTERACTIVE, 95)
        results[scheduling] = {
            "point_p95_s": p95[scheduling],
            "bulk_p95_s": stats.latency_percentile(Priority.BULK, 95),
            "makespan_s": stats.makespan_s,
        }
    speedup = p95["fifo"] / p95["priority"]
    results["speedup"] = speedup
    print(
        "  HyTGraph  fifo p95 %8.6fs  priority p95 %8.6fs  speedup %5.2fx"
        % (p95["fifo"], p95["priority"], speedup)
    )
    return {"HyTGraph": results}


# ----------------------------------------------------------------------
# Tracing overhead (the zero-overhead promise of repro.obs)
# ----------------------------------------------------------------------

#: The traced serve's best-of wall time may exceed the untraced one by at
#: most this factor — an absolute ceiling on the *current* payload, no
#: reference rows needed (older references predate the tracing section).
TRACING_OVERHEAD_CEILING = 1.10


def run_tracing_bench(num_vertices, num_edges, point_lookups, analytical, repeats):
    """Wall time of one mixed serve, tracing enabled vs disabled.

    Both sides build a fresh service and serve the identical request mix;
    rounds are interleaved (disabled/enabled back to back, order rotated)
    so machine drift hits both equally.  The simulated makespans must be
    identical — tracing is instrumentation, never arithmetic — and the
    harness asserts it before reporting the overhead ratio.
    """
    from repro.service import GraphService, ServiceConfig, synthetic_mixed_trace

    graph = rmat_graph(num_vertices, num_edges, seed=5, weighted=True, name="rmat-trace")
    config = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2, pcie_bandwidth=1e9)
    requests = synthetic_mixed_trace(graph, point_lookups, analytical, seed=11)

    makespans = {}

    def serve(tracing):
        def run():
            service = GraphService(
                ServiceConfig(system="hytgraph", tracing=tracing),
                system=HyTGraphSystem(graph, config=config),
            )
            service.submit_many(requests)
            service.drain()
            makespans[tracing] = service.stats().makespan_s
            return service

        return run

    best = {}
    candidates = [(False, serve(False)), (True, serve(True))]
    for round_index in range(max(repeats, 5)):
        offset = round_index % len(candidates)
        for tracing, fn in candidates[offset:] + candidates[:offset]:
            fn()  # warm call: soak up allocator/cache state
            _merge_best(best, tracing, _time_once(fn))

    if makespans[False] != makespans[True]:
        raise AssertionError(
            "tracing changed the simulated makespan: %r (off) vs %r (on)"
            % (makespans[False], makespans[True])
        )
    ratio = best[True] / best[False] if best[False] else None
    entry = {
        "queries": point_lookups + analytical,
        "disabled_s": best[False],
        "enabled_s": best[True],
        "overhead_ratio": ratio,
        "makespan_s": makespans[False],
        "identical_makespan": True,
    }
    print(
        "  HyTGraph  untraced %8.6fs  traced %8.6fs  overhead %.3fx (ceiling %.2fx)"
        % (best[False], best[True], ratio, TRACING_OVERHEAD_CEILING)
    )
    return {"HyTGraph": entry}


# ----------------------------------------------------------------------
# Perf-regression gate
# ----------------------------------------------------------------------


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


#: The numba backend's JIT loops must beat numpy by at least this factor
#: on the dense push_and_activate microbenches (the rows the fused-kernel
#: layer was built for); gated absolutely whenever numba rows are present.
NUMBA_DENSE_PUSH_FLOOR = 2.0


def check_regressions(current, reference, tolerance):
    """Compare end-to-end speedups against a reference payload.

    Returns the list of failure strings (empty = gate passes).  The gated
    quantity is each system's speedup **geomean across algorithms** — a
    dimensionless, in-run-normalised number, so a slow CI runner shifts
    both sides equally and only genuine hot-path regressions fire the
    gate.  Per-entry smoke speedups on 10k-edge graphs jitter by up to
    ~30%, which is why individual entries are reported but not gated.
    """
    current_by_system = {}
    reference_by_system = {}
    for algorithm, systems in current.get("end_to_end", {}).items():
        for system_name, entry in systems.items():
            ref_entry = reference.get("end_to_end", {}).get(algorithm, {}).get(system_name)
            if not ref_entry or not entry.get("speedup") or not ref_entry.get("speedup"):
                continue
            current_by_system.setdefault(system_name, []).append(entry["speedup"])
            reference_by_system.setdefault(system_name, []).append(ref_entry["speedup"])
    if not current_by_system:
        return ["no comparable end-to-end entries between run and reference"]

    failures = []
    print("== perf-regression gate (tolerance %.0f%%) ==" % (tolerance * 100))
    for system_name in sorted(current_by_system):
        current_geomean = _geomean(current_by_system[system_name])
        reference_geomean = _geomean(reference_by_system[system_name])
        floor = reference_geomean * (1.0 - tolerance)
        ok = current_geomean >= floor
        print(
            "  %-9s speedup geomean %.2fx (reference %.2fx, floor %.2fx) %s"
            % (system_name, current_geomean, reference_geomean, floor, "ok" if ok else "REGRESSION")
        )
        if not ok:
            failures.append(
                "%s: speedup geomean %.2fx fell below %.2fx (reference %.2fx - %.0f%%)"
                % (system_name, current_geomean, floor, reference_geomean, tolerance * 100)
            )

    # Multi-query serving throughput: deterministic simulated speedups,
    # held to the same tolerance.
    for system_name in sorted(current.get("batch", {})):
        entry = current["batch"][system_name]
        ref_entry = reference.get("batch", {}).get(system_name)
        if not ref_entry or not entry.get("speedup") or not ref_entry.get("speedup"):
            continue
        floor = ref_entry["speedup"] * (1.0 - tolerance)
        ok = entry["speedup"] >= floor
        print(
            "  %-9s batched speedup %.2fx (reference %.2fx, floor %.2fx) %s"
            % (system_name, entry["speedup"], ref_entry["speedup"], floor, "ok" if ok else "REGRESSION")
        )
        if not ok:
            failures.append(
                "%s: batched serving speedup %.2fx fell below %.2fx (reference %.2fx - %.0f%%)"
                % (system_name, entry["speedup"], floor, ref_entry["speedup"], tolerance * 100)
            )

    # Cache-policy speedups: also deterministic simulated numbers; a
    # drop means the cache subsystem lost reuse.
    for system_name in sorted(current.get("cache", {})):
        entry = current["cache"][system_name]
        ref_entry = reference.get("cache", {}).get(system_name)
        if not ref_entry or not entry.get("speedup") or not ref_entry.get("speedup"):
            continue
        floor = ref_entry["speedup"] * (1.0 - tolerance)
        ok = entry["speedup"] >= floor
        print(
            "  %-9s cache-policy speedup %.2fx (reference %.2fx, floor %.2fx) %s"
            % (system_name, entry["speedup"], ref_entry["speedup"], floor, "ok" if ok else "REGRESSION")
        )
        if not ok:
            failures.append(
                "%s: cache-policy speedup %.2fx fell below %.2fx (reference %.2fx - %.0f%%)"
                % (system_name, entry["speedup"], floor, ref_entry["speedup"], tolerance * 100)
            )

    # Service-scheduling p95 speedups: deterministic simulated latency
    # ratios; a drop means priority scheduling lost its latency shield.
    for system_name in sorted(current.get("service", {})):
        entry = current["service"][system_name]
        ref_entry = reference.get("service", {}).get(system_name)
        if not ref_entry or not entry.get("speedup") or not ref_entry.get("speedup"):
            continue
        floor = ref_entry["speedup"] * (1.0 - tolerance)
        ok = entry["speedup"] >= floor
        print(
            "  %-9s service p95 speedup %.2fx (reference %.2fx, floor %.2fx) %s"
            % (system_name, entry["speedup"], ref_entry["speedup"], floor, "ok" if ok else "REGRESSION")
        )
        if not ok:
            failures.append(
                "%s: service p95 speedup %.2fx fell below %.2fx (reference %.2fx - %.0f%%)"
                % (system_name, entry["speedup"], floor, ref_entry["speedup"], tolerance * 100)
            )

    # Backend gates — absolute thresholds on the current payload, no
    # reference rows needed.  The numba backend must beat the numpy
    # reference on the dense fused-push rows (the kernels it exists
    # for), and any backend A/B must stay bitwise identical and, for
    # numba, not lose end to end.
    numba_rows = current.get("microbench", {}).get("numba", {})
    for row_name in sorted(numba_rows):
        if not (row_name.startswith("push_and_activate") and row_name.endswith("_dense")):
            continue
        ratio = numba_rows[row_name].get("vs_numpy")
        ok = ratio is not None and ratio >= NUMBA_DENSE_PUSH_FLOOR
        print(
            "  numba %-28s vs numpy %5.2fx (floor %.1fx) %s"
            % (row_name, ratio or 0.0, NUMBA_DENSE_PUSH_FLOOR, "ok" if ok else "REGRESSION")
        )
        if not ok:
            failures.append(
                "numba %s: %.2fx vs numpy fell below the %.1fx floor"
                % (row_name, ratio or 0.0, NUMBA_DENSE_PUSH_FLOOR)
            )

    # Tracing overhead — absolute ceiling on the current payload (the
    # reference may predate the tracing section; tracing-off is the
    # baseline measured in the same run, so no reference is needed).
    for system_name in sorted(current.get("tracing", {})):
        entry = current["tracing"][system_name]
        ratio = entry.get("overhead_ratio")
        if ratio is None:
            continue
        ok = ratio <= TRACING_OVERHEAD_CEILING
        print(
            "  %-9s tracing overhead %.3fx (ceiling %.2fx) %s"
            % (system_name, ratio, TRACING_OVERHEAD_CEILING, "ok" if ok else "REGRESSION")
        )
        if not ok:
            failures.append(
                "%s: tracing overhead %.3fx exceeded the %.2fx ceiling"
                % (system_name, ratio, TRACING_OVERHEAD_CEILING)
            )

    backend_e2e = current.get("backend_e2e") or {}
    if backend_e2e.get("speedup") is not None:
        name = backend_e2e.get("backend")
        if not backend_e2e.get("identical_values"):
            failures.append("backend %s: end-to-end values diverged from the numpy reference" % name)
        speedup = backend_e2e["speedup"]
        ok = name != "numba" or speedup >= 1.0
        print(
            "  %-9s end-to-end PR speedup %.2fx vs numpy %s"
            % (name, speedup, "ok" if ok else "REGRESSION")
        )
        if not ok:
            failures.append(
                "backend %s: end-to-end PageRank speedup %.2fx lost to the numpy reference"
                % (name, speedup)
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--edges", type=int, default=1_000_000, help="target edge count of the generated graphs")
    parser.add_argument("--vertices", type=int, default=1 << 17, help="vertex count of the generated graphs")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument("--repeats", type=int, default=2, help="best-of repetitions per measurement")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUTPUT, help="output JSON path")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="compute backend to activate for the whole run (numpy, numba, array-api or auto; "
        "default: the REPRO_BACKEND environment override, numpy otherwise)",
    )
    parser.add_argument(
        "--micro-vertices",
        type=int,
        default=None,
        metavar="N",
        help="vertex count for the kernel microbenchmarks (default: min(--vertices, 2^17))",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI run: 2k vertices / 10k edges, single repetition",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        default=None,
        metavar="REF.json",
        help="fail (exit 1) when end-to-end speedups regress beyond the tolerance vs this reference",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup drop before the gate fails (default 0.25)",
    )
    parser.add_argument(
        "--inject-slowdown",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="multiply measured current-code times by FACTOR (validates that the gate fires)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Shrink to CI scale, but let explicit --vertices/--edges win.
        if args.vertices == parser.get_default("vertices"):
            args.vertices = 2_000
        if args.edges == parser.get_default("edges"):
            args.edges = 10_000
        args.repeats = 1
    # Microbench size is decoupled from the smoke graph size: the kernel
    # rows gate at absolute floors, so they need batches large enough
    # that kernel work dominates call overhead even in --smoke mode.
    micro_vertices = args.micro_vertices or (
        1 << 16 if args.smoke else min(args.vertices, 1 << 17)
    )

    # Activate the requested backend for the whole run (raises up front,
    # naming the installed backends, on an unknown/uninstalled name).
    backend_name = resolve_backend_name(args.backend)
    set_active_backend(backend_name)
    # Microbench the numpy reference first, then every other installed
    # backend; kernel arrays are tiny, so the extra rows are near-free.
    micro_backends = ["numpy"] + [n for n in available_backends() if n != "numpy"]
    # Best-of over at least 5 rounds (x3 timed calls each): micro rows
    # gate at absolute floors (numpy >= seed, numba >= 2x numpy), so they
    # get extra noise control even in --smoke mode where everything else
    # runs once.
    micro_repeats = max(args.repeats, 5)

    print(
        "== microbenchmarks (|V| = %d, backends: %s) =="
        % (micro_vertices, ", ".join(micro_backends))
    )
    microbench = run_microbench(micro_vertices, micro_repeats, micro_backends)
    for name in micro_backends:
        for row_name, entry in microbench[name].items():
            suffix = "  vs numpy %5.2fx" % entry["vs_numpy"] if "vs_numpy" in entry else ""
            print(
                "  %-9s %-26s before %8.5fs  after %8.5fs  speedup %6.1fx%s"
                % (name, row_name, entry["before_s"], entry["after_s"], entry["speedup"], suffix)
            )

    print("== backend A/B (active backend: %s) ==" % backend_name)
    backend_e2e = run_backend_e2e(backend_name, args.repeats)

    print("== end-to-end (|V| = %d, |E| ~ %d) ==" % (args.vertices, args.edges))
    end_to_end = run_end_to_end(
        args.vertices, args.edges, args.seed, args.repeats, inject_slowdown=args.inject_slowdown
    )

    if args.smoke:
        batch_vertices, batch_edges, batch_size = 1_000, 8_000, 8
    else:
        batch_vertices, batch_edges, batch_size = 4_000, 40_000, 16
    print("== multi-query serving (|V| = %d, K = %d, 2 devices) ==" % (batch_vertices, batch_size))
    batch = run_batch_bench(batch_vertices, batch_edges, batch_size)

    if args.smoke:
        cache_rows, cache_cols, cache_batch = 40, 30, 4
    else:
        cache_rows, cache_cols, cache_batch = 100, 60, 8
    print("== cache policies (grid %dx%d, K = %d, 2 devices) ==" % (cache_rows, cache_cols, cache_batch))
    cache = run_cache_bench(cache_rows, cache_cols, cache_batch)

    if args.smoke:
        serve_vertices, serve_edges, serve_lookups, serve_analytical = 1_000, 8_000, 6, 4
    else:
        serve_vertices, serve_edges, serve_lookups, serve_analytical = 2_000, 20_000, 12, 8
    print(
        "== service scheduling (|V| = %d, %d lookups + %d analytical) =="
        % (serve_vertices, serve_lookups, serve_analytical)
    )
    service = run_service_bench(serve_vertices, serve_edges, serve_lookups, serve_analytical)

    print(
        "== tracing overhead (|V| = %d, %d lookups + %d analytical) =="
        % (serve_vertices, serve_lookups, serve_analytical)
    )
    tracing = run_tracing_bench(
        serve_vertices, serve_edges, serve_lookups, serve_analytical, args.repeats
    )

    payload = {
        "meta": {
            "harness": "bench_perf_hotpaths",
            "numpy": np.__version__,
            "python": platform.python_version(),
            "vertices": args.vertices,
            "edges": args.edges,
            "seed": args.seed,
            "repeats": args.repeats,
            "smoke": bool(args.smoke),
            "backend": backend_name,
            "backends_available": list(available_backends()),
        },
        "microbench": microbench,
        "backend_e2e": backend_e2e,
        "end_to_end": end_to_end,
        "batch": batch,
        "cache": cache,
        "service": service,
        "tracing": tracing,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s" % args.out)

    hytgraph_pr = end_to_end["PR"]["HyTGraph"]["speedup"]
    hytgraph_sssp = end_to_end["SSSP"]["HyTGraph"]["speedup"]
    print(
        "HyTGraph end-to-end speedups: PR %.2fx, SSSP %.2fx (target >= 3x on ~1M-edge graphs)"
        % (hytgraph_pr, hytgraph_sssp)
    )

    if args.check_against is not None:
        reference = json.loads(args.check_against.read_text())
        failures = check_regressions(payload, reference, args.tolerance)
        if failures:
            for failure in failures:
                print("FAIL: %s" % failure)
            raise SystemExit(1)
        print("perf-regression gate passed (reference: %s)" % args.check_against)
    return payload


if __name__ == "__main__":
    main()
