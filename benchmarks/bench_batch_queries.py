"""Concurrent multi-query serving: batched vs sequential execution.

Serves K ∈ {1, 4, 16} SSSP sources (top out-degree, distinct) on the
transfer-bound multi-GPU workload — PCIe throttled far below kernel
throughput, per-device memory half the edge data so two devices make the
graph fully shard-resident — and reports, per system, the speedup of one
:class:`~repro.runtime.batch.QueryBatchRunner` batch over serving the
same queries back to back on a cold session each.

Expected shape:

* **HyTGraph** gains most: the shard-residency first-touch copies are
  warmed once per *batch* instead of once per query, and remaining
  whole-partition filter transfers are deduplicated across queries, so
  queries 2..K run nearly transfer-free.  The acceptance bar (asserted
  here) is ≥ 2x at K = 16.
* **ExpTM-F** gains from the same whole-partition dedup, without the
  residency head start.
* **EMOGI** reuses nothing (on-demand zero-copy reads leave nothing on
  the device to share) and **Subway** ships query-specific compacted
  subgraphs — both gain only the co-scheduling overlap, so they stay
  close to 1x.  The spread is the transfer-centric argument of the
  paper, extended from one traversal to a workload of them.

Everything is simulated time, so the numbers are deterministic.

Usage::

    python benchmarks/bench_batch_queries.py
    python benchmarks/bench_batch_queries.py --devices 1 --batch-sizes 1 4
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.algorithms.sssp import SSSP
from repro.bench.workloads import batch_sources
from repro.graph.generators import rmat_graph
from repro.metrics.tables import format_table
from repro.runtime.batch import QueryBatchRunner
from repro.sim.config import HardwareConfig
from repro.systems.emogi import EmogiSystem
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.hytgraph import HyTGraphSystem
from repro.systems.subway import SubwaySystem

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SYSTEMS = [HyTGraphSystem, ExpTMFilterSystem, EmogiSystem, SubwaySystem]
DEFAULT_BATCH_SIZES = [1, 4, 16]

# The K=16 HyTGraph acceptance bar: batching must at least halve the
# serving time on the transfer-bound multi-GPU workload.
HYTGRAPH_SPEEDUP_FLOOR = 2.0


def build_platform(args):
    graph = rmat_graph(args.vertices, args.edges, seed=5, weighted=True, name="rmat-batch")
    config = HardwareConfig(
        gpu_memory_bytes=graph.edge_data_bytes // 2,
        pcie_bandwidth=args.pcie_bandwidth,
    ).with_devices(args.devices)
    return graph, config


def run_cell(system_cls, graph, config, sources):
    """One (system, K) cell: sequential baseline then the batch."""
    program = SSSP()
    system = system_cls(graph, config=config)
    sequential = [system.run(program, source=source) for source in sources]
    batch = QueryBatchRunner(system).run([(program, source) for source in sources])
    for alone, batched in zip(sequential, batch.results):
        if not np.array_equal(np.asarray(alone.values), np.asarray(batched.values)):
            raise AssertionError(
                "%s: batched query values diverged from the sequential run" % system_cls.name
            )
    stats = batch.amortization_vs(sequential)
    return {
        "queries": len(sources),
        "sequential_s": stats["sequential_time"],
        "batched_s": stats["batched_time"],
        "speedup": stats["speedup"],
        "sequential_transfer_bytes": stats["sequential_transfer_bytes"],
        "batched_transfer_bytes": stats["batched_transfer_bytes"],
        "amortized_bytes": batch.amortized_bytes,
        "queries_per_s": batch.queries_per_second,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--vertices", type=int, default=2000)
    parser.add_argument("--edges", type=int, default=20000)
    parser.add_argument("--devices", type=int, default=2)
    parser.add_argument("--pcie-bandwidth", type=float, default=1e9,
                        help="throttled host-GPU bandwidth (transfer-bound regime)")
    parser.add_argument("--batch-sizes", type=int, nargs="+", default=DEFAULT_BATCH_SIZES)
    parser.add_argument("--out", type=Path, default=RESULTS_DIR / "batch_queries.json")
    args = parser.parse_args(argv)

    graph, config = build_platform(args)
    sources_all = batch_sources(graph, max(args.batch_sizes))

    cells = {}
    rows = []
    for batch_size in args.batch_sizes:
        sources = sources_all[:batch_size]
        row = {"K": batch_size}
        for system_cls in SYSTEMS:
            cell = run_cell(system_cls, graph, config, sources)
            cells["%s/K%d" % (system_cls.name, batch_size)] = cell
            row[system_cls.name] = round(cell["speedup"], 2)
        rows.append(row)

    title = "Batched vs sequential serving speedup (SSSP, %d device(s), transfer-bound)" % (
        args.devices,
    )
    report = format_table(rows, title=title)
    print(report)

    top = cells["HyTGraph/K%d" % max(args.batch_sizes)]
    print(
        "HyTGraph K=%d: %.6f s sequential -> %.6f s batched (%.2fx), "
        "transfer %.3f MB -> %.3f MB" % (
            max(args.batch_sizes), top["sequential_s"], top["batched_s"], top["speedup"],
            top["sequential_transfer_bytes"] / 1e6, top["batched_transfer_bytes"] / 1e6,
        )
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "batch_queries.txt").write_text(report)
    payload = {
        "meta": {
            "harness": "bench_batch_queries",
            "vertices": args.vertices,
            "edges": args.edges,
            "devices": args.devices,
            "pcie_bandwidth": args.pcie_bandwidth,
            "batch_sizes": args.batch_sizes,
        },
        "cells": cells,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s" % args.out)

    if args.devices > 1 and 16 in args.batch_sizes:
        speedup = cells["HyTGraph/K16"]["speedup"]
        if speedup < HYTGRAPH_SPEEDUP_FLOOR:
            raise SystemExit(
                "HyTGraph K=16 batched speedup %.2fx fell below the %.1fx bar"
                % (speedup, HYTGRAPH_SPEEDUP_FLOOR)
            )
        print("acceptance: HyTGraph K=16 speedup %.2fx >= %.1fx" % (speedup, HYTGRAPH_SPEEDUP_FLOOR))
    return payload


if __name__ == "__main__":
    main()
