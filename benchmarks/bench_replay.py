"""Trace-replay benchmark: time-aware serving at 10^4-10^5+ query scale.

Streams seeded arrival-stamped query traces through
:class:`~repro.service.GraphService` via the
:class:`~repro.service.replay.ReplayHarness` and reports what a serving
deployment would ask of the stack:

* **Scale** — one saturated mixed replay of 10^5 queries (10^4 under
  ``--smoke``), streamed without materializing the trace or its
  results; reports per-class p50/p95/p99 latency, SLA attainment and
  simulated queries/s, and bitwise-verifies a seeded sample of served
  results against solo ``system.run`` calls.
* **Preemption** — the same saturated BULK-heavy trace served twice,
  with and without super-iteration-boundary BULK preemption, holding
  everything else fixed.  The run *asserts* the PR's acceptance bars:
  INTERACTIVE p95 with preemption at least 1.5x better than
  non-preemptive priority scheduling, BULK completion (simulated
  makespan of the last BULK query) within 15% of the non-preemptive
  run, and served values bitwise equal to solo runs in both modes.
* **Regimes** — the same mix replayed under-loaded (0.3x the measured
  batched capacity), saturated (1x) and overloaded (3x, with a byte
  budget and ``reject`` admission), showing queue-wait growth, SLA
  decay and the rejection breakdown under hard back-pressure.

All latencies are *simulated* seconds out of the deterministic cost
model, so runs are exactly reproducible for a given seed and the CI
gate can hold them to a tight tolerance; wall-clock speed of the runner
cancels out.

**Replay gate.**  ``--check-against REF.json`` compares the run's
INTERACTIVE p95 latency and SLA attainment per regime (and the scale
phase) against a reference payload of the same shape and fails with
exit code 1 when p95 grows beyond ``reference * (1 + tolerance)`` or
attainment drops by more than the tolerance.  ``--inject-latency F``
multiplies the measured per-class latencies by ``F`` before the
comparison to validate that the gate actually fires.

Usage::

    python benchmarks/bench_replay.py              # full run (>= 10^5 queries)
    python benchmarks/bench_replay.py --smoke      # 10^4-query CI smoke run
    python benchmarks/bench_replay.py --smoke \
        --check-against benchmarks/BENCH_replay_smoke.json --tolerance 0.2
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.bench.workloads import build_workload
from repro.service import (
    GraphService,
    Priority,
    QueryRequest,
    ReplayHarness,
    ServiceConfig,
    timed_mixed_trace,
)

GATED_CLASS = "interactive"


# ----------------------------------------------------------------------
# Harness plumbing
# ----------------------------------------------------------------------


def build_service(workload, *, preemption=False, budget=None, policy="queue"):
    """A fresh service over the benchmark workload (default HyTGraph)."""
    config = ServiceConfig(
        system="hytgraph",
        preemption=preemption,
        admission_budget_bytes=budget,
        admission_policy=policy,
    )
    return GraphService(config, graph=workload.graph, hardware=workload.config)


def calibrate_capacity(workload, seed: int, probe: int = 400) -> float:
    """Batched serving capacity in queries per simulated second.

    Replays a short probe trace whose arrivals are effectively all at
    t~0 (a huge rate), so the service batches as hard as it can; the
    resulting completed/makespan ratio is the saturation throughput the
    regime rates are expressed against.
    """
    service = build_service(workload)
    harness = ReplayHarness(service, lookahead=256)
    report = harness.replay(
        timed_mixed_trace(workload.graph, probe, rate=1e9, seed=seed)
    )
    if report.queries_per_second <= 0:
        raise SystemExit("capacity probe served nothing; graph too small?")
    return report.queries_per_second


def replay_once(
    workload,
    count: int,
    rate: float,
    seed: int,
    *,
    preemption: bool = False,
    budget=None,
    policy: str = "queue",
    sla_s: float | None = None,
    bulk_fraction: float = 0.02,
    verify_sample: int = 0,
    lookahead: int = 256,
):
    """One full streamed replay of the seeded mix; returns the report."""
    service = build_service(workload, preemption=preemption, budget=budget, policy=policy)
    harness = ReplayHarness(
        service, lookahead=lookahead, verify_sample=verify_sample, seed=seed
    )
    return harness.replay(
        timed_mixed_trace(
            workload.graph,
            count,
            rate,
            seed=seed,
            bulk_fraction=bulk_fraction,
            interactive_sla_s=sla_s,
        )
    )


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------


def run_scale(workload, count: int, capacity: float, seed: int) -> dict:
    """The headline phase: a saturated replay of ``count`` queries."""
    print("== scale: %d queries at saturation (%.0f q/s) ==" % (count, capacity))
    sla_s = 200.0 / capacity
    report = replay_once(
        workload, count, capacity, seed, sla_s=sla_s, verify_sample=10
    )
    assert report.completed == report.queries, (
        "scale replay dropped queries: %d of %d completed"
        % (report.completed, report.queries)
    )
    assert report.verified_bitwise is True, (
        "served values diverged bitwise from solo runs in the scale replay"
    )
    row = report.classes.get(GATED_CLASS, {})
    print(
        "  completed %d/%d in %.3f simulated s (%.0f q/s, wall %.1f s); "
        "interactive p95 %.6f s, SLA %.1f%%"
        % (
            report.completed, report.queries, report.makespan_s,
            report.queries_per_second, report.wall_s,
            row.get("p95_s", 0.0), 100.0 * row.get("sla_attainment", 1.0),
        )
    )
    payload = report.as_dict()
    payload["sla_s"] = sla_s
    return payload


def run_preemption(workload, count: int, capacity: float, seed: int) -> dict:
    """Preemption on vs off on one saturated BULK-heavy trace.

    Asserts the acceptance bars — this benchmark is the executable
    statement of what the preemption feature must deliver, not just a
    report.
    """
    print("== preemption: on vs off, %d queries, BULK-heavy saturated mix ==" % count)
    # The light-mix `capacity` overstates what a BULK-heavy mix can
    # sustain (analytic scans are far heavier than point lookups); at
    # genuine overload the interactive tail is backlog-dominated, which
    # any work-conserving discipline serves identically.  Probe the
    # BULK-heavy mix's own batched capacity and run the A/B just below
    # its knee, where head-of-line blocking by running scans — the thing
    # preemption removes — is what sets the interactive p95.
    mix_probe = replay_once(
        workload, min(count, 400), 1e9, seed, bulk_fraction=0.10
    )
    rate = 0.8 * mix_probe.queries_per_second
    kwargs = dict(
        rate=rate,
        sla_s=200.0 / capacity,
        bulk_fraction=0.10,
        verify_sample=10,
    )
    off = replay_once(workload, count, seed=seed, preemption=False, **kwargs)
    on = replay_once(workload, count, seed=seed, preemption=True, **kwargs)
    p95_off = off.latency_percentile(GATED_CLASS, 95)
    p95_on = on.latency_percentile(GATED_CLASS, 95)
    improvement = p95_off / p95_on if p95_on > 0 else float("inf")
    bulk_regression = (
        on.bulk_makespan_s / off.bulk_makespan_s if off.bulk_makespan_s > 0 else 1.0
    )
    print(
        "  interactive p95: %.6f s -> %.6f s (%.2fx better with preemption)"
        % (p95_off, p95_on, improvement)
    )
    print(
        "  BULK makespan: %.4f s -> %.4f s (%.1f%% regression), "
        "%d preemption(s) over %d quer(ies)"
        % (
            off.bulk_makespan_s, on.bulk_makespan_s,
            100.0 * (bulk_regression - 1.0), on.preemptions, on.preempted_queries,
        )
    )
    assert on.preemptions > 0, "the BULK-heavy saturated mix never preempted"
    assert improvement >= 1.5, (
        "preemption must improve interactive p95 by >= 1.5x over non-preemptive "
        "priority scheduling; measured %.2fx" % improvement
    )
    assert bulk_regression <= 1.15, (
        "preemption must keep BULK completion within 15%% of the non-preemptive "
        "run; measured %.1f%% regression" % (100.0 * (bulk_regression - 1.0))
    )
    assert off.verified_bitwise is True and on.verified_bitwise is True, (
        "served values diverged bitwise from solo runs"
    )
    return {
        "p95_off_s": p95_off,
        "p95_on_s": p95_on,
        "p95_improvement": improvement,
        "bulk_makespan_off_s": off.bulk_makespan_s,
        "bulk_makespan_on_s": on.bulk_makespan_s,
        "bulk_regression": bulk_regression,
        "preemptions": on.preemptions,
        "preempted_queries": on.preempted_queries,
        "off": off.as_dict(),
        "on": on.as_dict(),
    }


def run_regimes(workload, count: int, capacity: float, seed: int) -> dict:
    """Under-load / saturated / overload behaviour of one mix."""
    print("== regimes: %d queries each at 0.3x / 1x / 3x capacity ==" % count)
    sla_s = 200.0 / capacity
    # Overload gets a hard byte budget with reject admission so the
    # rejection breakdown is visible; the budget is sized off a typical
    # request estimate so a bounded number of queries fits in flight.
    probe = build_service(workload)
    estimate = probe.admission.estimate_request_bytes(
        *probe.submit(QueryRequest(algorithm="pagerank", priority=Priority.BULK))._query
    )
    budget = max(estimate * 4, 1)
    regimes = {}
    for name, factor, admission in (
        ("under_load", 0.3, {}),
        ("saturated", 1.0, {}),
        ("overload", 3.0, {"budget": budget, "policy": "reject"}),
    ):
        report = replay_once(
            workload, count, capacity * factor, seed, sla_s=sla_s, **admission
        )
        row = report.classes.get(GATED_CLASS, {})
        print(
            "  %-10s %5d done, %4d rejected | interactive p50 %.6f p95 %.6f "
            "p99 %.6f s | SLA %.1f%% | %.0f q/s"
            % (
                name, report.completed, report.rejected,
                row.get("p50_s", 0.0), row.get("p95_s", 0.0), row.get("p99_s", 0.0),
                100.0 * row.get("sla_attainment", 1.0), report.queries_per_second,
            )
        )
        payload = report.as_dict()
        payload["rate_factor"] = factor
        regimes[name] = payload
    assert regimes["overload"]["rejected"] > 0, (
        "the overloaded reject-admission regime rejected nothing; budget too high?"
    )
    return {"sla_s": sla_s, "capacity_qps": capacity, "regimes": regimes}


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------


def _gate_rows(payload) -> dict[str, dict]:
    """The (name -> {p95_s, sla_attainment}) rows the gate compares."""
    rows = {}
    scale_row = payload.get("scale", {}).get("classes", {}).get(GATED_CLASS)
    if scale_row:
        rows["scale"] = scale_row
    for name, regime in payload.get("regimes", {}).get("regimes", {}).items():
        row = regime.get("classes", {}).get(GATED_CLASS)
        if row:
            rows["regime:%s" % name] = row
    return rows


def check_regressions(current, reference, tolerance) -> list[str]:
    """Gate the interactive p95 and SLA attainment against a reference.

    Latencies are deterministic simulation outputs, so the tolerance
    absorbs intentional small model changes, not runner noise.  Returns
    the failure strings (empty = gate passes).
    """
    current_rows = _gate_rows(current)
    reference_rows = _gate_rows(reference)
    comparable = sorted(set(current_rows) & set(reference_rows))
    if not comparable:
        return ["no comparable replay phases between run and reference"]
    failures = []
    print("== replay gate (tolerance %.0f%%) ==" % (tolerance * 100))
    for name in comparable:
        p95 = float(current_rows[name]["p95_s"])
        ref_p95 = float(reference_rows[name]["p95_s"])
        ceiling = ref_p95 * (1.0 + tolerance)
        p95_ok = p95 <= ceiling or ref_p95 == 0.0
        sla = float(current_rows[name]["sla_attainment"])
        ref_sla = float(reference_rows[name]["sla_attainment"])
        floor = ref_sla - tolerance
        sla_ok = sla >= floor
        print(
            "  %-16s p95 %.6f s (ref %.6f, ceiling %.6f) %s | SLA %.1f%% "
            "(ref %.1f%%, floor %.1f%%) %s"
            % (
                name, p95, ref_p95, ceiling, "ok" if p95_ok else "REGRESSION",
                100 * sla, 100 * ref_sla, 100 * floor, "ok" if sla_ok else "REGRESSION",
            )
        )
        if not p95_ok:
            failures.append(
                "%s: interactive p95 %.6f s exceeds %.6f s (reference %.6f s + %.0f%%)"
                % (name, p95, ceiling, ref_p95, tolerance * 100)
            )
        if not sla_ok:
            failures.append(
                "%s: SLA attainment %.1f%% fell below %.1f%% (reference %.1f%% - %.0f pts)"
                % (name, 100 * sla, 100 * floor, 100 * ref_sla, tolerance * 100)
            )
    return failures


def _inject_latency(payload, factor: float) -> None:
    """Scale every per-class latency in place (gate-validation knob)."""
    def scale(row):
        for key in ("p50_s", "p95_s", "p99_s", "mean_s", "max_s", "mean_wait_s"):
            if key in row:
                row[key] = float(row[key]) * factor
        # A latency bump proportionally burns SLA headroom; approximate
        # the attainment drop so the SLA side of the gate also exercises.
        carrying = row.get("sla_met", 0) + row.get("sla_missed", 0)
        if carrying and factor > 1.0:
            row["sla_attainment"] = float(row["sla_attainment"]) / factor

    for row in payload.get("scale", {}).get("classes", {}).values():
        scale(row)
    for regime in payload.get("regimes", {}).get("regimes", {}).values():
        for row in regime.get("classes", {}).values():
            scale(row)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--smoke", action="store_true",
                        help="10^4-query CI smoke run instead of the full 10^5")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scale-queries", type=int, default=None,
                        help="override the scale phase's query count")
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the JSON payload "
                             "(default: BENCH_replay[_smoke].json in the repo root)")
    parser.add_argument("--check-against", type=Path, default=None, metavar="REF.json",
                        help="fail (exit 1) when interactive p95/SLA regress "
                             "beyond the tolerance vs this reference")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="relative p95 ceiling / absolute SLA floor (default 0.2)")
    parser.add_argument("--inject-latency", type=float, default=None, metavar="F",
                        help="multiply measured latencies by F before the gate "
                             "comparison (validates that the gate fires)")
    args = parser.parse_args()

    graph_scale = 0.02 if args.smoke else 0.05
    scale_queries = args.scale_queries or (10_000 if args.smoke else 100_000)
    phase_queries = 1_200 if args.smoke else 5_000

    started = time.perf_counter()
    workload = build_workload("SK", "sssp", scale=graph_scale)
    print(
        "replaying on SK scale=%g (%d vertices, %d edges)"
        % (graph_scale, workload.graph.num_vertices, workload.graph.num_edges)
    )
    capacity = calibrate_capacity(workload, args.seed)

    payload = {
        "benchmark": "replay",
        "smoke": args.smoke,
        "seed": args.seed,
        "graph": {
            "dataset": "SK",
            "scale": graph_scale,
            "vertices": workload.graph.num_vertices,
            "edges": workload.graph.num_edges,
        },
        "capacity_qps": capacity,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scale": run_scale(workload, scale_queries, capacity, args.seed),
        "preemption": run_preemption(workload, phase_queries, capacity, args.seed),
        "regimes": run_regimes(workload, phase_queries, capacity, args.seed),
    }
    payload["wall_s"] = time.perf_counter() - started

    if args.inject_latency is not None:
        print("injecting %gx latency into the payload (gate validation)" % args.inject_latency)
        _inject_latency(payload, args.inject_latency)

    output = args.output or (
        Path(__file__).resolve().parent.parent
        / ("BENCH_replay_smoke.json" if args.smoke else "BENCH_replay.json")
    )
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s (total wall %.1f s)" % (output, payload["wall_s"]))

    if args.check_against is not None:
        reference = json.loads(args.check_against.read_text())
        failures = check_regressions(payload, reference, args.tolerance)
        if failures:
            for failure in failures:
                print("GATE FAILURE: %s" % failure)
            raise SystemExit(1)
        print("replay gate passed")


if __name__ == "__main__":
    main()
