"""Shared infrastructure for the benchmark (table/figure regeneration) suite.

Every benchmark regenerates one table or figure of the paper: it runs the
relevant systems on the scaled-down stand-in workloads, prints the rows /
series the paper reports, and writes the same text to
``benchmarks/results/<experiment>.txt`` so the numbers survive the pytest
output capture.  Timing is wall-clock of the whole experiment via
pytest-benchmark (one round — the interesting numbers are the simulated
times inside the report, not the harness runtime).

The workload scale can be adjusted with the ``REPRO_BENCH_SCALE``
environment variable (default 0.5: roughly half the stand-in sizes
declared in :mod:`repro.graph.datasets`, which keeps the full suite to a
few minutes).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

# Make the in-repo sources importable even without an installed package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Graph scale factor used by every benchmark workload."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def report_writer():
    """Callable that records an experiment's text report."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> str:
        path = RESULTS_DIR / ("%s.txt" % name)
        path.write_text(text, encoding="utf-8")
        # Also echo to stdout so `pytest -s` shows the tables inline.
        print("\n" + text)
        return str(path)

    return write


def run_once(benchmark, experiment):
    """Run ``experiment`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(experiment, rounds=1, iterations=1)
