"""Figure 8 — performance gain of Task Combining and Contribution-Driven
Scheduling.

Starting from the raw hybrid transfer management (multi-stream scheduling
only), the paper adds task combining (TC) and then contribution-driven
scheduling (CDS) and reports normalized speedups per algorithm and
dataset.  The assertions check the qualitative conclusions: the combined
optimisations help on average, PageRank benefits the most, and BFS
benefits the least.
"""

import numpy as np
from conftest import run_once

from repro.bench.workloads import build_workload, paper_datasets
from repro.core.engine import HyTGraphOptions
from repro.metrics.tables import format_table

ALGORITHMS = ["pagerank", "sssp", "cc", "bfs"]

CONFIGURATIONS = {
    "Hybrid": HyTGraphOptions(task_combining=False, contribution_scheduling=False),
    "Hybrid+TC": HyTGraphOptions(task_combining=True, contribution_scheduling=False),
    "Hybrid+TC+CDS": HyTGraphOptions(task_combining=True, contribution_scheduling=True),
}


def test_fig8_tc_and_cds_gains(benchmark, report_writer, bench_scale):
    def experiment():
        table = {}
        for algorithm in ALGORITHMS:
            for dataset in paper_datasets():
                workload = build_workload(dataset, algorithm, scale=bench_scale)
                for label, options in CONFIGURATIONS.items():
                    run_options = HyTGraphOptions(
                        task_combining=options.task_combining,
                        contribution_scheduling=options.contribution_scheduling,
                    )
                    result = workload.run("hytgraph", options=run_options)
                    table[(algorithm, dataset, label)] = result.total_time
        return table

    table = run_once(benchmark, experiment)

    rows = []
    speedups = {algorithm: [] for algorithm in ALGORITHMS}
    for algorithm in ALGORITHMS:
        for dataset in paper_datasets():
            baseline = table[(algorithm, dataset, "Hybrid")]
            row = {"alg": algorithm.upper(), "dataset": dataset}
            for label in CONFIGURATIONS:
                row[label] = round(baseline / table[(algorithm, dataset, label)], 3)
            rows.append(row)
            speedups[algorithm].append(row["Hybrid+TC+CDS"])
    report = format_table(rows, title="Figure 8: normalized speedup over raw Hybrid")
    averages = {algorithm: round(float(np.mean(values)), 3) for algorithm, values in speedups.items()}
    report += "\naverage TC+CDS speedup per algorithm: %s\n" % averages
    report_writer("fig8_ablation", report)

    # The optimisations never hurt much and help on average.
    assert all(average > 0.9 for average in averages.values())
    assert np.mean(list(averages.values())) > 1.0
    # BFS benefits least (vertices activated only once).
    assert averages["bfs"] <= max(averages.values())
