"""Fault recovery overhead: makespan with/without a midpoint device loss.

Serves a K-query SSSP batch on the transfer-bound two-device workload
(PCIe throttled far below kernel throughput, per-device memory half the
edge data), measures the fault-free makespan, then replays the identical
batch with one device lost at the *midpoint* super-iteration of the
fault-free run.  The injector checkpoints every ``--checkpoint-interval``
super-iterations; on the loss the runner restores every live query from
its last checkpoint, re-shards the lost device's partitions onto the
survivor and replays the rolled-back super-iterations.

Reported:

* **makespan overhead** — the headline number.  The acceptance bar
  (asserted here) is ≤ 25%: losing half the fleet mid-run must not cost
  more than a quarter of the fault-free serving time, because the
  surviving device inherits warmed shard residency and the replay is
  bounded by the checkpoint interval.
* **checkpoint / restore cost** — the billed PCIe time of state capture
  at boundaries and of rollback on the fault, reported separately so a
  regression in either is attributable.
* **SLA attainment under chaos** — a mixed INTERACTIVE/BULK service
  trace served through :class:`repro.service.GraphService` under a flaky
  transfer link (per-task transient failures, retried with backoff),
  reporting deadline attainment and the fault counters.

Recovery is value-exact: the benchmark raises if any recovered query's
values differ bitwise from the fault-free run.  Everything is simulated
time, so the numbers are deterministic.

Usage::

    python benchmarks/bench_fault_recovery.py
    python benchmarks/bench_fault_recovery.py --queries 16 --checkpoint-interval 2
"""

from __future__ import annotations

import argparse
import json
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.algorithms.sssp import SSSP
from repro.bench.workloads import batch_sources
from repro.faults import FaultInjector, FaultSchedule, RetryPolicy
from repro.graph.generators import rmat_graph
from repro.metrics.tables import format_table
from repro.runtime.batch import QueryBatchRunner
from repro.service import GraphService, Priority, ServiceConfig, synthetic_mixed_trace
from repro.sim.config import HardwareConfig
from repro.systems.hytgraph import HyTGraphSystem

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The acceptance bar: a midpoint single-device loss on the two-device
#: workload may cost at most this fraction of the fault-free makespan.
RECOVERY_OVERHEAD_CEILING = 0.25


def build_platform(args):
    graph = rmat_graph(args.vertices, args.edges, seed=5, weighted=True, name="rmat-batch")
    config = HardwareConfig(
        gpu_memory_bytes=graph.edge_data_bytes // 2,
        pcie_bandwidth=args.pcie_bandwidth,
    ).with_devices(args.devices)
    return graph, config


def run_batch(graph, config, sources, faults=None, checkpoint_interval=1):
    system = HyTGraphSystem(graph, config=config)
    runner = QueryBatchRunner(system)
    queries = [(SSSP(), source) for source in sources]
    injector = None
    if faults is not None:
        injector = FaultInjector(FaultSchedule.parse(faults), retry=RetryPolicy())
    return runner.run(queries, injector=injector, checkpoint_interval=checkpoint_interval)


def recovery_cell(args, graph, config):
    """Fault-free vs midpoint-device-loss makespans on the same batch."""
    sources = batch_sources(graph, args.queries)
    clean = run_batch(graph, config, sources)
    midpoint = max(1, clean.super_iterations // 2)
    faulted = run_batch(
        graph,
        config,
        sources,
        faults="device-loss@%d:device=0" % midpoint,
        checkpoint_interval=args.checkpoint_interval,
    )
    for reference, recovered in zip(clean.results, faulted.results):
        if not np.array_equal(np.asarray(reference.values), np.asarray(recovered.values)):
            raise AssertionError("recovered query values diverged from the fault-free run")
    overhead = faulted.makespan / clean.makespan - 1.0
    return {
        "queries": args.queries,
        "midpoint_super_iteration": midpoint,
        "checkpoint_interval": args.checkpoint_interval,
        "clean_makespan_s": clean.makespan,
        "faulted_makespan_s": faulted.makespan,
        "overhead": overhead,
        "checkpoint_time_s": faulted.checkpoint_time_s,
        "recovery_time_s": faulted.recovery_time_s,
        "recovered_super_iterations": faulted.recovered_super_iterations,
        "lost_devices": faulted.extra["lost_devices"],
        "values_bitwise_equal": True,
    }


def chaos_sla_cell(args, graph, config):
    """Deadline attainment through the service under a flaky link."""
    requests = [
        replace(request, deadline_s=args.lookup_deadline_s)
        if request.priority is Priority.INTERACTIVE
        else request
        for request in synthetic_mixed_trace(
            graph, point_lookups=args.point_lookups, analytical=args.analytical, seed=7
        )
    ]
    service = GraphService(
        ServiceConfig(
            system="hytgraph",
            faults="transfer-flaky:p=%g" % args.flaky_probability,
            chaos_seed=args.chaos_seed,
        ),
        system=HyTGraphSystem(graph, config=config),
    )
    service.submit_many(requests)
    service.drain()
    stats = service.stats()
    return {
        "requests": len(requests),
        "completed": stats.completed,
        "failed": stats.failed,
        "deadline_attainment": stats.deadline_attainment,
        "faults_injected": stats.faults_injected,
        "retries": stats.retries,
        "retry_time_s": stats.retry_time_s,
        "interactive_p95_s": stats.latency_percentile(Priority.INTERACTIVE, 95),
        "bulk_p95_s": stats.latency_percentile(Priority.BULK, 95),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--vertices", type=int, default=2000)
    parser.add_argument("--edges", type=int, default=20000)
    parser.add_argument("--devices", type=int, default=2)
    parser.add_argument("--pcie-bandwidth", type=float, default=1e9,
                        help="throttled host-GPU bandwidth (transfer-bound regime)")
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--checkpoint-interval", type=int, default=1)
    parser.add_argument("--point-lookups", type=int, default=8)
    parser.add_argument("--analytical", type=int, default=2)
    parser.add_argument("--lookup-deadline-s", type=float, default=0.05)
    parser.add_argument("--flaky-probability", type=float, default=0.05)
    parser.add_argument("--chaos-seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=RESULTS_DIR / "fault_recovery.json")
    args = parser.parse_args(argv)

    graph, config = build_platform(args)
    recovery = recovery_cell(args, graph, config)
    sla = chaos_sla_cell(args, graph, config)

    rows = [
        {
            "scenario": "fault-free",
            "makespan (s)": round(recovery["clean_makespan_s"], 6),
            "checkpoint (s)": 0.0,
            "restore (s)": 0.0,
            "overhead": "--",
        },
        {
            "scenario": "device loss @%d" % recovery["midpoint_super_iteration"],
            "makespan (s)": round(recovery["faulted_makespan_s"], 6),
            "checkpoint (s)": round(recovery["checkpoint_time_s"], 6),
            "restore (s)": round(recovery["recovery_time_s"], 6),
            "overhead": "%.1f%%" % (recovery["overhead"] * 100),
        },
    ]
    title = (
        "Recovery overhead: K=%d SSSP, %d device(s), single loss at midpoint "
        "(checkpoint every %d super-iteration(s))"
        % (args.queries, args.devices, args.checkpoint_interval)
    )
    report = format_table(rows, title=title)
    report += (
        "\nSLA under chaos (transfer-flaky p=%g, seed %d): %d/%d completed, "
        "%d failed; deadline attainment %.0f%%; %d faults, %d retries "
        "(%.6f s billed); lookup p95 %.6f s\n"
        % (
            args.flaky_probability,
            args.chaos_seed,
            sla["completed"],
            sla["requests"],
            sla["failed"],
            sla["deadline_attainment"] * 100,
            sla["faults_injected"],
            sla["retries"],
            sla["retry_time_s"],
            sla["interactive_p95_s"],
        )
    )
    print(report)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fault_recovery.txt").write_text(report)
    payload = {
        "meta": {
            "harness": "bench_fault_recovery",
            "vertices": args.vertices,
            "edges": args.edges,
            "devices": args.devices,
            "pcie_bandwidth": args.pcie_bandwidth,
            "overhead_ceiling": RECOVERY_OVERHEAD_CEILING,
        },
        "recovery": recovery,
        "sla_under_chaos": sla,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s" % args.out)

    if recovery["overhead"] > RECOVERY_OVERHEAD_CEILING:
        raise SystemExit(
            "recovery overhead %.1f%% exceeded the %.0f%% ceiling"
            % (recovery["overhead"] * 100, RECOVERY_OVERHEAD_CEILING * 100)
        )
    print(
        "acceptance: recovery overhead %.1f%% <= %.0f%%"
        % (recovery["overhead"] * 100, RECOVERY_OVERHEAD_CEILING * 100)
    )
    return payload


if __name__ == "__main__":
    main()
