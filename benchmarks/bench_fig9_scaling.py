"""Figure 9 — scaling with RMAT graph size.

The paper sweeps RMAT graphs from 0.1 B to 6.4 B edges (a 64x range) and
shows that HyTGraph's runtime grows more slowly than Grus's and EMOGI's as
the graphs stop fitting in GPU memory, and that Grus is the fastest when
the graph is small enough to be cached.  The stand-in sweep covers the
same 64x range at laptop scale (the base size is controlled by the bench
scale), with the simulated GPU memory held constant across the sweep —
exactly like the real 11 GB card — so the small graphs fit and the large
ones do not.
"""

from conftest import run_once

from repro.bench.workloads import build_workload
from repro.graph.generators import rmat_graph
from repro.metrics.tables import format_table
from repro.sim.config import gtx_2080ti

SYSTEMS = ["grus", "subway", "emogi", "hytgraph"]
# 0.1B ... 6.4B edges in the paper; scaled by ~2e-4 here.
SWEEP_STEPS = 7


def test_fig9_scaling_with_graph_size(benchmark, report_writer, bench_scale):
    base_edges = int(20_000 * bench_scale)

    def experiment():
        table = {}
        # GPU memory is fixed for the whole sweep: sized so the smallest
        # graphs fit comfortably and the largest are ~8x oversubscribed.
        fixed_memory = int(base_edges * 4 * 8)
        config = gtx_2080ti().scaled(base_edges / 1e9).with_gpu_memory(fixed_memory)
        for step in range(SWEEP_STEPS):
            num_edges = base_edges * (2 ** step)
            num_vertices = max(256, num_edges // 16)
            graph = rmat_graph(num_vertices, num_edges, seed=90 + step, name="rmat-%d" % num_edges)
            for algorithm in ("pagerank", "sssp"):
                workload = build_workload("rmat", algorithm, graph=graph, preset=config)
                # Hold the device memory constant across the sweep (like a
                # real 11 GB card) instead of rescaling it per graph.
                workload.config = config
                for system in SYSTEMS:
                    result = workload.run(system)
                    table[(algorithm, num_edges, system)] = result.total_time
        return table

    table = run_once(benchmark, experiment)

    edge_counts = sorted({key[1] for key in table})
    text = ""
    for algorithm in ("pagerank", "sssp"):
        rows = []
        for num_edges in edge_counts:
            row = {"edges": num_edges}
            for system in SYSTEMS:
                row[system] = table[(algorithm, num_edges, system)]
            rows.append(row)
        text += format_table(rows, title="Figure 9 (%s): runtime vs RMAT size" % algorithm)
    report_writer("fig9_scaling", text)

    smallest, largest = edge_counts[0], edge_counts[-1]
    for algorithm in ("pagerank", "sssp"):
        # Runtime grows with graph size for every system.
        for system in SYSTEMS:
            assert table[(algorithm, largest, system)] > table[(algorithm, smallest, system)]
        # HyTGraph scales at least as well as Grus over the sweep
        # (its runtime growth factor is no larger).
        hyt_growth = table[(algorithm, largest, "hytgraph")] / table[(algorithm, smallest, "hytgraph")]
        grus_growth = table[(algorithm, largest, "grus")] / table[(algorithm, smallest, "grus")]
        assert hyt_growth <= grus_growth * 1.2
        # At the largest size HyTGraph is the fastest or close to it.
        largest_times = {system: table[(algorithm, largest, system)] for system in SYSTEMS}
        assert largest_times["hytgraph"] <= 1.25 * min(largest_times.values())
