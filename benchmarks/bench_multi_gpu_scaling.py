"""Multi-GPU scaling — the sharded execution layer at 1, 2 and 4 devices.

Beyond the paper: HyTGraph's hybrid transfer management generalised to
multiple GPUs (contiguous vertex-range shards, per-device stream
schedulers over a shared host PCIe complex, per-iteration boundary-delta
exchange over the interconnect).  The experiment runs HyTGraph and the
explicit-transfer baselines on an oversubscribed workload at 1/2/4
devices and reports the speedup over the single-device run plus the
boundary-synchronisation volume.

The expected shape: HyTGraph converts aggregate device memory into shard
residency, so it scales; the baselines re-ship their traffic every
iteration over the same shared host PCIe, so sharding alone buys them
little and the sync phase is pure overhead (Subway in particular).
"""

from conftest import run_once

from repro.bench.workloads import build_workload
from repro.metrics.tables import format_table

DEVICE_COUNTS = [1, 2, 4]
SYSTEMS = ["hytgraph", "emogi", "subway", "exptm-f"]
SYSTEM_LABELS = {"hytgraph": "HyTGraph", "emogi": "EMOGI", "subway": "Subway", "exptm-f": "ExpTM-F"}


def test_multi_gpu_scaling(benchmark, report_writer, bench_scale):
    def experiment():
        table = {}
        for algorithm in ("pagerank", "sssp"):
            for devices in DEVICE_COUNTS:
                workload = build_workload("UK", algorithm, scale=bench_scale, num_devices=devices)
                for system in SYSTEMS:
                    result = workload.run(system)
                    table[(algorithm, devices, system)] = (
                        result.total_time,
                        result.total_transfer_bytes,
                        result.total_interconnect_bytes,
                    )
        return table

    table = run_once(benchmark, experiment)

    rows = []
    for algorithm in ("pagerank", "sssp"):
        for devices in DEVICE_COUNTS:
            row = {"alg": algorithm.upper(), "GPUs": devices}
            for system in SYSTEMS:
                time, transfer, sync = table[(algorithm, devices, system)]
                baseline_time = table[(algorithm, 1, system)][0]
                row[SYSTEM_LABELS[system]] = round(baseline_time / time, 2)
            row["xfer MB"] = round(table[(algorithm, devices, "hytgraph")][1] / 1e6, 2)
            row["sync MB"] = round(table[(algorithm, devices, "hytgraph")][2] / 1e6, 2)
            rows.append(row)
    report = format_table(
        rows,
        title="Multi-GPU scaling on UK: speedup over 1 device (xfer/sync columns: HyTGraph)",
    )
    report_writer("multi_gpu_scaling", report)

    # Shard residency must make multi-GPU HyTGraph no slower than single
    # device, and its host-PCIe transfer volume must shrink.
    for algorithm in ("pagerank", "sssp"):
        for devices in (2, 4):
            assert table[(algorithm, devices, "hytgraph")][0] <= table[(algorithm, 1, "hytgraph")][0]
            assert table[(algorithm, devices, "hytgraph")][1] < table[(algorithm, 1, "hytgraph")][1]
        # Single-device runs exchange nothing; sharded runs do.
        assert table[(algorithm, 1, "hytgraph")][2] == 0
        assert table[(algorithm, 2, "hytgraph")][2] > 0
