"""Table I — GPU memory bandwidth vs PCIe bandwidth across generations.

The paper motivates transfer management with the observation that the gap
between device-memory bandwidth and host-GPU interconnect bandwidth has
stayed around 45-50x from the P100 to the H100.  This benchmark prints
the same table from the hardware presets the simulator uses.
"""

from conftest import run_once

from repro.metrics.tables import format_table
from repro.sim.config import GPU_PRESETS


def test_table1_bandwidth_gap(benchmark, report_writer):
    def experiment():
        rows = []
        for name in ("P100", "V100", "A100", "H100", "GTX-1080", "GTX-2080Ti"):
            preset = GPU_PRESETS[name]
            rows.append(
                {
                    "GPU": name,
                    "Mem. bdw (GB/s)": round(preset.gpu_memory_bandwidth / 1e9, 1),
                    "PCIe bdw (GB/s)": round(preset.pcie_bandwidth / 1e9, 1),
                    "Mem/PCIe ratio": round(preset.memory_bandwidth_ratio, 1),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    report_writer("table1_hardware", format_table(rows, title="Table I: GPU memory vs PCIe bandwidth"))
    ratios = [row["Mem/PCIe ratio"] for row in rows[:4]]
    # The paper's point: the gap never narrows below ~45x for the data-center parts.
    assert min(ratios) > 30
