"""Ablations of HyTGraph's own design constants (DESIGN.md section 5).

The paper fixes three groups of constants without sweeping them:

* the engine-selection thresholds α = 0.8 and β = 0.4 (Section V-A);
* the partitioning granularity (32 MB chunks) and the filter-task
  combination factor k = 4 (Section V-B);
* the hub fraction (8 %) of the contribution-driven scheduler and the
  recompute-once policy (Section VI-A).

These benchmarks sweep each group on one representative workload so the
sensitivity of the design choices is visible, and assert that the paper's
defaults are at least competitive (within a modest factor of the best
setting found in the sweep).
"""

import numpy as np
from conftest import run_once

from repro.bench.workloads import build_workload
from repro.core.engine import HyTGraphOptions
from repro.core.selection import SelectionThresholds
from repro.metrics.tables import format_table


def test_ablation_selection_thresholds(benchmark, report_writer, bench_scale):
    def experiment():
        workload = build_workload("FK", "sssp", scale=bench_scale)
        rows = []
        for alpha in (0.5, 0.8, 1.0):
            for beta in (0.2, 0.4, 0.8):
                options = HyTGraphOptions(thresholds=SelectionThresholds(alpha=alpha, beta=beta))
                result = workload.run("hytgraph", options=options)
                rows.append(
                    {
                        "alpha": alpha,
                        "beta": beta,
                        "time": result.total_time,
                        "transfer_MB": round(result.total_transfer_bytes / 1e6, 3),
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)
    report_writer("ablation_thresholds", format_table(rows, title="Ablation: selection thresholds (SSSP, FK)"))
    best = min(row["time"] for row in rows)
    default = next(row["time"] for row in rows if row["alpha"] == 0.8 and row["beta"] == 0.4)
    assert default <= 1.3 * best


def test_ablation_partitioning_granularity(benchmark, report_writer, bench_scale):
    def experiment():
        workload = build_workload("FK", "pagerank", scale=bench_scale)
        rows = []
        for num_partitions in (8, 32, 64, 128):
            for combine_factor in (1, 4, 8):
                options = HyTGraphOptions(num_partitions=num_partitions, combine_factor=combine_factor)
                result = workload.run("hytgraph", options=options)
                rows.append(
                    {
                        "partitions": num_partitions,
                        "k": combine_factor,
                        "time": result.total_time,
                        "iterations": result.num_iterations,
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)
    report_writer("ablation_partitioning", format_table(rows, title="Ablation: partition count and combine factor (PR, FK)"))
    best = min(row["time"] for row in rows)
    default = next(row["time"] for row in rows if row["partitions"] == 64 and row["k"] == 4)
    # At laptop scale the per-partition overheads weigh more than on the
    # paper's billion-edge graphs, so the default 64-partition layout only
    # needs to stay in the same ballpark as the best sweep point.
    assert default <= 2.5 * best
    # Combining (k>1) should not hurt relative to no combining at the same
    # partition count.
    for partitions in (32, 64, 128):
        uncombined = next(r["time"] for r in rows if r["partitions"] == partitions and r["k"] == 1)
        combined = next(r["time"] for r in rows if r["partitions"] == partitions and r["k"] == 4)
        assert combined <= 1.2 * uncombined


def test_ablation_priority_scheduling(benchmark, report_writer, bench_scale):
    def experiment():
        workload = build_workload("UK", "pagerank", scale=bench_scale)
        rows = []
        for hub_fraction in (0.0, 0.04, 0.08, 0.16):
            for recompute in (False, True):
                options = HyTGraphOptions(
                    hub_sorting=hub_fraction > 0,
                    hub_fraction=max(hub_fraction, 0.01),
                    recompute_loaded=recompute,
                )
                result = workload.run("hytgraph", options=options)
                rows.append(
                    {
                        "hub_fraction": hub_fraction,
                        "recompute_once": recompute,
                        "time": result.total_time,
                        "iterations": result.num_iterations,
                        "transfer_MB": round(result.total_transfer_bytes / 1e6, 3),
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)
    report_writer("ablation_priority", format_table(rows, title="Ablation: hub fraction and recompute-once (PR, UK)"))
    # Recompute-once should reduce outer iterations for the accumulative workload.
    with_recompute = np.mean([row["iterations"] for row in rows if row["recompute_once"]])
    without_recompute = np.mean([row["iterations"] for row in rows if not row["recompute_once"]])
    assert with_recompute <= without_recompute
