"""Cluster-scaling benchmark: aggregate qps from 1x2 to 4x2 GPUs.

Streams one saturated seeded mixed trace through
:class:`~repro.cluster.ClusterService` deployments of 1, 2 and 4
simulated hosts (2 GPUs each) behind the consistent-hash router, and
reports the aggregate simulated queries/s curve.  Two acceptance bars
are *asserted*, not just reported:

* **Scaling** — the 4x2 deployment must sustain at least 2.5x the
  aggregate qps of the 1x2 baseline, with sampled per-query values
  bitwise equal to solo single-host runs (routing changes placement,
  never semantics).
* **Failover** — the same 4x2 replay with one host lost at the
  midpoint cluster wave must complete every admitted query (the loss
  causes zero ``QueryFailed``) at no more than 25% makespan overhead
  over the fault-free run, queries still bitwise.

All latencies are simulated seconds out of the deterministic cost
model, so runs reproduce exactly for a given seed and the CI gate holds
them to a tight tolerance.

**Cluster gate.**  ``--check-against REF.json`` compares each
deployment's aggregate qps (floor: ``reference * (1 - tolerance)``),
the 4-host speedup (floor: ``reference - tolerance``) and the host-loss
makespan overhead (ceiling: ``reference + tolerance``) against a
payload of the same shape, failing with exit code 1 on regression.
``--inject-latency F`` divides the measured qps by ``F`` before the
comparison to validate that the gate actually fires.

Usage::

    python benchmarks/bench_cluster_scaling.py             # full run
    python benchmarks/bench_cluster_scaling.py --smoke     # 10^4-query CI smoke
    python benchmarks/bench_cluster_scaling.py --smoke \
        --check-against benchmarks/BENCH_cluster_smoke.json --tolerance 0.2
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.bench.workloads import build_workload
from repro.cluster import ClusterConfig, ClusterService
from repro.service import ReplayHarness, ServiceConfig, timed_mixed_trace

GPUS_PER_HOST = 2
HOST_CURVE = (1, 2, 4)
SPEEDUP_FLOOR = 2.5
LOSS_OVERHEAD_CEILING = 0.25


def build_cluster(workload, hosts: int, network: str, *, faults=None) -> ClusterService:
    """A fresh ``hosts`` x ``GPUS_PER_HOST`` cluster over the workload."""
    config = ClusterConfig(
        hosts=hosts,
        gpus_per_host=GPUS_PER_HOST,
        network=network,
        service=ServiceConfig(system="hytgraph", faults=faults),
    )
    return ClusterService.for_workload(workload, "hytgraph", config=config)


def replay_once(workload, hosts: int, count: int, seed: int, network: str, *, faults=None):
    """One saturated replay; returns ``(report, cluster)``.

    The arrival rate is effectively infinite so every makespan is
    service-bound, not arrival-bound — otherwise adding hosts could
    never shorten the replay and the curve would be flat by
    construction.
    """
    cluster = build_cluster(workload, hosts, network, faults=faults)
    # A deep lookahead keeps every replica's waves large: per-wave fixed
    # costs (partition residency transfers) amortize the same way on
    # every deployment size, so the curve measures replication, not
    # batching decay.
    harness = ReplayHarness(cluster, lookahead=1024, verify_sample=10, seed=seed)
    report = harness.replay(timed_mixed_trace(workload.graph, count, rate=1e9, seed=seed))
    return report, cluster


def run_scaling(workload, count: int, seed: int, network: str) -> dict:
    """The qps curve over the host counts; asserts the 4x speedup bar."""
    print("== scaling: %d queries, hosts x %d GPUs over %s ==" % (count, GPUS_PER_HOST, network))
    curve = {}
    waves = {}
    for hosts in HOST_CURVE:
        report, cluster = replay_once(workload, hosts, count, seed, network)
        assert report.completed == report.queries, (
            "%d-host replay dropped queries: %d of %d completed"
            % (hosts, report.completed, report.queries)
        )
        assert report.verified_bitwise is True, (
            "%d-host replay diverged bitwise from solo runs" % hosts
        )
        counters = cluster.router.counters()
        print(
            "  hosts=%d  %6d queries in %8.3f simulated s -> %8.0f q/s "
            "(%d affinity, %d spills; wall %.1f s)"
            % (
                hosts, report.completed, report.makespan_s,
                report.queries_per_second, counters["affinity_hits"],
                counters["spills"], report.wall_s,
            )
        )
        payload = report.as_dict()
        payload["hosts"] = hosts
        payload["router"] = counters
        curve["hosts%d" % hosts] = payload
        waves[hosts] = cluster._steps
    speedup = (
        curve["hosts4"]["queries_per_second"] / curve["hosts1"]["queries_per_second"]
    )
    print("  4-host speedup over 1 host: %.2fx" % speedup)
    assert speedup >= SPEEDUP_FLOOR, (
        "4x%d GPUs must sustain >= %.1fx the 1x%d aggregate qps; measured %.2fx"
        % (GPUS_PER_HOST, SPEEDUP_FLOOR, GPUS_PER_HOST, speedup)
    )
    return {"curve": curve, "speedup_4x": speedup, "cluster_waves": waves}


def run_host_loss(workload, count: int, seed: int, network: str, fault_free_waves: int) -> dict:
    """Lose one host at the midpoint wave of the 4x2 replay."""
    midpoint = max(1, fault_free_waves // 2)
    print(
        "== host loss: 4x%d GPUs, host 3 lost at cluster wave %d (midpoint of %d) =="
        % (GPUS_PER_HOST, midpoint, fault_free_waves)
    )
    baseline, _ = replay_once(workload, 4, count, seed, network)
    faults = "host-loss@%d:host=3" % midpoint
    report, cluster = replay_once(workload, 4, count, seed, network, faults=faults)

    admitted = report.queries - report.rejected
    assert report.failed == 0 and report.cancelled == 0, (
        "the host loss failed queries: %d failed, %d cancelled"
        % (report.failed, report.cancelled)
    )
    assert report.completed == admitted, (
        "host-loss replay dropped queries: %d of %d admitted completed"
        % (report.completed, admitted)
    )
    assert report.verified_bitwise is True, (
        "host-loss replay diverged bitwise from solo runs"
    )
    assert cluster.alive_hosts() == [0, 1, 2]
    overhead = report.makespan_s / baseline.makespan_s - 1.0
    print(
        "  %d migrated (%.3f MB shipped, %.6f s on the %s fabric); "
        "makespan %.3f s vs %.3f s fault-free (%.1f%% overhead)"
        % (
            cluster.router.failovers, cluster.shipped_bytes / 1e6,
            cluster.ship_time_s, network, report.makespan_s,
            baseline.makespan_s, 100.0 * overhead,
        )
    )
    assert overhead <= LOSS_OVERHEAD_CEILING, (
        "losing one of four hosts at the midpoint must cost <= %.0f%% makespan; "
        "measured %.1f%%" % (100 * LOSS_OVERHEAD_CEILING, 100 * overhead)
    )
    payload = report.as_dict()
    payload["midpoint_wave"] = midpoint
    payload["migrated"] = cluster.router.failovers
    payload["shipped_bytes"] = cluster.shipped_bytes
    payload["ship_time_s"] = cluster.ship_time_s
    payload["fault_free_makespan_s"] = baseline.makespan_s
    payload["makespan_overhead"] = overhead
    payload["events"] = cluster.events
    return payload


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------


def _gate_rows(payload) -> dict[str, float]:
    """The scalar rows the gate compares (qps floors, overhead ceiling)."""
    rows = {}
    for name, deployment in payload.get("scaling", {}).get("curve", {}).items():
        rows["qps:%s" % name] = float(deployment["queries_per_second"])
    if "speedup_4x" in payload.get("scaling", {}):
        rows["speedup_4x"] = float(payload["scaling"]["speedup_4x"])
    if "makespan_overhead" in payload.get("host_loss", {}):
        rows["loss_overhead"] = float(payload["host_loss"]["makespan_overhead"])
    return rows


def check_regressions(current, reference, tolerance) -> list[str]:
    """Hold qps and speedup to floors, the loss overhead to a ceiling."""
    current_rows = _gate_rows(current)
    reference_rows = _gate_rows(reference)
    comparable = sorted(set(current_rows) & set(reference_rows))
    if not comparable:
        return ["no comparable cluster phases between run and reference"]
    failures = []
    print("== cluster gate (tolerance %.0f%%) ==" % (tolerance * 100))
    for name in comparable:
        value = current_rows[name]
        ref = reference_rows[name]
        if name == "loss_overhead":
            bound = ref + tolerance
            ok = value <= bound
            kind = "ceiling"
        elif name == "speedup_4x":
            bound = ref - tolerance
            ok = value >= bound
            kind = "floor"
        else:
            bound = ref * (1.0 - tolerance)
            ok = value >= bound
            kind = "floor"
        print(
            "  %-14s %10.3f (ref %10.3f, %s %10.3f) %s"
            % (name, value, ref, kind, bound, "ok" if ok else "REGRESSION")
        )
        if not ok:
            failures.append(
                "%s: %.3f breaches the %s %.3f (reference %.3f, tolerance %.0f%%)"
                % (name, value, kind, bound, ref, tolerance * 100)
            )
    return failures


def _inject_latency(payload, factor: float) -> None:
    """Degrade the payload in place (gate-validation knob)."""
    for deployment in payload.get("scaling", {}).get("curve", {}).values():
        deployment["makespan_s"] = float(deployment["makespan_s"]) * factor
        deployment["queries_per_second"] = (
            float(deployment["queries_per_second"]) / factor
        )
    if "host_loss" in payload:
        payload["host_loss"]["makespan_overhead"] = (
            float(payload["host_loss"]["makespan_overhead"]) * factor + (factor - 1.0)
        )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--smoke", action="store_true",
                        help="10^4-query CI smoke run instead of the full 10^5")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--queries", type=int, default=None,
                        help="override the per-deployment query count")
    parser.add_argument("--network", default="tcp",
                        help="network preset for the fabric (default tcp)")
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the JSON payload "
                             "(default: BENCH_cluster[_smoke].json in the repo root)")
    parser.add_argument("--check-against", type=Path, default=None, metavar="REF.json",
                        help="fail (exit 1) when qps/speedup/loss-overhead regress "
                             "beyond the tolerance vs this reference")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="relative qps floor / absolute speedup+overhead "
                             "margin (default 0.2)")
    parser.add_argument("--inject-latency", type=float, default=None, metavar="F",
                        help="degrade measured qps by F before the gate "
                             "comparison (validates that the gate fires)")
    args = parser.parse_args()

    graph_scale = 0.02 if args.smoke else 0.05
    count = args.queries or (10_000 if args.smoke else 100_000)

    started = time.perf_counter()
    workload = build_workload("SK", "sssp", scale=graph_scale)
    print(
        "cluster replay on SK scale=%g (%d vertices, %d edges), %s fabric"
        % (
            graph_scale, workload.graph.num_vertices,
            workload.graph.num_edges, args.network,
        )
    )
    scaling = run_scaling(workload, count, args.seed, args.network)
    host_loss = run_host_loss(
        workload, count, args.seed, args.network, scaling["cluster_waves"][4]
    )

    payload = {
        "benchmark": "cluster_scaling",
        "smoke": args.smoke,
        "seed": args.seed,
        "network": args.network,
        "gpus_per_host": GPUS_PER_HOST,
        "graph": {
            "dataset": "SK",
            "scale": graph_scale,
            "vertices": workload.graph.num_vertices,
            "edges": workload.graph.num_edges,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scaling": scaling,
        "host_loss": host_loss,
    }
    payload["wall_s"] = time.perf_counter() - started

    if args.inject_latency is not None:
        print("injecting %gx latency into the payload (gate validation)" % args.inject_latency)
        _inject_latency(payload, args.inject_latency)

    output = args.output or (
        Path(__file__).resolve().parent.parent
        / ("BENCH_cluster_smoke.json" if args.smoke else "BENCH_cluster.json")
    )
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s (total wall %.1f s)" % (output, payload["wall_s"]))

    if args.check_against is not None:
        reference = json.loads(args.check_against.read_text())
        failures = check_regressions(payload, reference, args.tolerance)
        if failures:
            for failure in failures:
                print("GATE FAILURE: %s" % failure)
            raise SystemExit(1)
        print("cluster gate passed")


if __name__ == "__main__":
    main()
