"""Repository-level pytest configuration.

The supported setup is an editable install (``pip install -e .``), which
exposes the ``repro`` package and the ``repro-graph`` console script.  In
offline environments where PEP 660 editable installs are unavailable
(no ``wheel``), fall back to putting ``src/`` on ``sys.path`` directly —
``python setup.py develop`` also works there.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

if importlib.util.find_spec("repro") is None:
    _SRC = Path(__file__).resolve().parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))
