"""Tests of the adaptive device-memory cache subsystem.

Three layers are covered:

1. **Mechanics** — the :class:`CacheManager` byte accounting, counters
   and the three eviction policies in isolation (static prefix pinned
   bitwise to the historical residency, LRU recency, frontier-aware
   scoring/collapse eviction).
2. **Integration** — the HyTGraph engine and the ExpTM-F system billing
   whole-partition transfers through the cache: adaptive policies keep
   per-vertex results bitwise identical while reducing transfer volume
   on transfer-bound workloads.
3. **Serving** — the batch runner's cross-super-iteration reuse: shipped
   partitions stay resident between super-iterations and later queries
   hit the cache instead of re-shipping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.sssp import SSSP
from repro.cache import (
    CACHE_POLICIES,
    CacheManager,
    FrontierAwarePolicy,
    make_policy,
)
from repro.graph.generators import grid_graph, rmat_graph
from repro.graph.partition import ShardedPartitioning, partition_by_count
from repro.runtime.batch import QueryBatchRunner
from repro.sim.config import HardwareConfig
from repro.systems.emogi import EmogiSystem
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.hytgraph import HyTGraphSystem
from repro.systems.subway import SubwaySystem
from repro.transfer.residency import ShardResidency


def build_manager(policy="lru", num_partitions=8, num_devices=2, budget=None, vertices=160):
    graph = rmat_graph(vertices, vertices * 6, seed=9, name="rmat-cache")
    partitioning = partition_by_count(graph, num_partitions)
    sharding = ShardedPartitioning(partitioning, num_devices)
    config = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes, num_devices=num_devices)
    return CacheManager(partitioning, sharding, config, policy=policy, budget_bytes=budget)


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------


class TestPolicyRegistry:
    def test_all_policies_registered(self):
        assert set(CACHE_POLICIES) == {"static-prefix", "lru", "frontier-aware"}

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError, match="unknown cache policy"):
            make_policy("clock")

    def test_policy_instance_passes_through(self):
        policy = FrontierAwarePolicy(decay=0.25)
        assert make_policy(policy) is policy

    def test_frontier_aware_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FrontierAwarePolicy(decay=1.0)
        with pytest.raises(ValueError):
            FrontierAwarePolicy(idle_evict_after=0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            build_manager(budget=-1)


# ----------------------------------------------------------------------
# Static-prefix mechanics (the historical residency, bitwise)
# ----------------------------------------------------------------------


class TestStaticPrefix:
    def test_prefix_pinned_per_device_budget(self):
        manager = build_manager("static-prefix")
        # Recompute the expected prefix by hand, per shard.
        expected = np.zeros(manager.num_partitions, dtype=bool)
        for device in range(manager.num_devices):
            budget = manager.budget_bytes[device]
            for index in manager.sharding[device].partition_indices():
                size = int(manager.partition_bytes[index])
                if size > budget:
                    break
                expected[index] = True
                budget -= size
        assert np.array_equal(manager.resident, expected)
        assert not manager.adaptive

    def test_first_touch_billable_then_free(self):
        manager = build_manager("static-prefix")
        resident = int(np.flatnonzero(manager.resident)[0])
        billable, free = manager.split_billable([resident])
        assert billable == [resident] and free == []
        billable, free = manager.split_billable([resident])
        assert billable == [] and free == [resident]

    def test_reset_forgets_first_touch(self):
        manager = build_manager("static-prefix")
        resident = int(np.flatnonzero(manager.resident)[0])
        manager.split_billable([resident])
        manager.reset()
        billable, _ = manager.split_billable([resident])
        assert billable == [resident]

    def test_fill_and_would_admit_are_inert(self):
        sizes = build_manager("static-prefix").partition_bytes
        manager = build_manager("static-prefix", budget=int(sizes[0]))
        outside = int(np.flatnonzero(~manager.resident)[0])
        manager.fill([outside])
        assert not manager.resident[outside]
        assert manager.would_admit(outside) is False

    def test_shard_residency_is_the_static_policy(self):
        manager = build_manager("static-prefix")
        residency = ShardResidency(manager.partitioning, manager.sharding, manager.config)
        assert isinstance(residency, CacheManager)
        assert residency.policy_name == "static-prefix"
        assert np.array_equal(residency.resident, manager.resident)


# ----------------------------------------------------------------------
# LRU mechanics
# ----------------------------------------------------------------------


class TestLru:
    def test_fill_admits_until_budget(self):
        manager = build_manager("lru", num_devices=1)
        sizes = manager.partition_bytes
        budget = int(sizes[0] + sizes[1])
        manager = build_manager("lru", num_devices=1, budget=budget)
        manager.fill([0, 1])
        assert manager.resident[0] and manager.resident[1]
        assert manager.used_bytes[0] <= budget

    def test_least_recently_touched_is_evicted(self):
        sizes = build_manager("lru", num_devices=1).partition_bytes
        manager = build_manager("lru", num_devices=1, budget=int(sizes[0] + sizes[1]))
        manager.fill([0])
        manager.fill([1])
        manager.split_billable([0])  # touch 0 -> 1 becomes LRU
        manager.fill([2])
        assert manager.resident[0] and manager.resident[2]
        assert not manager.resident[1]
        assert manager.counters()["evictions"] == 1

    def test_partition_larger_than_budget_never_admitted(self):
        manager = build_manager("lru", num_devices=1, budget=1)
        manager.fill([0])
        assert manager.num_resident == 0

    def test_zero_budget_caches_nothing(self):
        manager = build_manager("lru", budget=0)
        manager.fill(list(range(manager.num_partitions)))
        assert manager.num_resident == 0
        assert manager.resident_bytes == 0

    def test_devices_have_independent_budgets(self):
        manager = build_manager("lru", num_devices=2)
        first_of_each = [int(manager.sharding[d].partition_indices()[0]) for d in range(2)]
        manager.fill(first_of_each)
        assert manager.used_bytes[0] == int(manager.partition_bytes[first_of_each[0]])
        assert manager.used_bytes[1] == int(manager.partition_bytes[first_of_each[1]])


# ----------------------------------------------------------------------
# Frontier-aware mechanics
# ----------------------------------------------------------------------


class TestFrontierAware:
    def _observe(self, manager, active_edges):
        manager.observe_frontier(np.asarray(active_edges, dtype=np.int64))
        manager.begin_iteration()

    def test_collapsed_partition_evicted_after_idle_window(self):
        manager = build_manager("frontier-aware", num_devices=1)
        manager.fill([0])
        hot = np.zeros(manager.num_partitions, dtype=np.int64)
        hot[0] = 50
        self._observe(manager, hot)
        assert manager.resident[0]
        cold = np.zeros(manager.num_partitions, dtype=np.int64)
        cold[1] = 50  # keep the window dirty while partition 0 idles
        self._observe(manager, cold)
        assert manager.resident[0]  # one idle iteration is not collapse
        self._observe(manager, cold)
        assert not manager.resident[0]
        assert manager.counters()["evicted_bytes"] == int(manager.partition_bytes[0])

    def test_active_partition_stays_resident(self):
        manager = build_manager("frontier-aware", num_devices=1)
        manager.fill([0])
        hot = np.zeros(manager.num_partitions, dtype=np.int64)
        hot[0] = 50
        for _ in range(5):
            self._observe(manager, hot)
        assert manager.resident[0]
        assert manager.counters()["evictions"] == 0

    def test_admission_declines_when_residents_are_hotter(self):
        sizes = build_manager("frontier-aware", num_devices=1).partition_bytes
        manager = build_manager("frontier-aware", num_devices=1, budget=int(sizes[0]))
        manager.fill([0])
        hot = np.zeros(manager.num_partitions, dtype=np.int64)
        hot[0] = 1000
        self._observe(manager, hot)
        cold_incoming = np.zeros(manager.num_partitions, dtype=np.int64)
        cold_incoming[0] = 1000
        cold_incoming[1] = 1  # barely active newcomer
        manager.observe_frontier(cold_incoming)
        manager.fill([1])
        assert manager.resident[0]
        assert not manager.resident[1]

    def test_hot_newcomer_displaces_cold_resident(self):
        sizes = build_manager("frontier-aware", num_devices=1).partition_bytes
        manager = build_manager("frontier-aware", num_devices=1, budget=int(sizes[0]))
        manager.fill([0])
        lukewarm = np.zeros(manager.num_partitions, dtype=np.int64)
        lukewarm[0] = 1
        self._observe(manager, lukewarm)
        hot_incoming = np.zeros(manager.num_partitions, dtype=np.int64)
        hot_incoming[1] = 10_000  # window blend makes the newcomer hotter
        manager.observe_frontier(hot_incoming)
        manager.fill([1])
        assert manager.resident[1]
        assert not manager.resident[0]

    def test_reuse_scores_exposed_only_by_frontier_aware(self):
        assert build_manager("frontier-aware").reuse_scores() is not None
        assert build_manager("lru").reuse_scores() is None
        assert build_manager("static-prefix").reuse_scores() is None

    def test_would_admit_is_a_dry_run(self):
        sizes = build_manager("frontier-aware", num_devices=1).partition_bytes
        manager = build_manager("frontier-aware", num_devices=1, budget=int(sizes[0]))
        manager.fill([0])
        lukewarm = np.zeros(manager.num_partitions, dtype=np.int64)
        lukewarm[0] = 1
        self._observe(manager, lukewarm)
        hot_incoming = np.zeros(manager.num_partitions, dtype=np.int64)
        hot_incoming[1] = 10_000
        manager.observe_frontier(hot_incoming)
        assert manager.would_admit(1) is True
        assert manager.resident[0]  # nothing was evicted by the dry run
        assert not manager.resident[1]


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------


class TestCounters:
    def test_hit_miss_bytes_accumulate(self):
        manager = build_manager("lru", num_devices=1)
        manager.fill([0])
        manager.split_billable([0, 1])  # 0 hits, 1 is billable
        manager.record_miss([1])
        counters = manager.counters()
        assert counters["hit_bytes"] == int(manager.partition_bytes[0])
        assert counters["miss_bytes"] == int(manager.partition_bytes[1])
        assert counters["hits"] == 1 and counters["misses"] == 1

    def test_delta_since_snapshot(self):
        manager = build_manager("lru", num_devices=1)
        manager.fill([0])
        before = manager.snapshot_counters()
        manager.split_billable([0])
        delta = manager.delta(before)
        assert delta["hit_bytes"] == int(manager.partition_bytes[0])
        assert delta["miss_bytes"] == 0

    def test_reset_clears_contents_and_counters(self):
        manager = build_manager("lru", num_devices=1)
        manager.fill([0, 1])
        manager.split_billable([0])
        manager.reset()
        assert manager.num_resident == 0
        assert all(value == 0 for value in manager.counters().values())


# ----------------------------------------------------------------------
# Execution-context wiring
# ----------------------------------------------------------------------


class TestContextWiring:
    def test_static_single_device_has_no_cache(self):
        graph = rmat_graph(300, 1500, seed=3)
        system = ExpTMFilterSystem(graph, config=HardwareConfig())
        assert system.context.cache is None
        assert system.context.residency is None
        assert system.context.cache_policy == "static-prefix"

    def test_adaptive_single_device_builds_cache(self):
        graph = rmat_graph(300, 1500, seed=3)
        system = ExpTMFilterSystem(graph, config=HardwareConfig(), cache_policy="lru")
        assert system.context.cache is not None
        assert system.context.cache.adaptive
        assert system.context.residency is None  # residency is the static alias
        assert system.context.cache_policy == "lru"

    def test_static_multi_device_cache_is_the_residency(self):
        graph = rmat_graph(300, 1500, seed=3)
        config = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2).with_devices(2)
        system = ExpTMFilterSystem(graph, config=config)
        assert system.context.residency is system.context.cache
        assert isinstance(system.context.cache, ShardResidency)

    def test_cache_budget_overrides_device_memory(self):
        graph = rmat_graph(300, 1500, seed=3)
        system = ExpTMFilterSystem(
            graph, config=HardwareConfig(), cache_policy="lru", cache_budget=12345
        )
        assert system.context.cache.budget_bytes == [12345]


# ----------------------------------------------------------------------
# Engine / system integration
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def wavefront_graph():
    return grid_graph(60, 40, weighted=True, seed=3)


@pytest.fixture(scope="module")
def constrained_config(wavefront_graph):
    return HardwareConfig(
        gpu_memory_bytes=wavefront_graph.edge_data_bytes // 6, pcie_bandwidth=1e9
    )


class TestSystemIntegration:
    @pytest.mark.parametrize("policy", ["lru", "frontier-aware"])
    @pytest.mark.parametrize("system_cls", [HyTGraphSystem, ExpTMFilterSystem])
    def test_adaptive_policies_preserve_values(
        self, system_cls, policy, wavefront_graph, constrained_config
    ):
        static = system_cls(wavefront_graph, config=constrained_config)
        adaptive = system_cls(wavefront_graph, config=constrained_config, cache_policy=policy)
        reference = static.run(SSSP(), source=0)
        result = adaptive.run(SSSP(), source=0)
        assert result.converged
        assert np.array_equal(np.asarray(reference.values), np.asarray(result.values))

    def test_exptm_frontier_aware_reduces_transfer_volume(
        self, wavefront_graph, constrained_config
    ):
        static = ExpTMFilterSystem(wavefront_graph, config=constrained_config)
        adaptive = ExpTMFilterSystem(
            wavefront_graph, config=constrained_config, cache_policy="frontier-aware"
        )
        reference = static.run(SSSP(), source=0)
        result = adaptive.run(SSSP(), source=0)
        assert result.total_cache_hit_bytes > 0
        assert result.total_transfer_bytes < reference.total_transfer_bytes

    def test_cache_stats_reported_per_iteration(self, wavefront_graph, constrained_config):
        system = ExpTMFilterSystem(
            wavefront_graph, config=constrained_config, cache_policy="frontier-aware"
        )
        result = system.run(SSSP(), source=0)
        assert result.total_cache_miss_bytes > 0
        assert any(stats.cache_hit_bytes > 0 for stats in result.iterations)
        assert 0.0 < result.cache_hit_rate < 1.0

    def test_static_multi_device_residency_hits_are_reported(self, wavefront_graph):
        config = HardwareConfig(
            gpu_memory_bytes=wavefront_graph.edge_data_bytes // 2, pcie_bandwidth=1e9
        ).with_devices(2)
        system = HyTGraphSystem(wavefront_graph, config=config)
        result = system.run(SSSP(), source=0)
        # The static residency's free re-reads now surface as cache hits.
        assert result.total_cache_hit_bytes > 0

    @pytest.mark.parametrize("system_cls", [EmogiSystem, SubwaySystem])
    def test_non_filter_systems_never_hit_the_cache(
        self, system_cls, wavefront_graph, constrained_config
    ):
        system = system_cls(
            wavefront_graph, config=constrained_config, cache_policy="frontier-aware"
        )
        result = system.run(SSSP(), source=0)
        assert result.converged
        assert result.total_cache_hit_bytes == 0
        assert result.total_cache_miss_bytes == 0

    def test_runs_are_cold_after_reset(self, wavefront_graph, constrained_config):
        system = ExpTMFilterSystem(
            wavefront_graph, config=constrained_config, cache_policy="frontier-aware"
        )
        first = system.run(SSSP(), source=0)
        second = system.run(SSSP(), source=0)
        assert first.total_transfer_bytes == second.total_transfer_bytes
        assert first.per_iteration_times() == second.per_iteration_times()


# ----------------------------------------------------------------------
# Batch serving: cross-super-iteration reuse
# ----------------------------------------------------------------------


class TestBatchServing:
    @pytest.fixture(scope="class")
    def batch_setup(self, wavefront_graph):
        config = HardwareConfig(
            gpu_memory_bytes=wavefront_graph.edge_data_bytes // 6, pcie_bandwidth=5e8
        ).with_devices(2)
        rng = np.random.default_rng(11)
        sources = [int(s) for s in rng.choice(wavefront_graph.num_vertices, 6, replace=False)]
        return wavefront_graph, config, sources

    def _batch(self, batch_setup, policy):
        graph, config, sources = batch_setup
        system = ExpTMFilterSystem(graph, config=config, cache_policy=policy)
        return QueryBatchRunner(system).run([(SSSP(), source) for source in sources])

    def test_cross_super_iteration_reuse_beats_static(self, batch_setup):
        static = self._batch(batch_setup, "static-prefix")
        adaptive = self._batch(batch_setup, "frontier-aware")
        assert adaptive.cache_hit_bytes > 0
        assert adaptive.total_transfer_bytes < static.total_transfer_bytes
        assert adaptive.makespan < static.makespan

    def test_batch_reports_cache_policy_and_traffic(self, batch_setup):
        batch = self._batch(batch_setup, "frontier-aware")
        assert batch.extra["cache_policy"] == "frontier-aware"
        assert batch.cache_miss_bytes > 0
        assert "cache_hit_MB" in batch.summary_row()

    def test_batch_values_match_standalone_under_adaptive_policy(self, batch_setup):
        graph, config, sources = batch_setup
        system = ExpTMFilterSystem(graph, config=config, cache_policy="frontier-aware")
        standalone = [system.run(SSSP(), source=source) for source in sources]
        batch = self._batch(batch_setup, "frontier-aware")
        for alone, batched in zip(standalone, batch.results):
            assert np.array_equal(np.asarray(alone.values), np.asarray(batched.values))
