"""Bitwise equivalence of the unified runtime vs the pre-refactor paths.

``tests/data/runtime_equivalence.json`` was captured from the twin-path
code (dedicated single-device ``run`` methods plus ``_run_multi``
sharded paths) immediately before the device-agnostic runtime replaced
them.  Every case pins, for one (system, algorithm, device-count) cell:

* the SHA-256 of the raw per-vertex value array,
* every iteration's simulated time as an exact float hex string,
* total PCIe transfer and inter-GPU boundary-delta bytes,
* iteration count and convergence.

The tests replay the same workloads through the unified runtime and
demand exact equality — the refactor must be a pure restructuring, down
to the last ulp of every iteration makespan.  Regenerate the fixture
(only after an *intentional* behaviour change) with::

    python tests/data/generate_runtime_equivalence.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.data.generate_runtime_equivalence import (
    ALGORITHMS,
    DEVICE_COUNTS,
    SYSTEMS,
    build_graph,
    fingerprint,
)
from repro.core.backends import available_backends, use_backend
from repro.sim.config import HardwareConfig

FIXTURE = Path(__file__).resolve().parent / "data" / "runtime_equivalence.json"

#: The fixtures were captured with the numpy kernels; every backend must
#: reproduce them bit for bit (simulated times are priced from message
#: counts, so identical values/frontiers imply identical timings too).
BACKENDS = ("numpy", "numba", "array-api")


@pytest.fixture(scope="module")
def reference() -> dict:
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def graph():
    return build_graph()


@pytest.fixture(params=BACKENDS)
def kernel_backend(request):
    name = request.param
    if name not in available_backends():
        pytest.skip(f"backend {name!r} is not installed in this environment")
    with use_backend(name):
        yield name


@pytest.mark.parametrize("system_key,system_cls", SYSTEMS)
@pytest.mark.parametrize("algorithm_key,algorithm_cls,source", ALGORITHMS)
@pytest.mark.parametrize("devices", DEVICE_COUNTS)
def test_unified_runtime_matches_pre_refactor_main(
    reference, graph, kernel_backend, system_key, system_cls, algorithm_key, algorithm_cls,
    source, devices,
):
    config = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2).with_devices(devices)
    system = system_cls(graph, config=config)
    kwargs = {} if source is None else {"source": source}
    result = system.run(algorithm_cls(), **kwargs)
    assert result.extra["backend"] == kernel_backend

    case = reference["cases"]["%s/%s/%ddev" % (system_key, algorithm_key, devices)]
    current = fingerprint(result)
    assert current["values_sha256"] == case["values_sha256"], "per-vertex values changed"
    assert current["values_dtype"] == case["values_dtype"]
    assert current["iteration_times_hex"] == case["iteration_times_hex"], (
        "per-iteration simulated times changed"
    )
    assert current["total_transfer_bytes"] == case["total_transfer_bytes"]
    assert current["total_interconnect_bytes"] == case["total_interconnect_bytes"]
    assert current["num_iterations"] == case["num_iterations"]
    assert current["converged"] == case["converged"]


def test_fixture_covers_the_full_grid(reference):
    assert len(reference["cases"]) == len(SYSTEMS) * len(ALGORITHMS) * len(DEVICE_COUNTS)
