"""Unit tests for device memory accounting and the UM page cache."""

import numpy as np
import pytest

from repro.sim.memory import DeviceMemory, PageCache


class TestDeviceMemory:
    def test_allocate_and_free(self):
        memory = DeviceMemory(1000)
        memory.allocate("vertex-data", 400)
        assert memory.used_bytes == 400
        assert memory.free_bytes == 600
        memory.free("vertex-data")
        assert memory.used_bytes == 0

    def test_oversubscription_raises(self):
        memory = DeviceMemory(100)
        with pytest.raises(MemoryError):
            memory.allocate("edges", 200)

    def test_duplicate_label_rejected(self):
        memory = DeviceMemory(100)
        memory.allocate("a", 10)
        with pytest.raises(ValueError):
            memory.allocate("a", 10)

    def test_free_unknown_label(self):
        with pytest.raises(KeyError):
            DeviceMemory(10).free("missing")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemory(-1)
        with pytest.raises(ValueError):
            DeviceMemory(10).allocate("x", -5)

    def test_can_fit_and_contains(self):
        memory = DeviceMemory(100)
        memory.allocate("a", 60)
        assert memory.can_fit(40)
        assert not memory.can_fit(41)
        assert "a" in memory
        assert memory.allocation("a") == 60


class TestPageCache:
    def test_cold_accesses_fault(self):
        cache = PageCache(capacity_pages=10)
        result = cache.access(np.array([1, 2, 3]))
        assert result.faults == 3
        assert result.hits == 0
        assert cache.resident_pages == 3

    def test_warm_accesses_hit(self):
        cache = PageCache(capacity_pages=10)
        cache.access(np.array([1, 2, 3]))
        result = cache.access(np.array([1, 2, 3]))
        assert result.hits == 3
        assert result.faults == 0

    def test_lru_eviction_order(self):
        cache = PageCache(capacity_pages=2)
        cache.access(np.array([1, 2]))
        cache.access(np.array([1]))  # 2 becomes least recently used
        result = cache.access(np.array([3]))
        assert result.evictions == 1
        assert cache.is_resident(1)
        assert cache.is_resident(3)
        assert not cache.is_resident(2)

    def test_working_set_larger_than_cache_thrashes(self):
        # Cyclic access over a working set one page larger than the cache
        # gives zero hits under LRU — the unified-memory pathology on
        # graphs that almost fit (Section VII-B2).
        cache = PageCache(capacity_pages=4)
        pages = np.arange(5)
        cache.access(pages)
        for _ in range(3):
            result = cache.access(pages)
            assert result.hits == 0
            assert result.faults == 5

    def test_zero_capacity_never_caches(self):
        cache = PageCache(capacity_pages=0)
        result = cache.access(np.array([1, 2]))
        assert result.faults == 2
        assert cache.resident_pages == 0

    def test_pin_stops_when_full(self):
        cache = PageCache(capacity_pages=3)
        inserted = cache.pin(np.arange(10))
        assert inserted == 3
        assert cache.resident_pages == 3
        # Pinned pages do not count as faults.
        assert cache.stats.faults == 0

    def test_pin_skips_resident(self):
        cache = PageCache(capacity_pages=5)
        cache.access(np.array([1]))
        assert cache.pin(np.array([1, 2])) == 1

    def test_clear(self):
        cache = PageCache(capacity_pages=5)
        cache.access(np.array([1, 2]))
        cache.clear()
        assert cache.resident_pages == 0

    def test_stats_accumulate(self):
        cache = PageCache(capacity_pages=2)
        cache.access(np.array([1, 2]))
        cache.access(np.array([1, 3]))
        assert cache.stats.accesses == 4
        assert cache.stats.hits == 1
        assert cache.stats.faults == 3
        assert cache.stats.hit_rate == pytest.approx(0.25)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageCache(-1)


class TestShardResidencyBoundaries:
    """Budget edge cases of the static-prefix residency."""

    def _residency(self, budget_divisor=None, budget=None):
        from repro.graph.generators import rmat_graph
        from repro.graph.partition import ShardedPartitioning, partition_by_count
        from repro.sim.config import HardwareConfig
        from repro.transfer.residency import ShardResidency

        graph = rmat_graph(240, 1600, seed=4, name="rmat-res")
        partitioning = partition_by_count(graph, 8)
        sharding = ShardedPartitioning(partitioning, 2)
        if budget is None:
            budget = (
                graph.edge_data_bytes // budget_divisor if budget_divisor else graph.edge_data_bytes
            )
        config = HardwareConfig(gpu_memory_bytes=budget, num_devices=2)
        return ShardResidency(partitioning, sharding, config), partitioning

    def test_zero_budget_pins_nothing(self):
        residency, _ = self._residency(budget=0)
        assert residency.num_resident == 0
        billable, free = residency.split_billable([0, 1])
        assert billable == [0, 1] and free == []

    def test_budget_smaller_than_one_partition_pins_nothing(self):
        _, partitioning = self._residency()
        smallest = min(partitioning[p].edge_bytes for p in range(partitioning.num_partitions))
        residency, _ = self._residency(budget=smallest - 1)
        assert residency.num_resident == 0

    def test_budget_larger_than_whole_shard_pins_everything(self):
        _, partitioning = self._residency()
        total = sum(partition.edge_bytes for partition in partitioning)
        residency, partitioning = self._residency(budget=10 * total)
        assert residency.num_resident == partitioning.num_partitions
        # Everything is billed exactly once, then free.
        indices = list(range(partitioning.num_partitions))
        first, _ = residency.split_billable(indices)
        assert first == indices
        again, free = residency.split_billable(indices)
        assert again == [] and free == indices

    def test_prefix_stops_at_first_overflowing_partition(self):
        residency, partitioning = self._residency(budget_divisor=3)
        # Residency is a per-shard prefix: within each shard, once a
        # partition is skipped nothing after it is pinned.
        for device in range(2):
            shard_indices = list(residency.sharding[device].partition_indices())
            flags = [bool(residency.resident[i]) for i in shard_indices]
            if False in flags:
                first_gap = flags.index(False)
                assert not any(flags[first_gap:])
