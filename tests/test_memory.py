"""Unit tests for device memory accounting and the UM page cache."""

import numpy as np
import pytest

from repro.sim.memory import DeviceMemory, PageCache


class TestDeviceMemory:
    def test_allocate_and_free(self):
        memory = DeviceMemory(1000)
        memory.allocate("vertex-data", 400)
        assert memory.used_bytes == 400
        assert memory.free_bytes == 600
        memory.free("vertex-data")
        assert memory.used_bytes == 0

    def test_oversubscription_raises(self):
        memory = DeviceMemory(100)
        with pytest.raises(MemoryError):
            memory.allocate("edges", 200)

    def test_duplicate_label_rejected(self):
        memory = DeviceMemory(100)
        memory.allocate("a", 10)
        with pytest.raises(ValueError):
            memory.allocate("a", 10)

    def test_free_unknown_label(self):
        with pytest.raises(KeyError):
            DeviceMemory(10).free("missing")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemory(-1)
        with pytest.raises(ValueError):
            DeviceMemory(10).allocate("x", -5)

    def test_can_fit_and_contains(self):
        memory = DeviceMemory(100)
        memory.allocate("a", 60)
        assert memory.can_fit(40)
        assert not memory.can_fit(41)
        assert "a" in memory
        assert memory.allocation("a") == 60


class TestPageCache:
    def test_cold_accesses_fault(self):
        cache = PageCache(capacity_pages=10)
        result = cache.access(np.array([1, 2, 3]))
        assert result.faults == 3
        assert result.hits == 0
        assert cache.resident_pages == 3

    def test_warm_accesses_hit(self):
        cache = PageCache(capacity_pages=10)
        cache.access(np.array([1, 2, 3]))
        result = cache.access(np.array([1, 2, 3]))
        assert result.hits == 3
        assert result.faults == 0

    def test_lru_eviction_order(self):
        cache = PageCache(capacity_pages=2)
        cache.access(np.array([1, 2]))
        cache.access(np.array([1]))  # 2 becomes least recently used
        result = cache.access(np.array([3]))
        assert result.evictions == 1
        assert cache.is_resident(1)
        assert cache.is_resident(3)
        assert not cache.is_resident(2)

    def test_working_set_larger_than_cache_thrashes(self):
        # Cyclic access over a working set one page larger than the cache
        # gives zero hits under LRU — the unified-memory pathology on
        # graphs that almost fit (Section VII-B2).
        cache = PageCache(capacity_pages=4)
        pages = np.arange(5)
        cache.access(pages)
        for _ in range(3):
            result = cache.access(pages)
            assert result.hits == 0
            assert result.faults == 5

    def test_zero_capacity_never_caches(self):
        cache = PageCache(capacity_pages=0)
        result = cache.access(np.array([1, 2]))
        assert result.faults == 2
        assert cache.resident_pages == 0

    def test_pin_stops_when_full(self):
        cache = PageCache(capacity_pages=3)
        inserted = cache.pin(np.arange(10))
        assert inserted == 3
        assert cache.resident_pages == 3
        # Pinned pages do not count as faults.
        assert cache.stats.faults == 0

    def test_pin_skips_resident(self):
        cache = PageCache(capacity_pages=5)
        cache.access(np.array([1]))
        assert cache.pin(np.array([1, 2])) == 1

    def test_clear(self):
        cache = PageCache(capacity_pages=5)
        cache.access(np.array([1, 2]))
        cache.clear()
        assert cache.resident_pages == 0

    def test_stats_accumulate(self):
        cache = PageCache(capacity_pages=2)
        cache.access(np.array([1, 2]))
        cache.access(np.array([1, 3]))
        assert cache.stats.accesses == 4
        assert cache.stats.hits == 1
        assert cache.stats.faults == 3
        assert cache.stats.hit_rate == pytest.approx(0.25)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageCache(-1)
