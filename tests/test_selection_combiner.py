"""Unit tests for engine selection (Algorithm 1) and task combination."""

import numpy as np
import pytest

from repro.core.combiner import ScheduledTask, TaskCombiner
from repro.core.cost_model import CostModel, PartitionCosts
from repro.core.selection import EngineSelector, SelectionThresholds
from repro.graph.partition import partition_by_count
from repro.transfer.base import EngineKind


def make_costs(filter_cost, compaction_cost, zero_copy_cost, active_edges=None):
    filter_cost = np.asarray(filter_cost, dtype=float)
    if active_edges is None:
        active_edges = np.ones_like(filter_cost)
    return PartitionCosts(
        filter_cost=filter_cost,
        compaction_cost=np.asarray(compaction_cost, dtype=float),
        zero_copy_cost=np.asarray(zero_copy_cost, dtype=float),
        active_vertices=np.ones_like(filter_cost, dtype=np.int64),
        active_edges=np.asarray(active_edges, dtype=np.int64),
    )


class TestSelectionRule:
    def test_compaction_when_both_conditions_hold(self):
        selector = EngineSelector()
        # Tec < 0.8*Tef and Tec < 0.4*Tiz.
        assert selector.select_single(10.0, 5.0, 20.0) == EngineKind.EXP_COMPACTION

    def test_zero_copy_when_cheaper_than_filter(self):
        selector = EngineSelector()
        # Compaction fails the beta condition, zero-copy beats filter.
        assert selector.select_single(10.0, 5.0, 6.0) == EngineKind.IMP_ZERO_COPY

    def test_filter_when_everything_is_active(self):
        selector = EngineSelector()
        # Dense partition: compaction ~ filter, zero-copy worse than filter.
        assert selector.select_single(10.0, 10.5, 15.0) == EngineKind.EXP_FILTER

    def test_alpha_boundary(self):
        selector = EngineSelector(SelectionThresholds(alpha=0.8, beta=0.4))
        # Tec exactly at alpha*Tef fails the strict inequality.
        assert selector.select_single(10.0, 8.0, 100.0) != EngineKind.EXP_COMPACTION

    def test_beta_boundary(self):
        selector = EngineSelector(SelectionThresholds(alpha=0.8, beta=0.4))
        # Tec exactly at beta*Tiz fails the strict inequality.
        assert selector.select_single(100.0, 4.0, 10.0) != EngineKind.EXP_COMPACTION

    def test_inactive_partition_gets_none(self):
        selector = EngineSelector()
        costs = make_costs([1.0, 1.0], [0.5, 0.5], [2.0, 2.0], active_edges=[0, 5])
        result = selector.select(costs)
        assert result.choices[0] is None
        assert result.choices[1] is not None

    def test_counts(self):
        selector = EngineSelector()
        costs = make_costs([10, 10, 10], [5, 9.9, 20], [20, 5, 15])
        result = selector.select(costs)
        counts = result.counts()
        assert sum(counts.values()) == 3

    def test_partitions_using(self):
        selector = EngineSelector()
        costs = make_costs([10, 10], [5, 20], [20, 20])
        result = selector.select(costs)
        assert result.partitions_using(EngineKind.EXP_COMPACTION) == [0]

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            SelectionThresholds(alpha=0.0)
        with pytest.raises(ValueError):
            SelectionThresholds(beta=1.5)


class TestSelectionOnRealCosts:
    def test_dense_frontier_prefers_filter(self, medium_power_law_graph, config):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        model = CostModel(medium_power_law_graph, partitioning, config)
        costs = model.estimate(np.ones(medium_power_law_graph.num_vertices, dtype=bool))
        result = EngineSelector().select(costs)
        counts = result.counts()
        assert counts.get(EngineKind.EXP_FILTER.value, 0) >= counts.get(EngineKind.EXP_COMPACTION.value, 0)

    def test_sparse_frontier_avoids_filter(self, medium_power_law_graph, config):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        model = CostModel(medium_power_law_graph, partitioning, config)
        mask = np.zeros(medium_power_law_graph.num_vertices, dtype=bool)
        mask[::79] = True
        costs = model.estimate(mask)
        result = EngineSelector().select(costs)
        counts = result.counts()
        assert counts.get(EngineKind.EXP_FILTER.value, 0) == 0


class TestTaskCombiner:
    def _selection(self, choices):
        from repro.core.selection import SelectionResult

        return SelectionResult(choices=choices)

    def test_consecutive_filter_partitions_merge_up_to_k(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        combiner = TaskCombiner(combine_factor=4)
        choices = [EngineKind.EXP_FILTER] * 8
        mask = np.ones(medium_power_law_graph.num_vertices, dtype=bool)
        tasks = combiner.combine(partitioning, self._selection(choices), mask)
        filter_tasks = [task for task in tasks if task.engine == EngineKind.EXP_FILTER]
        assert len(filter_tasks) == 2
        assert all(len(task.partition_indices) <= 4 for task in filter_tasks)
        covered = sorted(index for task in filter_tasks for index in task.partition_indices)
        assert covered == list(range(8))

    def test_non_consecutive_filter_partitions_not_merged(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        combiner = TaskCombiner(combine_factor=4)
        choices = [
            EngineKind.EXP_FILTER,
            EngineKind.IMP_ZERO_COPY,
            EngineKind.EXP_FILTER,
            None,
            EngineKind.EXP_FILTER,
            EngineKind.EXP_FILTER,
            None,
            EngineKind.EXP_FILTER,
        ]
        mask = np.ones(medium_power_law_graph.num_vertices, dtype=bool)
        tasks = combiner.combine(partitioning, self._selection(choices), mask)
        filter_tasks = [task for task in tasks if task.engine == EngineKind.EXP_FILTER]
        groups = [task.partition_indices for task in filter_tasks]
        assert [0] in groups
        assert [2] in groups
        assert [4, 5] in groups
        assert [7] in groups

    def test_compaction_and_zero_copy_each_merge_into_one_task(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        combiner = TaskCombiner()
        choices = [
            EngineKind.EXP_COMPACTION,
            EngineKind.IMP_ZERO_COPY,
            EngineKind.EXP_COMPACTION,
            EngineKind.IMP_ZERO_COPY,
            EngineKind.EXP_COMPACTION,
            None,
            None,
            None,
        ]
        mask = np.ones(medium_power_law_graph.num_vertices, dtype=bool)
        tasks = combiner.combine(partitioning, self._selection(choices), mask)
        compaction_tasks = [task for task in tasks if task.engine == EngineKind.EXP_COMPACTION]
        zero_copy_tasks = [task for task in tasks if task.engine == EngineKind.IMP_ZERO_COPY]
        assert len(compaction_tasks) == 1
        assert len(zero_copy_tasks) == 1
        assert sorted(compaction_tasks[0].partition_indices) == [0, 2, 4]
        assert sorted(zero_copy_tasks[0].partition_indices) == [1, 3]

    def test_tasks_only_cover_active_vertices(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 4)
        combiner = TaskCombiner()
        choices = [EngineKind.IMP_ZERO_COPY] * 4
        mask = np.zeros(medium_power_law_graph.num_vertices, dtype=bool)
        mask[::5] = True
        tasks = combiner.combine(partitioning, self._selection(choices), mask)
        total_active = sum(task.num_active_vertices for task in tasks)
        assert total_active == int(mask.sum())

    def test_disabled_combiner_one_task_per_partition(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        combiner = TaskCombiner(enabled=False)
        choices = [EngineKind.EXP_FILTER] * 8
        mask = np.ones(medium_power_law_graph.num_vertices, dtype=bool)
        tasks = combiner.combine(partitioning, self._selection(choices), mask)
        assert len(tasks) == 8

    def test_invalid_combine_factor(self):
        with pytest.raises(ValueError):
            TaskCombiner(combine_factor=0)

    def test_task_label_generated(self):
        task = ScheduledTask(EngineKind.EXP_FILTER, [1, 2], np.array([5, 6]))
        assert "ExpTM-F" in task.label
